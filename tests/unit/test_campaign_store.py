"""ResultStore: content-addressed memoisation, persistence, recovery."""

import json

import pytest

from repro.campaign import RESULTS_FILENAME, ResultStore, canonical_json
from repro.core.errors import ConfigurationError


def record(key: str, **extra):
    return {"key": key, "schema_version": 1, "report": {"n_ok": 1}, **extra}


class TestMemoryStore:
    def test_put_get_roundtrip(self):
        store = ResultStore.memory()
        assert store.put(record("k1"))
        assert store.get("k1")["report"] == {"n_ok": 1}
        assert "k1" in store
        assert len(store) == 1
        assert store.path is None

    def test_identical_reput_is_a_noop(self):
        store = ResultStore.memory()
        assert store.put(record("k1"))
        assert not store.put(record("k1"))
        assert len(store) == 1

    def test_missing_key_is_none(self):
        assert ResultStore.memory().get("nope") is None

    def test_record_without_key_rejected(self):
        with pytest.raises(ConfigurationError, match="key"):
            ResultStore.memory().put({"report": {}})


class TestDiskStore:
    def test_persists_and_reloads(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        store.put(record("k2", params={"x": 1}))

        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == 2
        assert reopened.get("k2")["params"] == {"x": 1}
        assert reopened.keys() == ["k1", "k2"]

    def test_lines_are_canonical_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1", params={"b": 2, "a": 1}))
        lines = (tmp_path / "store" / RESULTS_FILENAME).read_text().splitlines()
        assert lines == [canonical_json(record("k1", params={"b": 2, "a": 1}))]
        # Canonical = sorted keys: insertion order cannot leak.
        assert lines[0].index('"a"') < lines[0].index('"b"')

    def test_append_only_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        changed = record("k1")
        changed["report"] = {"n_ok": 2}
        assert store.put(changed)
        raw = (tmp_path / "store" / RESULTS_FILENAME).read_text()
        assert len(raw.splitlines()) == 2  # history kept
        assert ResultStore(tmp_path / "store").get("k1")["report"] == {
            "n_ok": 2
        }

    def test_torn_tail_rolled_back_on_open(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        path = tmp_path / "store" / RESULTS_FILENAME
        with open(path, "a") as handle:
            handle.write('{"key": "k2", "repo')   # killed mid-append

        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == 1
        assert "k2" not in reopened
        # The partial line is gone from disk; new appends start clean.
        assert path.read_bytes().endswith(b"\n")
        reopened.put(record("k3"))
        assert ResultStore(tmp_path / "store").keys() == ["k1", "k3"]

    def test_corrupt_interior_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        path = tmp_path / "store" / RESULTS_FILENAME
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        store2 = ResultStore(tmp_path / "store")
        store2.put(record("k2"))
        assert ResultStore(tmp_path / "store").keys() == ["k1", "k2"]

    def test_future_schema_records_still_load(self, tmp_path):
        """Satellite: unknown keys in stored records are tolerated —
        a store written by a newer schema version still opens."""
        store = ResultStore(tmp_path / "store")
        futuristic = record("k1", schema_version=99, hologram={"v": 1})
        store.put(futuristic)
        reopened = ResultStore(tmp_path / "store")
        loaded = reopened.get("k1")
        assert loaded["hologram"] == {"v": 1}
        assert loaded["schema_version"] == 99

    def test_entries_are_the_persisted_bytes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        store.put(record("k2"))
        on_disk = (
            (tmp_path / "store" / RESULTS_FILENAME).read_text().splitlines()
        )
        assert store.entries() == on_disk
        assert [json.loads(line)["key"] for line in on_disk] == ["k1", "k2"]
