"""Wire schemas of the campaign server: round trips, leniency,
content-hash keys, and the job-status rendering."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.serve.protocol import (
    DEFAULT_CLIENT,
    JOB_STATES,
    TERMINAL_STATES,
    JobStatus,
    SubmitOptions,
    SubmitRequest,
    error_doc,
)

CAMPAIGN = {"system": {"name": "s"}, "workload": {"kind": "fixed"}}


class TestSubmitOptions:
    def test_round_trip(self):
        options = SubmitOptions(
            executor="process", workers=2, wall_timeout_s=5.0,
            retry_failed=True,
        )
        assert SubmitOptions.from_dict(options.to_dict()) == options

    def test_defaults(self):
        options = SubmitOptions.from_dict({})
        assert options.executor == "serial"
        assert options.workers is None
        assert not options.retry_failed

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            SubmitOptions(executor="gpu")

    def test_strict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="shards"):
            SubmitOptions.from_dict({"shards": 4})

    def test_lenient_drops_unknown_keys(self):
        options = SubmitOptions.from_dict(
            {"executor": "process", "shards": 4}, lenient=True
        )
        assert options.executor == "process"


class TestSubmitRequest:
    def test_round_trip_and_version_stamp(self):
        request = SubmitRequest(campaign=CAMPAIGN, client="alice")
        doc = request.to_dict()
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert SubmitRequest.from_dict(doc) == request

    def test_lenient_survives_future_keys(self):
        doc = SubmitRequest(campaign=CAMPAIGN).to_dict()
        doc["priority"] = "high"   # a future server's field
        request = SubmitRequest.from_dict(doc, lenient=True)
        assert request.campaign == CAMPAIGN
        assert request.client == DEFAULT_CLIENT

    def test_key_is_content_hash(self):
        first = SubmitRequest(campaign=CAMPAIGN, client="alice")
        same = SubmitRequest(campaign=dict(CAMPAIGN), client="alice")
        assert first.key == same.key
        # Any of campaign / options / client changes the key.
        assert first.key != SubmitRequest(
            campaign=CAMPAIGN, client="bob"
        ).key
        assert first.key != SubmitRequest(
            campaign=CAMPAIGN,
            options=SubmitOptions(executor="process"),
            client="alice",
        ).key

    def test_needs_campaign(self):
        with pytest.raises(ConfigurationError, match="campaign"):
            SubmitRequest.from_dict({"client": "alice"})
        with pytest.raises(ConfigurationError, match="campaign"):
            SubmitRequest(campaign={})

    def test_body_must_be_object(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            SubmitRequest.from_dict(["not", "a", "dict"])


class TestJobStatus:
    def test_round_trip(self):
        status = JobStatus(
            job_id="abc-0", client="alice", state="done", name="study",
            n_trials=4, done=4, cached=3, executed=1,
            outcomes={"ok": 4},
        )
        assert JobStatus.from_dict(status.to_dict()) == status

    def test_lenient_drops_unknown_and_derived_keys(self):
        doc = JobStatus(job_id="j", client="c", state="done").to_dict()
        assert doc["terminal"] is True   # derived, emitted for clients
        doc["gpu_hours"] = 9
        status = JobStatus.from_dict(doc, lenient=True)
        assert status.terminal

    def test_states(self):
        for state in JOB_STATES:
            status = JobStatus(job_id="j", client="c", state=state)
            assert status.terminal == (state in TERMINAL_STATES)
        with pytest.raises(ConfigurationError, match="state"):
            JobStatus(job_id="j", client="c", state="exploded")

    def test_ok_needs_done_without_failures(self):
        done = JobStatus(job_id="j", client="c", state="done")
        assert done.ok
        assert not JobStatus(
            job_id="j", client="c", state="done", failed=1
        ).ok
        assert not JobStatus(job_id="j", client="c", state="failed").ok

    def test_summary_renders_counts(self):
        text = JobStatus(
            job_id="j0", client="c", state="running", name="study",
            n_trials=4, done=2, cached=1, executed=1, failed=1,
            resumptions=1,
        ).summary()
        assert "study" in text
        assert "2/4" in text
        assert "1 from cache" in text
        assert "1 FAILED" in text
        assert "resumed x1" in text


def test_error_doc_shape():
    doc = error_doc("boom", 429)
    assert doc["error"] == "boom"
    assert doc["status"] == 429
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
