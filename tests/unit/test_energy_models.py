"""Unit tests for the power/energy models (Section 6.2 / Table 3)."""

import pytest

from repro.power import (
    ActivityEnergyModel,
    Battery,
    EnergyLedger,
    MeasuredEnergyModel,
    RoleEnergy,
    SimulatedEnergyModel,
)
from repro.power.battery import (
    IMAGER_SYSTEM_BATTERY,
    TEMPERATURE_SYSTEM_BATTERY,
)
from repro.power.energy_model import MEASURED_OVERHEAD_FACTOR
from repro.power.power_states import (
    StandbyProfile,
    mbus_standby_meets_requirement,
    system_standby_nw,
)


class TestSimulatedModel:
    def test_paper_constants(self):
        model = SimulatedEnergyModel()
        assert model.pj_per_bit_per_chip == 3.5
        assert model.idle_pw_per_chip == 5.6

    def test_message_energy_formula(self):
        """E = 3.5 pJ x (19 + 8n) x chips."""
        model = SimulatedEnergyModel()
        assert model.message_energy_pj(8, 3) == pytest.approx(3.5 * 83 * 3)

    def test_idle_power_scales_with_chips(self):
        assert SimulatedEnergyModel().idle_power_pw(3) == pytest.approx(16.8)

    def test_two_chip_minimum(self):
        with pytest.raises(ValueError):
            SimulatedEnergyModel().system_pj_per_bit(1)


class TestMeasuredModel:
    def test_table3_roles(self):
        roles = MeasuredEnergyModel().roles
        assert roles.tx == 27.45
        assert roles.rx == 22.71
        assert roles.fwd == 17.55

    def test_table3_average(self):
        """The headline 22.6 pJ/bit/chip."""
        assert MeasuredEnergyModel().average_pj_per_bit() == pytest.approx(
            22.6, abs=0.05
        )

    def test_three_chip_message_is_5_6_nj(self):
        """Section 6.3.1's (64+19) x 67.71 pJ = 5.6 nJ."""
        energy_nj = MeasuredEnergyModel().message_energy_pj(8, 3) * 1e-3
        assert energy_nj == pytest.approx(5.6, abs=0.05)

    def test_overhead_factor_is_about_6_5x(self):
        """The paper attributes a ~6.5x sim-vs-measured gap to
        un-isolatable system overhead."""
        assert MEASURED_OVERHEAD_FACTOR == pytest.approx(6.5, abs=0.1)

    def test_fourteen_node_power_at_speed(self):
        """Figure 11a's top MBus curve: 1 TX + 1 RX + 12 FWD."""
        model = MeasuredEnergyModel()
        per_bit = model.system_pj_per_bit(14)
        assert per_bit == pytest.approx(27.45 + 22.71 + 12 * 17.55)

    def test_role_energy_receiver_validation(self):
        roles = RoleEnergy(tx=1, rx=1, fwd=1)
        with pytest.raises(ValueError):
            roles.system_pj_per_bit(3, n_receivers=3)

    def test_goodput_energy_decreases_with_length(self):
        model = MeasuredEnergyModel()
        costs = [model.energy_per_goodput_bit_pj(n, 3) for n in (1, 4, 16, 64)]
        assert costs == sorted(costs, reverse=True)


class TestActivityModel:
    def test_segment_capacitance(self):
        model = ActivityEnergyModel()
        assert model.segment_capacitance_pf == pytest.approx(4.25)

    def test_transition_energy(self):
        model = ActivityEnergyModel()
        expected = 0.5 * 4.25 * 1.2 ** 2
        assert model.energy_per_transition_pj() == pytest.approx(expected)

    def test_system_energy_sums_nodes(self):
        model = ActivityEnergyModel()
        energy = model.system_energy_pj({"a": 10, "b": 10})
        assert energy == pytest.approx(20 * model.energy_per_transition_pj())


class TestBattery:
    def test_paper_capacity_approximation(self):
        """2 uAh x 3.8 V = 27.4 mJ (Section 6.3.1)."""
        assert TEMPERATURE_SYSTEM_BATTERY.energy_mj == pytest.approx(27.36, abs=0.1)

    def test_imager_battery(self):
        assert IMAGER_SYSTEM_BATTERY.capacity_uah == 5.0

    def test_lifetime_days(self):
        battery = Battery(capacity_uah=2.0, voltage=3.8)
        days = battery.lifetime_days_for_events(100.0, 15.0)
        assert days == pytest.approx(47.5, abs=0.5)

    def test_standby_power_shortens_lifetime(self):
        battery = Battery(capacity_uah=2.0, voltage=3.8)
        with_standby = battery.lifetime_days_for_events(100.0, 15.0, 8.0)
        assert with_standby < battery.lifetime_days_for_events(100.0, 15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_uah=0, voltage=3.8)
        with pytest.raises(ValueError):
            Battery(2, 3.8).lifetime_s(0)


class TestStandby:
    def test_mbus_meets_100pw_budget(self):
        """5.6 pW/chip x 14 = 78.4 pW < 100 pW requirement."""
        assert mbus_standby_meets_requirement(14)

    def test_mbus_negligible_in_8nw_system(self):
        """MBus is 3 orders of magnitude below the system's 8 nW."""
        profile = StandbyProfile("temp-system-chip", chip_standby_nw=8.0 / 3)
        assert profile.mbus_fraction < 0.01

    def test_system_standby_sum(self):
        profiles = [StandbyProfile(f"chip{i}", 2.66) for i in range(3)]
        assert system_standby_nw(profiles) == pytest.approx(8.0, abs=0.1)


class TestLedger:
    def test_totals_and_fractions(self):
        ledger = EnergyLedger()
        ledger.add("a", 75.0)
        ledger.add("b", 25.0)
        assert ledger.total_nj == 100.0
        assert ledger.fraction("a") == 0.75

    def test_accumulation_under_same_name(self):
        ledger = EnergyLedger()
        ledger.add("bus", 1.0)
        ledger.add("bus", 2.0)
        assert ledger["bus"] == 3.0

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        merged = a.merge(b)
        assert merged["x"] == 3.0 and merged["y"] == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().add("x", -1.0)

    def test_summary_renders(self):
        ledger = EnergyLedger()
        ledger.add("bus", 5.0)
        assert "bus" in ledger.summary()
