"""Unit tests for the event scheduler."""

import pytest

from repro.sim.scheduler import NS, Simulator, SimulationError, US


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5 * NS, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5 * NS]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(7, lambda n=name: order.append(n))
        sim.run()
        assert order == list("abcde")

    def test_zero_delay_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(42, lambda: times.append(sim.now))
        sim.run()
        assert times == [42]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(10, lambda: chain(depth - 1))

        sim.schedule(10, lambda: chain(3))
        sim.run()
        assert seen == [10, 20, 30, 40]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        sim.run()

    def test_pending_live_count_stays_consistent(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(10 * (i + 1), lambda: None)
        assert sim.pending() == 4
        sim.step()
        assert sim.pending() == 3
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        # Regression: the mediator cancels its own clock event from
        # inside that event's callback; the counter must not double-
        # decrement for an already-consumed event.
        sim = Simulator()
        holder = {}
        holder["event"] = sim.schedule(10, lambda: holder["event"].cancel())
        sim.schedule(20, lambda: None)
        sim.run()
        assert sim.pending() == 0

    def test_pending_never_negative_under_self_cancel_loops(self):
        sim = Simulator()
        for _ in range(3):
            holder = {}
            holder["e"] = sim.schedule(5, lambda h=holder: h["e"].cancel())
            sim.run()
        assert sim.pending() == 0


class TestRunControl:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until=50)
        sim.run()
        assert fired == ["late"]

    def test_advance_moves_time_even_with_no_events(self):
        sim = Simulator()
        sim.advance(3 * US)
        assert sim.now == 3 * US

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_runaway_loop_raises(self):
        sim = Simulator()

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.events_processed == 5
