"""Unit tests for the CLI entry point and the behavioural chips."""

import pytest

from repro.__main__ import main
from repro.core import MBusSystem
from repro.systems.chips import (
    CMD_SAMPLE_REPLY,
    CMD_SAMPLE_REQUEST,
    FU_APP,
    ImagerChip,
    ProcessorSpec,
    RadioChip,
    TemperatureSensorChip,
)


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "cpu -> sensor" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for figure in ("Figure 9", "Figure 10", "Figure 14", "Figure 15"):
            assert figure in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for table in ("Table 1", "Table 2", "Table 3"):
            assert table in out

    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "71 hours" in out

    def test_vcd(self, tmp_path, capsys):
        path = str(tmp_path / "out.vcd")
        assert main(["vcd", path]) == 0
        assert "$enddefinitions" in open(path).read()

    def test_run_with_output_file(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "report.json")
        assert main([
            "run", "examples/scenarios/fig14_burst.json",
            "--backend", "fast", "--output", out,
        ]) == 0
        document = json.load(open(out))
        assert document["backend"] == "fast"
        assert document["n_ok"] == 6
        assert document["workload"]["kind"] == "burst"
        assert "wrote report" in capsys.readouterr().out

    def test_run_with_faults_forces_edge_and_reports_reliability(
        self, tmp_path, capsys
    ):
        import json

        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps({
            "name": "drift",
            "faults": [{"kind": "clock_drift", "node": "m", "ppm": 100.0}],
        }))
        out = str(tmp_path / "report.json")
        assert main([
            "run", "examples/scenarios/fig14_burst.json",
            "--faults", str(faults), "--output", out,
        ]) == 0
        document = json.load(open(out))
        assert document["backend"] == "edge"
        assert document["faults"]["name"] == "drift"
        assert document["reliability"]["recovery_rate"] == 1.0

    def test_sweep_with_jsonl_output(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "points.jsonl")
        assert main([
            "sweep", "examples/scenarios/fig14_burst.json",
            "--backend", "fast", "--output", out,
        ]) == 0
        lines = [
            json.loads(line)
            for line in open(out).read().splitlines() if line
        ]
        assert len(lines) == 4          # the fig14 clock_hz grid
        assert all("params" in line and "report" in line for line in lines)
        assert "4 sweep points" in capsys.readouterr().out

    def test_reliability_command(self, capsys):
        assert main(["reliability"]) == 0
        out = capsys.readouterr().out
        assert "Recovery rate vs. glitch rate" in out
        assert "recovery rate" in out


CAMPAIGN_DOC = "examples/scenarios/recovery_campaign.json"


class TestCampaignCli:
    def test_campaign_run_then_rerun_hits_cache(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        assert main([
            "campaign", "run", CAMPAIGN_DOC, "--store", store, "--json",
        ]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["n_trials"] == 4
        assert first["executed"] == 4
        assert all(
            record["report"]["reliability"] is not None
            for record in first["results"]
        )

        assert main([
            "campaign", "run", CAMPAIGN_DOC, "--store", store, "--json",
        ]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] == 4
        assert second["executed"] == 0
        assert second["results"] == first["results"]

    def test_campaign_status(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "status", CAMPAIGN_DOC,
                     "--store", store]) == 0
        assert "0/4" in capsys.readouterr().out
        assert main(["campaign", "run", CAMPAIGN_DOC, "--store", store,
                     "--output", str(tmp_path / "out.jsonl")]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", CAMPAIGN_DOC,
                     "--store", store]) == 0
        assert "4/4" in capsys.readouterr().out

    def test_campaign_results_query_and_jsonl(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store")
        out = str(tmp_path / "records.jsonl")
        assert main(["campaign", "run", CAMPAIGN_DOC, "--store", store]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "results", CAMPAIGN_DOC, "--store", store,
            "--where", "faults.faults.0.rate_hz=4000.0",
            "--output", out,
        ]) == 0
        lines = [
            json.loads(line)
            for line in open(out).read().splitlines() if line
        ]
        assert len(lines) == 1
        assert lines[0]["params"]["faults.faults.0.rate_hz"] == 4000.0

    def test_campaign_results_empty_store_fails(self, tmp_path, capsys):
        assert main([
            "campaign", "results", CAMPAIGN_DOC,
            "--store", str(tmp_path / "empty"),
        ]) == 1
        assert "no stored results" in capsys.readouterr().err


class TestFailureCli:
    """Failure-as-data surface: exit codes, --failed-only, compact."""

    @pytest.fixture
    def chaos_doc(self, tmp_path):
        import json

        doc = tmp_path / "chaos.json"
        doc.write_text(json.dumps({
            "name": "cli-chaos",
            "system": {
                "name": "cli-chaos",
                "nodes": [
                    {"name": "m", "short_prefix": 1, "is_mediator": True},
                    {"name": "a", "short_prefix": 2},
                ],
            },
            "workload": {"kind": "chaos", "behavior": "ok"},
            "grid": {"workload.behavior": ["ok", "raise"]},
            "retry": {"max_attempts": 1},
        }))
        return str(doc)

    def test_run_exits_nonzero_when_any_trial_failed(
        self, tmp_path, chaos_doc, capsys
    ):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", chaos_doc, "--store", store]) == 1
        out = capsys.readouterr().out
        assert "1 FAILED" in out
        assert "outcome" in out

    def test_results_failed_only_and_exit_code(
        self, tmp_path, chaos_doc, capsys
    ):
        import json

        store = str(tmp_path / "store")
        main(["campaign", "run", chaos_doc, "--store", store])
        capsys.readouterr()
        assert main([
            "campaign", "results", chaos_doc, "--store", store,
            "--failed-only", "--json",
        ]) == 1
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["outcome"] == "error"

    def test_status_reports_failures(self, tmp_path, chaos_doc, capsys):
        store = str(tmp_path / "store")
        main(["campaign", "run", chaos_doc, "--store", store])
        capsys.readouterr()
        assert main(["campaign", "status", chaos_doc,
                     "--store", store]) == 0
        assert "1 FAILED" in capsys.readouterr().out

    def test_compact_subcommand(self, tmp_path, chaos_doc, capsys):
        import json

        store = str(tmp_path / "store")
        main(["campaign", "run", chaos_doc, "--store", store])
        main(["campaign", "run", chaos_doc, "--store", store,
              "--retry-failed"])
        capsys.readouterr()
        assert main(["campaign", "compact", chaos_doc,
                     "--store", store, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["live_records"] == 2

    def test_compact_requires_store(self, chaos_doc, capsys):
        assert main(["campaign", "compact", chaos_doc]) == 2
        assert "--store" in capsys.readouterr().err


class TestFuzzCli:
    def test_bounded_fuzz_smoke(self, tmp_path, capsys):
        assert main([
            "fuzz", "--count", "2", "--seed", "11",
            "--repro-dir", str(tmp_path / "repros"),
        ]) == 0
        assert "0 divergent" in capsys.readouterr().out

    def test_fuzz_json_output(self, capsys):
        import json

        assert main([
            "fuzz", "--count", "1", "--seed", "11", "--no-repros",
            "--no-invariants", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_scenarios"] == 1
        assert report["n_divergent"] == 0


class TestProcessorSpec:
    def test_relay_energy_is_1nj(self):
        """50 cycles x 20 pJ = 1 nJ (Section 6.3.1)."""
        assert ProcessorSpec().relay_energy_nj == pytest.approx(1.0)


def _bench_system():
    system = MBusSystem()
    system.add_mediator_node("cpu", short_prefix=0x1)
    system.add_node("sensor", short_prefix=0x2)
    system.add_node("radio", short_prefix=0x3)
    system.build()
    return system


class TestTemperatureSensorChip:
    def test_ignores_malformed_requests(self):
        system = _bench_system()
        chip = TemperatureSensorChip(system.node("sensor"))
        from repro.core import Address

        system.send("cpu", Address.short(0x2, FU_APP), b"\x99\x01")
        assert chip.samples_taken == 0

    def test_reply_is_8_bytes_to_named_destination(self):
        system = _bench_system()
        TemperatureSensorChip(system.node("sensor"))
        RadioChip(system.node("radio"))
        from repro.core import Address

        request = bytes([CMD_SAMPLE_REQUEST, 0x3, FU_APP, 7])
        system.send("cpu", Address.short(0x2, FU_APP), request)
        system.run_until_idle()
        packet = system.node("radio").layer.inbox[-1].payload
        assert len(packet) == 8
        assert packet[0] == CMD_SAMPLE_REPLY
        assert packet[1] == 7   # sequence echoed

    def test_readings_drift_deterministically(self):
        system = _bench_system()
        chip = TemperatureSensorChip(system.node("sensor"))
        first = [chip.read_temperature() for _ in range(5)]
        chip2 = TemperatureSensorChip(_bench_system().node("sensor"))
        second = [chip2.read_temperature() for _ in range(5)]
        assert first == second
        assert len(set(first)) > 1


class TestImagerChip:
    def _chip(self, rows=2):
        system = MBusSystem()
        system.add_mediator_node("cpu", short_prefix=0x1)
        system.add_node("imager", short_prefix=0x2)
        system.add_node("radio", short_prefix=0x3)
        system.build()
        return ImagerChip(system.node("imager"), radio_prefix=0x3, rows=rows)

    def test_geometry(self):
        chip = self._chip()
        assert chip.row_bits == 1_440         # 160 px x 9 bit
        assert chip.row_bytes == 180
        assert ImagerChip.ROWS * chip.row_bytes == 28_800

    def test_rows_are_packed_9bit_pixels(self):
        chip = self._chip()
        row = chip.capture_row(0)
        assert len(row) == 180

    def test_rows_differ(self):
        chip = self._chip()
        assert chip.capture_row(0) != chip.capture_row(1)

    def test_motion_detection_needs_reference(self):
        chip = self._chip()
        assert not chip.detect_motion([0, 0])
        assert chip.detect_motion([5_000, 5_000])


class TestRadioChip:
    def test_accumulates_bytes_and_energy(self):
        system = _bench_system()
        radio = RadioChip(system.node("radio"), nj_per_transmitted_byte=2.0)
        from repro.core import Address

        system.send("cpu", Address.short(0x3, FU_APP), bytes(10))
        assert radio.transmitted_bytes == 10
        assert radio.radio_energy_nj() == pytest.approx(20.0)
