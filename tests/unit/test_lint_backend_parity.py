"""Backend-parity pass: replicated-validation drift and registry
consistency.

The regression at the heart of this file (satellite: error-literal
desync): the batch compiler replicates core construction-path
ConfigurationError literals verbatim, and the pass must fail the
build the moment someone rewords one side only.
"""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=["backend-parity"])


_CORE_BUS = '''
class MBusSystem:
    def _validate_prefixes(self):
        if dup:
            raise ConfigurationError(
                f"short prefix {prefix:#x} assigned to both "
                f"{a!r} and {b!r}; run enumeration to "
                "disambiguate duplicate chips (4.7)"
            )
        if reserved:
            raise ConfigurationError(
                f"short prefix {prefix:#x} is reserved"
            )

    def set_arbitration_anchor(self, name):
        if gated:
            raise ConfigurationError(
                "the arbitration anchor holds always-on "
                "wire-controller state; it cannot be power-gated"
            )
'''

_BATCH_IN_SYNC = '''
class CompiledSystem:
    def _resolve_anchor(self, name):
        if gated:
            raise ConfigurationError(
                "the arbitration anchor holds always-on "
                "wire-controller state; it cannot be power-gated"
            )


def _validate_prefixes(specs):
    if dup:
        raise ConfigurationError(
            f"short prefix {prefix:#x} assigned to both "
            f"{a!r} and {b!r}; run enumeration to "
            "disambiguate duplicate chips (4.7)"
        )
    if reserved:
        raise ConfigurationError(
            f"short prefix {prefix:#x} is reserved"
        )


def _validate_node_specs(specs):
    pass
'''

# Same file with ONE error string reworded: "is reserved" became
# "is a reserved prefix".  The core literal is now missing from the
# batch mirror, and the batch mirror raises a literal the core never
# does.
_BATCH_DESYNCED = _BATCH_IN_SYNC.replace(
    'f"short prefix {prefix:#x} is reserved"',
    'f"short prefix {prefix:#x} is a reserved prefix"',
)


def test_synchronized_literals_clean(tmp_path):
    findings = lint(tmp_path, {
        "core/bus.py": _CORE_BUS,
        "core/node.py": (
            "class NodeConfig:\n"
            "    def __post_init__(self):\n"
            "        pass\n"
        ),
        "batch/compiler.py": _BATCH_IN_SYNC,
    })
    assert findings == []


def test_desynchronized_error_literal_flagged(tmp_path):
    findings = lint(tmp_path, {
        "core/bus.py": _CORE_BUS,
        "core/node.py": (
            "class NodeConfig:\n"
            "    def __post_init__(self):\n"
            "        pass\n"
        ),
        "batch/compiler.py": _BATCH_DESYNCED,
    })
    # One missing core literal + one extra batch literal.
    assert len(findings) == 2
    joined = " ".join(f.message for f in findings)
    assert "missing a core construction-path error" in joined
    assert "never does" in joined
    assert all(f.path == "batch/compiler.py" for f in findings)


def test_deleted_mirror_function_flagged(tmp_path):
    findings = lint(tmp_path, {
        "core/bus.py": _CORE_BUS,
        "batch/compiler.py": "def unrelated():\n    pass\n",
    })
    assert any(
        "no longer defines" in f.message for f in findings
    )


_GOOD_TABLE = '''
BACKEND_TABLE = (
    BackendInfo("edge", supports_trace=True, supports_faults=True,
                supports_setup=True),
    BackendInfo("fast", supports_trace=False, supports_faults=True,
                supports_setup=True),
    BackendInfo("auto", selector=True, supports_trace=True,
                supports_faults=True, supports_setup=True),
)


def select_backend(trial):
    if trial.trace:
        return "edge"
    return "fast"
'''


def test_consistent_registry_clean(tmp_path):
    findings = lint(tmp_path, {"scenario/runner.py": _GOOD_TABLE})
    assert findings == []


def test_duplicate_backend_name_flagged(tmp_path):
    findings = lint(tmp_path, {
        "scenario/runner.py": _GOOD_TABLE.replace(
            'BackendInfo("fast"', 'BackendInfo("edge"'
        ),
    })
    assert any("duplicate backend name" in f.message for f in findings)


def test_selector_capability_union_enforced(tmp_path):
    findings = lint(tmp_path, {
        "scenario/runner.py": _GOOD_TABLE.replace(
            '"auto", selector=True, supports_trace=True',
            '"auto", selector=True, supports_trace=False',
        ),
    })
    assert len(findings) == 1
    assert "supports_trace" in findings[0].message


def test_selector_returning_unregistered_backend_flagged(tmp_path):
    findings = lint(tmp_path, {
        "scenario/runner.py": _GOOD_TABLE.replace(
            'return "fast"', 'return "turbo"'
        ),
    })
    assert len(findings) == 1
    assert "'turbo'" in findings[0].message


def test_cli_backend_defaults_must_be_registered(tmp_path):
    cli = (
        "def build(parser):\n"
        "    parser.add_argument('--backends', default='edge,warp')\n"
    )
    findings = lint(tmp_path, {
        "scenario/runner.py": _GOOD_TABLE,
        "__main__.py": cli,
    })
    assert len(findings) == 1
    assert "'warp'" in findings[0].message
    assert findings[0].path == "__main__.py"


def test_real_tree_parity_holds():
    """The shipped batch compiler mirrors the shipped core literals."""
    assert run_lint(select=["backend-parity"]) == []
