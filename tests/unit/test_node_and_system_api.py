"""Unit tests for node configuration and system-level APIs."""

import pytest

from repro.core import Address, MBusSystem, Message
from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.node import NodeConfig


class TestNodeConfig:
    def test_requires_some_prefix(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(name="x")

    def test_mediator_may_be_standalone(self):
        config = NodeConfig(name="med", is_mediator=True)
        assert config.short_prefix is None

    def test_auto_sleep_defaults_to_gating(self):
        assert NodeConfig(name="a", short_prefix=1, power_gated=True).auto_sleep
        assert not NodeConfig(name="a", short_prefix=1).auto_sleep

    def test_auto_sleep_override(self):
        config = NodeConfig(
            name="a", short_prefix=1, power_gated=True, auto_sleep=False
        )
        assert config.auto_sleep is False

    def test_mediator_cannot_be_gated(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(name="m", short_prefix=1, is_mediator=True,
                       power_gated=True)

    def test_full_prefix_only_is_valid(self):
        config = NodeConfig(name="a", full_prefix=0x12345)
        assert config.short_prefix is None


class TestSystemAssembly:
    def test_build_is_idempotent(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.build()
        system.build()
        assert len(system.nodes) == 2

    def test_cannot_add_after_build(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.build()
        with pytest.raises(ConfigurationError):
            system.add_node("late", short_prefix=0x3)

    def test_needs_two_nodes(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        with pytest.raises(ConfigurationError):
            system.build()

    def test_ring_wiring_is_circular(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        system.build()
        nodes = system.nodes
        for i, node in enumerate(nodes):
            downstream = nodes[(i + 1) % len(nodes)]
            assert node.dout is downstream.din
            assert node.clkout is downstream.clkin

    def test_mediator_property(self):
        system = MBusSystem()
        with pytest.raises(ConfigurationError):
            system.mediator
        system.add_mediator_node("m", short_prefix=0x1)
        assert system.mediator.name == "m"

    def test_is_idle_before_build(self):
        assert MBusSystem().is_idle

    def test_standalone_mediator_system(self):
        """The mediator may be a standalone component (4.2)."""
        system = MBusSystem()
        system.add_mediator_node("med")   # no prefixes
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        result = system.send("a", Address.short(0x3, 5), b"\x42")
        assert result.ok
        assert system.node("b").inbox[-1].payload == b"\x42"


class TestRunControl:
    def _system(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        return system

    def test_run_for_advances_time(self):
        system = self._system()
        system.build()
        system.run_for(0.001)
        assert system.sim.now == pytest.approx(1e9, rel=0.01)

    def test_send_failure_reports_protocol_error(self):
        system = self._system()
        system.build()
        # A node cannot send a message from a name that does not exist.
        with pytest.raises(ConfigurationError):
            system.send("ghost", Address.short(0x2), b"")

    def test_transaction_results_accumulate(self):
        system = self._system()
        for i in range(3):
            system.send("m", Address.short(0x2, 5), bytes([i]))
        assert [t.index for t in system.transactions] == [0, 1, 2]

    def test_result_duration_positive(self):
        system = self._system()
        result = system.send("m", Address.short(0x2, 5), b"\x01")
        assert result.duration_ps > 0
        assert result.total_cycles == result.clock_cycles + result.control_cycles

    def test_wire_activity_nonzero_after_traffic(self):
        system = self._system()
        system.send("m", Address.short(0x2, 5), b"\x01")
        activity = system.wire_activity()
        assert all(count > 0 for count in activity.values())

    def test_power_domain_report_shape(self):
        system = self._system()
        system.send("m", Address.short(0x2, 5), b"\x01")
        report = system.power_domain_report()
        assert set(report) == {"m", "a"}
        assert "bus_on_s" in report["a"]

    def test_broadcast_accepts_priority_flag(self):
        # broadcast() mirrors send()/post(): the priority kwarg claims
        # the priority arbitration slot for the broadcast message.
        system = self._system()
        system.add_node("b", short_prefix=0x3)
        system.build()
        # Queue a normal message first, then a priority broadcast; the
        # broadcast must win the next arbitration round.
        system.post("a", Address.short(0x3, 5), b"\x01")
        result = system.broadcast("b", channel=0, payload=b"\xEE",
                                  priority=True)
        assert result.message.priority
        assert result.tx_node == "b"
        first_two = [t.tx_node for t in system.transactions[:2]]
        assert first_two[0] == "b"


class TestNodeApi:
    def test_post_message_object(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.build()
        system.node("m").post(Message(dest=Address.short(0x2, 5), payload=b"\x05"))
        system.run_until_idle()
        assert system.node("a").inbox[-1].payload == b"\x05"

    def test_on_receive_callback(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.build()
        seen = []
        system.node("a").on_receive = lambda node, msg: seen.append(msg.payload)
        system.send("m", Address.short(0x2, 5), b"\x09")
        assert seen == [b"\x09"]

    def test_results_record_bytes_sent(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.send("m", Address.short(0x2, 5), bytes(10))
        outcome = system.node("m").results[-1]
        assert outcome.success
        assert outcome.bytes_sent == 10

    def test_aborted_send_reports_progress(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=4)
        system.send("m", Address.short(0x2, 5), bytes(32))
        outcome = system.node("m").results[-1]
        assert not outcome.success
        assert 0 < outcome.bytes_sent < 32

    def test_sleep_requires_idle_bus(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, power_gated=True, auto_sleep=False)
        system.send("m", Address.short(0x2, 5), b"\x01")
        node = system.node("a")
        node.sleep()    # idle: fine
        assert not node.bus_domain.is_on
