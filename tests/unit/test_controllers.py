"""Unit tests for the wire controller, interjection detector, power
domains, and layer controller — the Figure 8 building blocks."""

import pytest

from repro.core.addresses import Address
from repro.core.interjection import InterjectionDetector
from repro.core.layer_controller import (
    FU_MEMORY_WRITE,
    FU_REGISTER,
    GenericLayerController,
)
from repro.core.messages import ReceivedMessage
from repro.core.power_domain import PowerDomain, WakeupSequencer
from repro.core.wire_controller import LineController
from repro.sim.scheduler import NS, Simulator
from repro.sim.signals import Net


def _line(sim):
    a = Net(sim, "in")
    b = Net(sim, "out")
    ctl = LineController(a, b, forward_delay_ps=10 * NS, drive_delay_ps=NS)
    return a, b, ctl


class TestLineController:
    def test_forwards_by_default(self):
        sim = Simulator()
        a, b, _ = _line(sim)
        a.set(0)
        sim.run()
        assert b.value == 0

    def test_forwarding_has_propagation_delay(self):
        sim = Simulator()
        a, b, _ = _line(sim)
        a.set(0)
        assert b.value == 1          # not yet propagated
        sim.run()
        assert b.value == 0

    def test_drive_breaks_the_chain(self):
        sim = Simulator()
        a, b, ctl = _line(sim)
        ctl.drive(1)
        a.set(0)
        sim.run()
        assert b.value == 1          # input ignored while driving

    def test_resume_forwarding_snaps_to_input(self):
        sim = Simulator()
        a, b, ctl = _line(sim)
        ctl.drive(1)
        a.set(0)
        sim.run()
        ctl.forward()
        sim.run()
        assert b.value == 0

    def test_hold_freezes_output(self):
        sim = Simulator()
        a, b, ctl = _line(sim)
        ctl.hold()
        a.set(0)
        sim.run()
        assert b.value == 1          # held high: the interjection request

    def test_transition_counters(self):
        sim = Simulator()
        a, b, ctl = _line(sim)
        a.set(0)
        sim.run()
        a.set(1)
        sim.run()
        assert ctl.forward_transitions == 2
        ctl.drive(0)
        sim.run()
        assert ctl.drive_transitions == 1


class TestInterjectionDetector:
    def _setup(self, threshold=3):
        sim = Simulator()
        data = Net(sim, "data")
        clk = Net(sim, "clk")
        hits = []
        det = InterjectionDetector(
            data, clk, threshold=threshold, on_detect=lambda: hits.append(1)
        )
        return sim, data, clk, det, hits

    def test_counts_data_toggles(self):
        _, data, _, det, hits = self._setup()
        data.set(0)
        data.set(1)
        assert det.count == 2
        assert hits == []
        data.set(0)
        assert hits == [1]
        assert det.detected

    def test_clk_edge_resets_count(self):
        """The counter is clocked by DATA and reset by CLK (4.9)."""
        _, data, clk, det, hits = self._setup()
        data.set(0)
        data.set(1)
        clk.set(0)
        assert det.count == 0
        data.set(0)
        data.set(1)
        assert hits == []

    def test_saturates_without_refiring(self):
        _, data, _, det, hits = self._setup(threshold=2)
        for value in (0, 1, 0, 1, 0):
            data.set(value)
        assert hits == [1]

    def test_rearms_after_clk(self):
        _, data, clk, det, hits = self._setup(threshold=2)
        data.set(0)
        data.set(1)
        clk.set(0)
        data.set(0)
        data.set(1)
        assert hits == [1, 1]

    def test_threshold_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            InterjectionDetector(Net(sim, "d"), Net(sim, "c"), threshold=0)


class TestPowerDomain:
    def test_always_on_starts_on(self):
        domain = PowerDomain(Simulator(), "ao", always_on=True)
        assert domain.is_on
        with pytest.raises(ValueError):
            domain.power_off("no")

    def test_on_off_accounting(self):
        sim = Simulator()
        domain = PowerDomain(sim, "d")
        sim.advance(100)
        domain.power_on("test")
        sim.advance(50)
        domain.power_off("test")
        sim.advance(100)
        assert domain.on_time_ps == 50
        assert domain.wake_count == 1

    def test_open_interval_counted(self):
        sim = Simulator()
        domain = PowerDomain(sim, "d")
        domain.power_on("test")
        sim.advance(30)
        assert domain.total_on_time_ps() == 30

    def test_double_on_is_noop(self):
        domain = PowerDomain(Simulator(), "d")
        domain.power_on("a")
        domain.power_on("b")
        assert domain.wake_count == 1


class TestWakeupSequencer:
    def test_four_edges_to_wake(self):
        """Section 3: release power gate, clock, isolation, reset."""
        sim = Simulator()
        domain = PowerDomain(sim, "bus")
        woken = []
        seq = WakeupSequencer(domain, on_awake=lambda: woken.append(1))
        seq.arm("test")
        for i in range(3):
            seq.edge()
            assert not domain.is_on, f"woke after only {i + 1} edges"
        seq.edge()
        assert domain.is_on
        assert woken == [1]

    def test_wakeup_steps_logged_in_order(self):
        sim = Simulator()
        domain = PowerDomain(sim, "bus")
        seq = WakeupSequencer(domain)
        seq.arm("rx")
        for _ in range(4):
            seq.edge()
        steps = [e.action for e in domain.log if e.action.startswith("release")]
        assert steps == [
            "release_power_gate",
            "release_clock",
            "release_isolation",
            "release_reset",
        ]

    def test_rearm_mid_sequence_does_not_reset(self):
        sim = Simulator()
        domain = PowerDomain(sim, "bus")
        seq = WakeupSequencer(domain)
        seq.arm("first")
        seq.edge()
        seq.edge()
        seq.arm("again")      # must be a no-op
        seq.edge()
        seq.edge()
        assert domain.is_on

    def test_edges_without_arm_ignored(self):
        domain = PowerDomain(Simulator(), "bus")
        seq = WakeupSequencer(domain)
        for _ in range(10):
            seq.edge()
        assert not domain.is_on

    def test_arm_when_on_is_noop(self):
        domain = PowerDomain(Simulator(), "bus")
        domain.power_on("pre")
        seq = WakeupSequencer(domain)
        seq.arm("x")
        assert not seq.armed


def _message(fu_id, payload, broadcast=False):
    if broadcast:
        dest = Address.broadcast(fu_id)
    else:
        dest = Address.short(0x2, fu_id)
    return ReceivedMessage(
        source_hint="", dest=dest, payload=payload, broadcast=broadcast
    )


class TestLayerController:
    def test_register_write(self):
        layer = GenericLayerController()
        payload = bytes([7]) + (0xABCDEF).to_bytes(3, "big")
        layer.deliver(_message(FU_REGISTER, payload))
        assert layer.registers[7] == 0xABCDEF
        assert layer.register_writes[0].address == 7

    def test_multiple_register_records(self):
        layer = GenericLayerController()
        payload = bytes([1, 0, 0, 5, 2, 0, 0, 9])
        layer.deliver(_message(FU_REGISTER, payload))
        assert layer.registers[1] == 5
        assert layer.registers[2] == 9

    def test_malformed_register_write_recorded_not_raised(self):
        layer = GenericLayerController()
        layer.deliver(_message(FU_REGISTER, b"\x01\x02"))
        assert len(layer.malformed) == 1

    def test_memory_write(self):
        layer = GenericLayerController(memory_words=16)
        payload = (2).to_bytes(4, "big") + (0xDEADBEEF).to_bytes(4, "big")
        layer.deliver(_message(FU_MEMORY_WRITE, payload))
        assert layer.memory[2] == 0xDEADBEEF

    def test_memory_overrun_recorded(self):
        layer = GenericLayerController(memory_words=2)
        payload = (1).to_bytes(4, "big") + bytes(8)
        layer.deliver(_message(FU_MEMORY_WRITE, payload))
        assert len(layer.malformed) == 1

    def test_memory_read_helper(self):
        layer = GenericLayerController(memory_words=4)
        layer.memory[1] = 42
        assert layer.read_memory(1, 1) == [42]

    def test_app_handler_dispatch(self):
        layer = GenericLayerController()
        seen = []
        layer.register_handler(5, lambda m: seen.append(m.payload))
        layer.deliver(_message(5, b"\x01"))
        assert seen == [b"\x01"]

    def test_reserved_fu_cannot_be_claimed(self):
        layer = GenericLayerController()
        with pytest.raises(Exception):
            layer.register_handler(FU_REGISTER, lambda m: None)

    def test_broadcast_goes_to_channel_handler(self):
        """Broadcast channels are a separate namespace from FU-IDs."""
        layer = GenericLayerController()
        seen = []
        layer.register_broadcast_handler(5, lambda m: seen.append(m.broadcast))
        layer.deliver(_message(5, b"", broadcast=True))
        assert seen == [True]

    def test_broadcast_channel_can_shadow_reserved_fu(self):
        layer = GenericLayerController()
        seen = []
        layer.register_broadcast_handler(
            FU_REGISTER, lambda m: seen.append("bcast")
        )
        layer.deliver(_message(FU_REGISTER, b"", broadcast=True))
        assert seen == ["bcast"]

    def test_unicast_does_not_hit_broadcast_handler(self):
        layer = GenericLayerController()
        seen = []
        layer.register_broadcast_handler(5, lambda m: seen.append(1))
        layer.deliver(_message(5, b"\x01"))
        assert seen == []

    def test_on_message_observer(self):
        layer = GenericLayerController()
        seen = []
        layer.on_message = lambda m: seen.append(m)
        layer.deliver(_message(9, b"\x00"))
        assert len(seen) == 1
