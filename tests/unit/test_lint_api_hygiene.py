"""API-hygiene pass: mutable defaults and swallowed exceptions."""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, source):
    (tmp_path / "m.py").write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=["api-hygiene"])


def test_mutable_literal_defaults_flagged(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run(jobs=[], opts={}, seen=set()):\n"
            "    pass\n"
        ),
    )
    assert len(findings) == 3
    assert "mutable default" in findings[0].message


def test_mutable_constructor_default_flagged(tmp_path):
    findings = lint(tmp_path, "def run(jobs=list()):\n    pass\n")
    assert len(findings) == 1


def test_keyword_only_mutable_default_flagged(tmp_path):
    findings = lint(
        tmp_path, "def run(*, jobs=[]):\n    pass\n"
    )
    assert len(findings) == 1


def test_none_and_immutable_defaults_clean(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run(jobs=None, retries=3, mode='fast', shape=()):\n"
            "    pass\n"
        ),
    )
    assert findings == []


def test_populated_constructor_default_clean(tmp_path):
    # list(seed) is re-evaluated per call in spirit; the pass only
    # flags the empty-container idiom that should be None.
    findings = lint(
        tmp_path, "def run(jobs=tuple('ab')):\n    pass\n"
    )
    assert findings == []


def test_bare_except_flagged(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run():\n"
            "    try:\n"
            "        go()\n"
            "    except:\n"
            "        raise\n"
        ),
    )
    assert len(findings) == 1
    assert "KeyboardInterrupt" in findings[0].message


def test_broad_swallowing_handler_flagged(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception:\n"
            "        pass\n"
        ),
    )
    assert len(findings) == 1
    assert "swallows" in findings[0].message


def test_bare_swallowing_handler_double_flagged(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run():\n"
            "    try:\n"
            "        go()\n"
            "    except:\n"
            "        pass\n"
        ),
    )
    assert len(findings) == 2


def test_broad_handler_that_records_clean(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def run():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception as exc:\n"
            "        record(exc)\n"
        ),
    )
    assert findings == []


def test_narrow_swallow_clean(tmp_path):
    # Swallowing a *narrow*, expected exception is a legitimate idiom
    # (e.g. queue.Empty in a drain loop).
    findings = lint(
        tmp_path,
        (
            "def run():\n"
            "    try:\n"
            "        go()\n"
            "    except KeyError:\n"
            "        pass\n"
        ),
    )
    assert findings == []
