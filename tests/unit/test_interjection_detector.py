"""InterjectionDetector edge cases (Section 4.9's saturating counter).

Complements the basic coverage in ``test_controllers.py`` with the
corner cases the fault subsystem leans on: exact-threshold
saturation, re-arm semantics across CLK polarity, threshold-1
degenerate detectors, and the detector's behaviour under glitch-like
sub-threshold noise.
"""

import pytest

from repro.core.interjection import InterjectionDetector
from repro.sim.scheduler import Simulator
from repro.sim.signals import Net


def make_detector(threshold=3):
    sim = Simulator()
    data = Net(sim, "data")
    clk = Net(sim, "clk")
    fired = []
    detector = InterjectionDetector(
        data, clk, threshold=threshold, on_detect=lambda: fired.append(sim.now)
    )
    return sim, data, clk, detector, fired


def toggle(net, n):
    for _ in range(n):
        net.set(net.value ^ 1)


class TestSaturation:
    def test_fires_exactly_at_threshold(self):
        _, data, _, detector, fired = make_detector(threshold=3)
        toggle(data, 2)
        assert fired == [] and detector.count == 2 and not detector.detected
        toggle(data, 1)
        assert len(fired) == 1 and detector.detected

    def test_count_saturates_instead_of_wrapping(self):
        _, data, _, detector, fired = make_detector(threshold=3)
        toggle(data, 50)
        assert detector.count == 3          # clamped at the threshold
        assert detector.detections == 1     # one detection, no refire
        assert len(fired) == 1

    def test_threshold_one_fires_on_any_data_edge(self):
        _, data, clk, detector, fired = make_detector(threshold=1)
        toggle(data, 1)
        assert len(fired) == 1
        toggle(data, 3)                     # saturated: no refire
        assert len(fired) == 1
        toggle(clk, 1)                      # reset + re-arm
        toggle(data, 1)
        assert len(fired) == 2

    def test_sub_threshold_noise_never_fires(self):
        """A glitch shorter than the threshold between two CLK edges is
        exactly the noise the counter is designed to ignore."""
        _, data, clk, detector, fired = make_detector(threshold=3)
        for _ in range(10):
            toggle(data, 2)                 # 2 < 3: never saturates
            toggle(clk, 1)                  # bus clock edge resets
        assert fired == []
        assert detector.detections == 0


class TestReset:
    @pytest.mark.parametrize("initial_clk", [0, 1])
    def test_both_clk_polarities_reset(self, initial_clk):
        sim = Simulator()
        data = Net(sim, "data")
        clk = Net(sim, "clk", initial=initial_clk)
        detector = InterjectionDetector(data, clk, threshold=3)
        toggle(data, 2)
        clk.set(clk.value ^ 1)              # rising or falling: both reset
        assert detector.count == 0

    def test_reset_rearms_after_detection(self):
        _, data, clk, detector, fired = make_detector(threshold=2)
        toggle(data, 2)
        assert detector.detected and len(fired) == 1
        toggle(clk, 1)
        assert not detector.detected and detector.count == 0
        toggle(data, 2)
        assert len(fired) == 2 and detector.detections == 2

    def test_partial_count_discarded_by_reset(self):
        """Counts never accumulate across CLK edges: 2+2 toggles in
        adjacent half-cycles stay below a threshold of 3."""
        _, data, clk, detector, fired = make_detector(threshold=3)
        toggle(data, 2)
        toggle(clk, 1)
        toggle(data, 2)
        assert fired == [] and detector.count == 2

    def test_detected_property_clears_on_clk(self):
        _, data, clk, detector, _ = make_detector(threshold=2)
        toggle(data, 2)
        assert detector.detected
        toggle(clk, 1)
        assert not detector.detected
