"""Unit tests for the fault primitives: schemas, compilation, validation."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.faults import (
    BitFlip,
    ClockDrift,
    DropEdge,
    FaultSpec,
    NodePowerLoss,
    RandomGlitches,
    StuckAt,
    WireGlitch,
    fault_from_dict,
    load_faults,
    normalize_faults,
)
from repro.scenario import NodeSpec, SystemSpec


@pytest.fixture
def spec():
    return SystemSpec(
        name="faults-unit",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
            NodeSpec("b", short_prefix=0x3),
        ),
    )


ALL_FAULTS = (
    WireGlitch("a", at_s=1e-3, wire="data", edges=7, width_s=1e-7),
    StuckAt("b", at_s=2e-3, duration_s=1e-4, value=0, wire="clk"),
    DropEdge("m", at_s=3e-3, count=2, duration_s=1e-4, wire="clk"),
    BitFlip("a", at_s=4e-3, duration_s=1e-5, wire="data"),
    ClockDrift("m", ppm=250.0),
    NodePowerLoss("b", at_s=5e-3, duration_s=1e-3),
    RandomGlitches(seed=9, rate_hz=500.0, duration_s=0.01, nodes=("a", "b")),
)


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "fault", ALL_FAULTS, ids=[f.kind for f in ALL_FAULTS]
    )
    def test_each_primitive_round_trips(self, fault):
        wire = json.loads(json.dumps(fault.to_dict()))
        assert fault_from_dict(wire) == fault

    def test_fault_spec_round_trips(self):
        fault_spec = FaultSpec(faults=ALL_FAULTS, name="everything")
        wire = json.loads(json.dumps(fault_spec.to_dict()))
        assert FaultSpec.from_dict(wire) == fault_spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            fault_from_dict({"kind": "gamma_ray"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="bad wire_glitch"):
            fault_from_dict(
                {"kind": "wire_glitch", "node": "a", "at_s": 0.0, "bogus": 1}
            )

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FaultSpec"):
            FaultSpec.from_dict({"faults": [], "seed": 3})

    def test_load_faults_accepts_wrapper_document(self):
        fault_spec = FaultSpec((ClockDrift("m", ppm=10.0),), name="w")
        assert load_faults({"faults": fault_spec.to_dict()}) == fault_spec
        assert load_faults(fault_spec.to_dict()) == fault_spec


class TestCompilation:
    def test_schedule_is_time_sorted_and_indexed(self, spec):
        fault_spec = FaultSpec(
            (
                StuckAt("b", at_s=2e-3, duration_s=1e-4),
                WireGlitch("a", at_s=1e-3, edges=3, width_s=1e-7),
            )
        )
        schedule = fault_spec.compile(spec)
        times = [action.at_ps for action in schedule]
        assert times == sorted(times)
        assert {action.fault_index for action in schedule} == {0, 1}
        # The glitch (index 1) fires before the stuck window (index 0).
        assert schedule[0].fault_index == 1
        assert schedule[0].kind == "glitch_edge"

    def test_random_glitches_are_seed_deterministic(self, spec):
        one = FaultSpec((RandomGlitches(seed=5, rate_hz=1e4),)).compile(spec)
        two = FaultSpec((RandomGlitches(seed=5, rate_hz=1e4),)).compile(spec)
        other = FaultSpec((RandomGlitches(seed=6, rate_hz=1e4),)).compile(spec)
        assert one == two
        assert one != other
        assert one, "a 10 kHz rate over 10 ms must produce events"

    def test_random_glitches_zero_rate_is_empty(self, spec):
        assert FaultSpec(
            (RandomGlitches(seed=1, rate_hz=0.0),)
        ).compile(spec) == ()

    def test_clock_drift_compiles_to_bind_time_action(self, spec):
        (action,) = FaultSpec((ClockDrift("m", ppm=100.0),)).compile(spec)
        assert action.kind == "clock_drift"
        assert action.at_ps == 0
        assert action.value == 100.0


class TestValidation:
    def test_unknown_node_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="unknown node"):
            FaultSpec((WireGlitch("ghost", at_s=0.0),)).compile(spec)

    def test_bad_wire_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="wire"):
            FaultSpec((WireGlitch("a", at_s=0.0, wire="power"),)).compile(spec)

    def test_negative_time_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultSpec((WireGlitch("a", at_s=-1.0),)).compile(spec)

    def test_stuck_value_must_be_binary(self, spec):
        with pytest.raises(ConfigurationError, match="0 or 1"):
            FaultSpec(
                (StuckAt("a", at_s=0.0, duration_s=1e-3, value=2),)
            ).compile(spec)

    def test_mediator_power_loss_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="mediator"):
            FaultSpec((NodePowerLoss("m", at_s=0.0),)).compile(spec)

    def test_drift_bound(self, spec):
        with pytest.raises(ConfigurationError, match="ppm"):
            FaultSpec((ClockDrift("m", ppm=2e6),)).compile(spec)

    def test_glitch_needs_edges(self, spec):
        with pytest.raises(ConfigurationError, match="edge"):
            FaultSpec((WireGlitch("a", at_s=0.0, edges=0),)).compile(spec)


class TestContainer:
    def test_truthiness(self):
        assert not FaultSpec()
        assert FaultSpec((ClockDrift("m", ppm=1.0),))

    def test_addition_concatenates(self):
        left = FaultSpec((ClockDrift("m", ppm=1.0),), name="l")
        right = FaultSpec((ClockDrift("a", ppm=2.0),))
        combined = left + right
        assert combined.faults == left.faults + right.faults
        assert combined.name == "l"

    def test_normalize(self):
        assert normalize_faults(None) is None
        spec = FaultSpec((ClockDrift("m", ppm=1.0),))
        assert normalize_faults(spec) is spec
        assert normalize_faults(ClockDrift("m", ppm=1.0)) == spec
        assert normalize_faults([ClockDrift("m", ppm=1.0)]) == spec
