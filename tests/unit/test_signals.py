"""Unit tests for nets, edges, and the tracer."""

from repro.sim.scheduler import NS, Simulator
from repro.sim.signals import EdgeType, Net, connect
from repro.sim.tracer import Tracer


class TestNet:
    def test_initial_value_defaults_high(self):
        sim = Simulator()
        assert Net(sim, "n").value == 1

    def test_immediate_set(self):
        sim = Simulator()
        net = Net(sim, "n")
        net.set(0)
        assert net.value == 0

    def test_delayed_set(self):
        sim = Simulator()
        net = Net(sim, "n")
        net.set(0, delay=5 * NS)
        assert net.value == 1
        sim.run()
        assert net.value == 0

    def test_edge_callback_fires_with_polarity(self):
        sim = Simulator()
        net = Net(sim, "n")
        edges = []
        net.on_edge(lambda n, e: edges.append((n.value, e)))
        net.set(0)
        net.set(1)
        assert edges == [(0, EdgeType.FALLING), (1, EdgeType.RISING)]

    def test_no_callback_on_same_value(self):
        sim = Simulator()
        net = Net(sim, "n")
        edges = []
        net.on_edge(lambda n, e: edges.append(e))
        net.set(1)
        net.set(1)
        assert edges == []

    def test_pending_transition_superseded(self):
        """A later drive cancels an in-flight one (glitch resolution)."""
        sim = Simulator()
        net = Net(sim, "n")
        edges = []
        net.on_edge(lambda n, e: edges.append((sim.now, n.value)))
        net.set(0, delay=10 * NS)
        net.set(1, delay=2 * NS)   # driver changed its mind
        sim.run()
        assert net.value == 1
        assert edges == []          # value never actually changed

    def test_truthy_values_normalised(self):
        sim = Simulator()
        net = Net(sim, "n", initial=0)
        net.set(5)
        assert net.value == 1

    def test_connect_relays_with_delay(self):
        sim = Simulator()
        a, b = Net(sim, "a"), Net(sim, "b")
        connect(a, b, delay=3 * NS)
        a.set(0)
        assert b.value == 1
        sim.run()
        assert b.value == 0


class TestEdgeType:
    def test_of(self):
        assert EdgeType.of(0, 1) is EdgeType.RISING
        assert EdgeType.of(1, 0) is EdgeType.FALLING


class TestTracer:
    def _traced_net(self):
        sim = Simulator()
        net = Net(sim, "sig")
        tracer = Tracer()
        tracer.watch(net)
        return sim, net, tracer

    def test_records_transitions_in_order(self):
        sim, net, tracer = self._traced_net()
        net.set(0, delay=10)
        sim.run()
        net.set(1, delay=10)
        sim.run()
        values = [t.value for t in tracer.edges_of("sig")]
        assert values == [0, 1]

    def test_count_edges_by_polarity(self):
        sim, net, tracer = self._traced_net()
        for value in (0, 1, 0):
            net.set(value, delay=10)
            sim.run()
        assert tracer.count_edges("sig") == 3
        assert tracer.count_edges("sig", EdgeType.FALLING) == 2
        assert tracer.count_edges("sig", EdgeType.RISING) == 1

    def test_value_at_reconstructs_history(self):
        sim, net, tracer = self._traced_net()
        net.set(0, delay=10)
        sim.run()
        net.set(1, delay=10)
        sim.run()
        assert tracer.value_at("sig", 5) == 1
        assert tracer.value_at("sig", 15) == 0
        assert tracer.value_at("sig", 25) == 1

    def test_value_at_unknown_net_raises(self):
        _, _, tracer = self._traced_net()
        try:
            tracer.value_at("other", 0)
        except KeyError:
            return
        raise AssertionError("expected KeyError")

    def test_ascii_waveform_renders(self):
        sim, net, tracer = self._traced_net()
        net.set(0, delay=10)
        sim.run()
        art = tracer.ascii_waveform(["sig"], step=5)
        assert "sig" in art and "#" in art and "_" in art
