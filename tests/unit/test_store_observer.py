"""ResultStore observer mode: readonly opens, torn-tail tolerance,
incremental refresh, and the O(1) membership index (the surfaces the
campaign server's dedupe path and ``campaign status`` lean on)."""

import json

import pytest

from repro.campaign import RESULTS_FILENAME, ResultStore, canonical_json
from repro.core.errors import ConfigurationError


def record(key: str, **extra):
    return {"key": key, "schema_version": 1, "report": {"n_ok": 1}, **extra}


class TestIndexedLookup:
    def test_thousand_record_membership_without_rereading(self, tmp_path):
        """The index answers 1k membership probes as dict lookups:
        after load, no probe may touch the JSONL again (asserted by
        making the file unreadable mid-probe)."""
        path = tmp_path / "store"
        store = ResultStore(path)
        for i in range(1000):
            store.put(record(f"k{i:04d}"))

        reopened = ResultStore(path)
        assert len(reopened) == 1000
        # If any of the probes below re-read the file, they would see
        # garbage and fail; membership must come from the index alone.
        (path / RESULTS_FILENAME).write_text("THIS IS NOT JSONL\n")
        assert all(f"k{i:04d}" in reopened for i in range(1000))
        assert all(
            reopened.get(f"k{i:04d}")["report"] == {"n_ok": 1}
            for i in range(1000)
        )
        assert "missing" not in reopened
        assert reopened.get("missing") is None

    def test_membership_is_o1_dict_backed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(record("k1"))
        # The index *is* a dict: the contract satellite #1 pins.
        assert isinstance(store._records, dict)
        assert "k1" in store._records


class TestReadonlyObserver:
    def test_readonly_never_truncates_a_torn_tail(self, tmp_path):
        """A status observer of a store another process is actively
        appending to must tolerate — never roll back — a torn last
        line (the regression satellite #2 pins: a plain open used to
        truncate the live file)."""
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put(record("k1"))
        store.put(record("k2"))
        log = path / RESULTS_FILENAME
        intact = log.read_bytes()
        torn = intact + b'{"key": "k3", "repo'   # writer mid-append
        log.write_bytes(torn)

        observer = ResultStore(path, readonly=True)
        # The torn line is invisible to the observer...
        assert len(observer) == 2
        assert "k3" not in observer
        # ...and the file is untouched: the writer can finish its line.
        assert log.read_bytes() == torn

    def test_writable_open_still_rolls_back(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put(record("k1"))
        log = path / RESULTS_FILENAME
        intact = log.read_bytes()
        log.write_bytes(intact + b"{torn")

        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert log.read_bytes() == intact

    def test_readonly_refuses_put_and_compact(self, tmp_path):
        path = tmp_path / "store"
        ResultStore(path).put(record("k1"))
        observer = ResultStore(path, readonly=True)
        assert observer.readonly
        with pytest.raises(ConfigurationError, match="readonly"):
            observer.put(record("k2"))
        with pytest.raises(ConfigurationError, match="readonly"):
            observer.compact()

    def test_readonly_on_missing_store_is_empty(self, tmp_path):
        observer = ResultStore(tmp_path / "never-created", readonly=True)
        assert len(observer) == 0
        # readonly never mkdirs either.
        assert not (tmp_path / "never-created").exists()


class TestRefresh:
    def test_refresh_picks_up_external_appends(self, tmp_path):
        path = tmp_path / "store"
        writer = ResultStore(path)
        writer.put(record("k1"))
        observer = ResultStore(path, readonly=True)
        assert len(observer) == 1

        writer.put(record("k2"))
        writer.put(record("k3"))
        assert observer.refresh() == 2
        assert observer.keys() == ["k1", "k2", "k3"]
        assert observer.refresh() == 0   # nothing new

    def test_refresh_leaves_torn_tail_for_next_time(self, tmp_path):
        path = tmp_path / "store"
        writer = ResultStore(path)
        writer.put(record("k1"))
        observer = ResultStore(path, readonly=True)

        log = path / RESULTS_FILENAME
        with open(log, "ab") as handle:
            handle.write(canonical_json(record("k2")).encode() + b"\n")
            handle.write(b'{"key": "k3"')   # torn
        assert observer.refresh() == 1
        assert "k2" in observer and "k3" not in observer

        with open(log, "ab") as handle:
            handle.write(b', "schema_version": 1}\n')   # completed
        assert observer.refresh() == 1
        assert "k3" in observer

    def test_refresh_reloads_after_external_compaction(self, tmp_path):
        path = tmp_path / "store"
        writer = ResultStore(path, auto_compact=False)
        writer.put(record("k1"))
        writer.put(record("k1", params={"x": 1}))   # supersedes
        writer.put(record("k2"))
        observer = ResultStore(path, readonly=True)
        assert observer.stale_lines == 1

        writer.compact()
        observer.refresh()
        assert observer.keys() == ["k1", "k2"]
        assert observer.stale_lines == 0
        assert observer.get("k1")["params"] == {"x": 1}


class TestCampaignStatusObserver:
    def test_status_tolerates_actively_appended_store(self, tmp_path):
        """``campaign status`` on a store with a torn tail reports the
        complete records and leaves the file alone."""
        from repro.campaign import Campaign, load_campaign

        document = json.load(
            open("examples/scenarios/recovery_campaign.json")
        )
        campaign = load_campaign(document)
        path = tmp_path / "store"
        results = campaign.run(executor="serial", store=str(path))
        assert len(results) == 4

        log = path / RESULTS_FILENAME
        full = log.read_bytes()
        torn = full[: full.rindex(b"\n", 0, len(full) - 1) + 1 + 20]
        assert not torn.endswith(b"\n")
        log.write_bytes(torn)

        status = campaign.status(str(path))
        assert status.cached == 3          # the torn record is invisible
        assert status.pending == 1
        assert log.read_bytes() == torn    # and stays on disk, untouched
