"""Unit tests for the I2C baselines against the Section 2.1 analysis."""

import pytest

from repro.baselines.i2c import I2CElectrical, OracleI2C, StandardI2C
from repro.baselines.lee_i2c import LeeI2C
from repro.power.energy_model import MeasuredEnergyModel, SimulatedEnergyModel


class TestSection21Analysis:
    """The paper's worked example: 1.2 V, 50 pF, 400 kHz fast mode,
    rise relaxed to the full half cycle, 80 % VDD as logical 1."""

    def setup_method(self):
        self.e = I2CElectrical()

    def test_pullup_no_greater_than_15_5_kohm(self):
        assert self.e.max_pullup_ohms == pytest.approx(15_500, rel=0.01)

    def test_cap_dump_23pj(self):
        assert self.e.cap_dump_pj == pytest.approx(23, abs=0.5)

    def test_resistor_low_116pj(self):
        assert self.e.resistor_low_pj == pytest.approx(116, abs=1.0)

    def test_resistor_rise_35pj(self):
        assert self.e.resistor_rise_pj == pytest.approx(35, abs=0.5)

    def test_clock_power_69_6uw(self):
        assert self.e.clock_power_uw == pytest.approx(69.6, abs=0.5)

    def test_pullup_loss_151pj_per_bit(self):
        """The energy MBus eliminates."""
        assert self.e.pullup_loss_per_bit_pj == pytest.approx(151, abs=1.0)

    def test_mbus_gain_is_three_orders_of_magnitude_possible(self):
        """Section 2.1: open-collector designs can be up to three
        orders of magnitude worse per bit than MBus's 3.5 pJ sim."""
        ratio = self.e.clock_cycle_energy_pj / 3.5
        assert ratio > 40   # per-chip; system-level gaps reach 1000x


class TestStandardI2C:
    def test_overhead_is_10_plus_n(self):
        bus = StandardI2C()
        assert bus.overhead_bits(0) == 10
        assert bus.overhead_bits(12) == 22

    def test_power_linear_in_frequency(self):
        bus = StandardI2C()
        assert bus.power_uw(800_000) == pytest.approx(2 * bus.power_uw(400_000))

    def test_data_line_adds_energy(self):
        bus = StandardI2C()
        assert bus.cycle_energy_pj(0.5) > bus.cycle_energy_pj(0.0)

    def test_goodput_energy_infinite_at_zero(self):
        assert StandardI2C().energy_per_goodput_bit_pj(0) == float("inf")


class TestOracleI2C:
    def test_capacitance_scales_with_population(self):
        assert OracleI2C(14).line_capacitance_pf == pytest.approx(31.5)
        assert OracleI2C(2).line_capacitance_pf == pytest.approx(4.5)

    def test_per_cycle_energy_frequency_independent(self):
        oracle = OracleI2C(14)
        e1 = oracle.electrical_at(100_000)
        e2 = oracle.electrical_at(5_000_000)
        assert e1.clock_cycle_energy_pj == pytest.approx(
            e2.clock_cycle_energy_pj, rel=1e-9
        )

    def test_oracle_beats_standard_i2c(self):
        """Figure 11a ordering: Oracle I2C below standard I2C."""
        standard = StandardI2C()
        for n in (2, 14):
            assert OracleI2C(n).power_uw(400_000) < standard.power_uw(400_000)

    def test_simulated_mbus_beats_oracle_everywhere(self):
        """Figure 11b: 'Our simulated MBus outperforms the simulated
        Oracle I2C for all payload lengths.'"""
        mbus = SimulatedEnergyModel()
        for n_nodes in (2, 14):
            oracle = OracleI2C(n_nodes)
            for n_bytes in range(1, 13):
                assert (
                    mbus.energy_per_goodput_bit_pj(n_bytes, n_nodes)
                    < oracle.energy_per_goodput_bit_pj(n_bytes)
                )

    def test_measured_mbus_suffers_for_short_messages(self):
        """Figure 11b: measured MBus loses for 1-2 byte messages and
        systems should coalesce messages.  Apples-to-apples means the
        I2C chips carry the same measured-system overhead."""
        mbus = MeasuredEnergyModel()
        oracle = OracleI2C.measured_grade(2)
        short = mbus.energy_per_goodput_bit_pj(1, 2)
        long = mbus.energy_per_goodput_bit_pj(12, 2)
        assert short > 2.5 * long   # steep penalty at short lengths
        # Measured MBus beats measured-grade oracle once messages grow.
        assert (
            mbus.energy_per_goodput_bit_pj(12, 2)
            < oracle.energy_per_goodput_bit_pj(12)
        )
        # ... but not for the shortest messages.
        assert (
            mbus.energy_per_goodput_bit_pj(1, 2)
            > mbus.energy_per_goodput_bit_pj(12, 2)
        )

    def test_population_validation(self):
        with pytest.raises(ValueError):
            OracleI2C(1)


class TestLeeI2C:
    def test_88pj_per_bit_four_times_mbus(self):
        lee = LeeI2C()
        assert lee.pj_per_bit == pytest.approx(4 * 22.0, rel=0.05)

    def test_requires_5x_internal_clock(self):
        assert LeeI2C().internal_clock_hz(400_000) == 2_000_000

    def test_not_synthesizable(self):
        assert not LeeI2C().synthesizable

    def test_wakeup_sequence_needed_without_power_knowledge(self):
        lee = LeeI2C()
        assert lee.wakeup_overhead_bits(know_power_state=False) > 0
        assert lee.wakeup_overhead_bits(know_power_state=True) == 0

    def test_energy_between_mbus_and_standard_i2c(self):
        """Lee reduces bus energy to 88 pJ/bit — better than standard
        I2C, 4x worse than MBus (Section 2.2)."""
        lee = LeeI2C()
        standard = I2CElectrical()
        assert lee.pj_per_bit < standard.clock_cycle_energy_pj
        assert lee.pj_per_bit > 3.5
