"""Unit tests for enumeration-agent and resumable-stream internals."""

import pytest

from repro.core import Address, MBusSystem
from repro.core.enumeration import (
    CMD_ENUMERATE,
    CMD_ID_REPLY,
    CMD_INVALIDATE,
    CHANNEL_ENUMERATION,
    EnumerationAgent,
    Enumerator,
)
from repro.core.errors import ProtocolError
from repro.core.resumable import (
    HEADER_BYTES,
    _header,
    _Stream,
)


def _system_with_agents():
    system = MBusSystem()
    system.add_mediator_node("ctl", short_prefix=0x1)
    system.add_node("u1", full_prefix=0x11111)
    system.add_node("u2", full_prefix=0x22222)
    system.build()
    agents = {n.name: EnumerationAgent(n) for n in system.nodes}
    return system, agents


class TestEnumerationAgent:
    def test_agent_subscribes_to_channel(self):
        system, agents = _system_with_agents()
        node = system.node("u1")
        assert CHANNEL_ENUMERATION in node.engine.config.broadcast_channels

    def test_assigned_node_ignores_enumerate(self):
        system, agents = _system_with_agents()
        # ctl already has a static prefix: it must never reply.
        system.broadcast("ctl", CHANNEL_ENUMERATION, bytes([CMD_ENUMERATE, 0x5]))
        system.run_until_idle()
        replies = [
            t for t in system.transactions
            if t.tx_node == "ctl" and t.message.payload[:1] == bytes([CMD_ID_REPLY])
        ]
        assert replies == []

    def test_loser_withdraws_reply(self):
        system, agents = _system_with_agents()
        system.broadcast("ctl", CHANNEL_ENUMERATION, bytes([CMD_ENUMERATE, 0x5]))
        system.run_until_idle()
        # Exactly one ID reply made it onto the bus.
        replies = [
            t for t in system.transactions
            if t.message is not None
            and t.message.payload[:1] == bytes([CMD_ID_REPLY])
            and t.ok
        ]
        assert len(replies) == 1
        assert agents["u1"].assigned_prefix == 0x5
        assert agents["u2"].assigned_prefix is None
        # The loser's queue is empty: no stale reply lingers.
        assert not system.node("u2").engine.has_pending

    def test_invalidate_releases_prefix(self):
        system, agents = _system_with_agents()
        system.broadcast("ctl", CHANNEL_ENUMERATION, bytes([CMD_ENUMERATE, 0x5]))
        system.run_until_idle()
        assert agents["u1"].assigned_prefix == 0x5
        system.broadcast(
            "ctl", CHANNEL_ENUMERATION, bytes([CMD_INVALIDATE, 0x5])
        )
        system.run_until_idle()
        assert agents["u1"].assigned_prefix is None
        assert system.node("u1").config.short_prefix is None

    def test_enumerator_runs_out_of_prefixes(self):
        system = MBusSystem()
        system.add_mediator_node("ctl", short_prefix=0x1)
        # Claim every assignable prefix statically except none left
        # for the unassigned node.
        for i, prefix in enumerate(p for p in range(2, 15)):
            system.add_node(f"s{prefix:x}", short_prefix=prefix)
        system.build()
        enumerator = Enumerator(system, "ctl")
        assert enumerator.available_prefixes() == []


class TestResumableInternals:
    def test_header_layout(self):
        header = _header(0xAB, 0x010203)
        assert header == bytes([0xAB, 0x01, 0x02, 0x03])
        assert len(header) == HEADER_BYTES

    def test_header_validation(self):
        with pytest.raises(ProtocolError):
            _header(300, 0)
        with pytest.raises(ProtocolError):
            _header(0, 1 << 24)

    def test_stream_overlap_resolution(self):
        stream = _Stream()
        stream.add(0, b"aaaa")
        stream.add(2, b"BBBB")       # overlapping resend
        assert stream.assembled() == b"aaBBBB"

    def test_stream_gap_detection(self):
        stream = _Stream()
        stream.add(0, b"aa")
        stream.add(4, b"bb")
        with pytest.raises(ProtocolError):
            stream.assembled()

    def test_contiguous_prefix(self):
        stream = _Stream()
        stream.add(0, b"aa")
        stream.add(2, b"bb")
        stream.add(8, b"cc")
        assert stream.contiguous_prefix() == 4

    def test_empty_stream(self):
        assert _Stream().assembled() == b""
        assert _Stream().contiguous_prefix() == 0
