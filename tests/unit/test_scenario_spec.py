"""Unit tests for the declarative topology specs (repro.scenario.spec)."""

import json

import pytest

from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.scenario import NodeSpec, SystemSpec


def three_chip_spec(**overrides) -> SystemSpec:
    spec = SystemSpec(
        name="three-chip",
        nodes=(
            NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
            NodeSpec("sensor", short_prefix=0x2, power_gated=True),
            NodeSpec("radio", short_prefix=0x3, power_gated=True),
        ),
    )
    return spec.replace(**overrides) if overrides else spec


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = three_chip_spec()
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_exact(self):
        spec = three_chip_spec(
            clock_hz=1e6,
            node_delay_ps=7_000,
            max_message_bytes=2048,
            arbitration_anchor="sensor",
        )
        payload = json.dumps(spec.to_dict())
        assert SystemSpec.from_dict(json.loads(payload)) == spec

    def test_node_options_survive_round_trip(self):
        node = NodeSpec(
            "odd",
            full_prefix=0x12345,
            broadcast_channels=frozenset({0, 3}),
            power_gated=True,
            auto_sleep=False,
            rx_buffer_bytes=4096,
            memory_words=64,
            node_delay_ps=9_000,
        )
        assert NodeSpec.from_dict(node.to_dict()) == node

    def test_broadcast_channels_list_is_coerced(self):
        node = NodeSpec("n", short_prefix=0x2, broadcast_channels=[0, 1])
        assert node.broadcast_channels == frozenset({0, 1})
        assert NodeSpec.from_dict(node.to_dict()) == node

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            SystemSpec.from_dict({"nodes": [], "frequency": 1e6})
        with pytest.raises(ConfigurationError, match="unknown"):
            NodeSpec.from_dict({"name": "n", "prefix": 2})


class TestValidation:
    def test_needs_exactly_one_mediator(self):
        with pytest.raises(ConfigurationError, match="mediator"):
            SystemSpec(nodes=(
                NodeSpec("a", short_prefix=0x1),
                NodeSpec("b", short_prefix=0x2),
            )).validate()
        with pytest.raises(ConfigurationError, match="mediator"):
            SystemSpec(nodes=(
                NodeSpec("a", short_prefix=0x1, is_mediator=True),
                NodeSpec("b", short_prefix=0x2, is_mediator=True),
            )).validate()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SystemSpec(nodes=(
                NodeSpec("a", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2),
            )).validate()

    def test_anchor_must_name_a_node(self):
        with pytest.raises(ConfigurationError, match="anchor"):
            three_chip_spec(arbitration_anchor="nobody").validate()

    def test_node_lookup(self):
        spec = three_chip_spec()
        assert spec.node("sensor").short_prefix == 0x2
        assert spec.mediator_name == "cpu"
        with pytest.raises(ConfigurationError):
            spec.node("nope")


class TestBuild:
    @pytest.mark.parametrize("mode", ["edge", "fast"])
    def test_build_produces_working_system(self, mode):
        system = three_chip_spec().build(mode=mode)
        result = system.send("cpu", Address.short(0x2, 5), b"\x01\x02")
        assert result.ok
        assert system.node("sensor").inbox[-1].payload == b"\x01\x02"

    def test_build_applies_watchdog_and_anchor(self):
        import dataclasses

        spec = three_chip_spec(
            max_message_bytes=2048, arbitration_anchor="sensor"
        )
        # The anchor holds always-on state, so un-gate the node first.
        ungated = dataclasses.replace(
            spec.nodes[1], power_gated=False, auto_sleep=False
        )
        spec = spec.replace(nodes=(spec.nodes[0], ungated, spec.nodes[2]))
        system = spec.build(mode="edge")
        assert system.arbitration_anchor == "sensor"

    def test_timing_overrides_flow_into_mbustiming(self):
        spec = three_chip_spec(clock_hz=1e6, node_delay_ps=5_000)
        timing = spec.timing()
        assert timing.clock_hz == 1e6
        assert timing.node_delay_ps == 5_000
        # Unset fields keep the MBusTiming defaults.
        from repro.core.constants import MBusTiming

        assert timing.mediator_wakeup_ps == MBusTiming().mediator_wakeup_ps

    def test_replace_does_not_mutate(self):
        spec = three_chip_spec()
        faster = spec.replace(clock_hz=7.1e6)
        assert spec.clock_hz == 400_000
        assert faster.clock_hz == 7.1e6
        assert faster.nodes == spec.nodes
