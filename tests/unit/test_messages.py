"""Unit tests for messages, control codes, and byte alignment."""

import pytest

from repro.core.addresses import Address
from repro.core.errors import ProtocolError
from repro.core.messages import (
    ControlCode,
    Message,
    bits_to_bytes,
    bytes_to_bits,
    pad_to_byte,
)


class TestControlCode:
    def test_paper_end_of_message_semantics(self):
        """Figure 7: transmitter drives bit0 high for a complete
        message; the receiver ACKs by driving bit1 low."""
        assert ControlCode.EOM_ACK.value == (1, 0)
        assert ControlCode.EOM_ACK.is_success

    def test_all_four_codes_distinct(self):
        values = {code.value for code in ControlCode}
        assert len(values) == 4

    def test_from_bits_roundtrip(self):
        for code in ControlCode:
            assert ControlCode.from_bits(*code.value) is code

    def test_from_bits_invalid(self):
        with pytest.raises(ProtocolError):
            ControlCode.from_bits(2, 0)

    def test_only_eom_ack_is_success(self):
        successes = [c for c in ControlCode if c.is_success]
        assert successes == [ControlCode.EOM_ACK]


class TestBitPacking:
    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80") == (1, 0, 0, 0, 0, 0, 0, 0)
        assert bytes_to_bits(b"\x01") == (0, 0, 0, 0, 0, 0, 0, 1)

    def test_roundtrip(self):
        payload = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(payload)) == payload

    def test_bits_to_bytes_discards_partial_byte(self):
        """Receivers discard non-byte-aligned bits (Figure 7 note 4)."""
        bits = bytes_to_bits(b"\xAB") + (1, 0, 1)
        assert bits_to_bytes(bits) == b"\xAB"

    def test_pad_to_byte(self):
        assert pad_to_byte((1,) * 8) == (1,) * 8
        padded = pad_to_byte((1, 1, 1))
        assert len(padded) == 8
        assert padded[3:] == (0,) * 5

    def test_pad_never_exceeds_seven_bits(self):
        """Section 4.9: up to 7 bits of padding."""
        for n in range(1, 25):
            padding = len(pad_to_byte((1,) * n)) - n
            assert 0 <= padding <= 7


class TestMessage:
    def test_payload_must_be_bytes(self):
        with pytest.raises(ProtocolError):
            Message(dest=Address.short(2), payload="text")

    def test_data_bits_match_payload(self):
        message = Message(dest=Address.short(2), payload=b"\xF0\x0F")
        assert message.n_data_bits == 16
        assert message.data_bits() == bytes_to_bits(b"\xF0\x0F")

    def test_address_bits_forwarded(self):
        message = Message(dest=Address.full(0x12345, 1))
        assert len(message.address_bits()) == 32

    def test_empty_payload_allowed(self):
        message = Message(dest=Address.short(2))
        assert message.n_bytes == 0
        assert message.data_bits() == ()
