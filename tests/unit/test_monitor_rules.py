"""Per-rule fault seeding for the protocol monitor.

Each test drives the system into a healthy state, seeds one specific
fault, and asserts the corresponding rule — and only plausible rules —
fires.  This proves the monitor is a real oracle rather than a
vacuous green light.
"""

import pytest

from repro.core import Address, MBusSystem
from repro.core.errors import ProtocolError
from repro.core.monitor import ProtocolMonitor
from repro.core.power_domain import PowerEvent


def _healthy_system():
    system = MBusSystem()
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("a", short_prefix=0x2, power_gated=True)
    system.add_node("b", short_prefix=0x3)
    system.send("m", Address.short(0x2, 5), bytes(4))
    return system


class TestMonitorBaseline:
    def test_healthy_system_is_clean(self):
        monitor = ProtocolMonitor(_healthy_system())
        assert monitor.audit() == []
        monitor.assert_clean()

    def test_violation_string_form(self):
        system = _healthy_system()
        system.node("b").data_ctl.drive(0)
        violations = ProtocolMonitor(system).audit()
        assert violations
        assert "R1" in str(violations[0])


class TestRuleSeeding:
    def test_r1_line_stuck_low(self):
        system = _healthy_system()
        system.node("b").data_ctl.drive(0)
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R1.idle-high" in rules

    def test_r1_controller_not_forwarding(self):
        system = _healthy_system()
        system.node("b").clk_ctl.hold()
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R1.idle-high" in rules

    def test_r2_engine_stuck(self):
        from repro.core.bus_controller import Phase

        system = _healthy_system()
        system.node("a").engine.phase = Phase.TRANSFER
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R2.engines-idle" in rules

    def test_r3_interjection_count_mismatch(self):
        system = _healthy_system()
        system.mediator.mediator.stats.interjection_sequences += 1
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R3.control-coverage" in rules

    def test_r4_cycle_arithmetic(self):
        system = _healthy_system()
        system.transactions[-1].clock_cycles += 1
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R4.cycle-arithmetic" in rules

    def test_r5_excess_discarded_bits(self):
        system = _healthy_system()
        system.node("b").engine.stats.bits_discarded = 100
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R5.byte-alignment" in rules

    def test_r6_wakeup_out_of_order(self):
        system = _healthy_system()
        domain = system.node("a").bus_domain
        domain.log.insert(
            0,
            PowerEvent(0, domain.name, "release_reset", "seeded"),
        )
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R6.wakeup-order" in rules

    def test_r7_untargeted_wakeup(self):
        system = _healthy_system()
        node = system.node("a")
        node.layer_domain.power_off("test") if node.layer_domain.is_on else None
        node.layer_domain.power_on("spurious")
        node.layer_domain.power_off("spurious-off")
        rules = {v.rule for v in ProtocolMonitor(system).audit()}
        assert "R7.targeted-wakeup" in rules

    def test_assert_clean_raises_with_details(self):
        system = _healthy_system()
        system.node("b").data_ctl.drive(0)
        with pytest.raises(ProtocolError) as excinfo:
            ProtocolMonitor(system).assert_clean()
        assert "R1" in str(excinfo.value)
