"""Unit tests for ring timing, overhead curves, and throughput
(Figures 9, 10, 14, 15)."""

import pytest

from repro.timing.overhead import (
    OVERHEAD_CURVES,
    crossover_payload_bytes,
    efficiency,
    overhead_bits,
    overhead_series,
)
from repro.timing.ring_timing import (
    max_clock_hz,
    max_clock_mhz_series,
    max_nodes_at_clock,
    ring_delay_ns,
)
from repro.timing.throughput import (
    parallel_goodput_bps,
    parallel_goodput_series,
    speedup_vs_serial,
    transaction_cycles,
    transaction_rate_hz,
    transaction_rate_series,
)


class TestFigure9:
    def test_14_nodes_runs_at_7_1_mhz(self):
        """The paper's headline: a 14-node MBus can run at 7.1 MHz."""
        assert max_clock_hz(14) / 1e6 == pytest.approx(7.14, abs=0.05)

    def test_two_nodes_at_50_mhz(self):
        assert max_clock_hz(2) == pytest.approx(50e6)

    def test_frequency_inversely_proportional_to_nodes(self):
        assert max_clock_hz(4) == pytest.approx(max_clock_hz(8) * 2)

    def test_series_covers_2_to_14(self):
        series = max_clock_mhz_series()
        assert [n for n, _ in series] == list(range(2, 15))
        mhz = [f for _, f in series]
        assert mhz == sorted(mhz, reverse=True)

    def test_max_nodes_at_clock(self):
        assert max_nodes_at_clock(7.1e6) == 14
        assert max_nodes_at_clock(50e6) == 2

    def test_ring_delay(self):
        assert ring_delay_ns(14) == 140

    def test_validation(self):
        with pytest.raises(ValueError):
            max_clock_hz(1)
        with pytest.raises(ValueError):
            max_clock_hz(2, node_delay_ns=0)


class TestFigure10:
    def test_all_legend_entries_present(self):
        assert set(OVERHEAD_CURVES) == {
            "UART (1-bit stop)",
            "UART (2-bit stop)",
            "I2C",
            "SPI",
            "MBus (short)",
            "MBus (full)",
        }

    def test_mbus_overhead_length_independent(self):
        assert overhead_bits("MBus (short)", 0) == 19
        assert overhead_bits("MBus (short)", 40_000) == 19
        assert overhead_bits("MBus (full)", 5) == 43

    def test_crossover_vs_2_stop_uart_after_7_bytes(self):
        """'more efficient than 2-mark UART after 7 bytes'."""
        assert crossover_payload_bytes("MBus (short)", "UART (2-bit stop)") == 7

    def test_crossover_vs_i2c_after_9_bytes(self):
        """'more efficient than I2C and 1-mark UART after 9 bytes'."""
        assert crossover_payload_bytes("MBus (short)", "I2C") == 10
        assert crossover_payload_bytes("MBus (short)", "UART (1-bit stop)") == 10

    def test_spi_never_crossed(self):
        assert crossover_payload_bytes("MBus (short)", "SPI") is None

    def test_series_shape(self):
        series = overhead_series(lengths=range(0, 11))
        assert len(series["I2C"]) == 11
        assert series["I2C"][0] == (0, 10)

    def test_efficiency_increases_with_length_for_mbus(self):
        values = [efficiency("MBus (short)", n) for n in (1, 8, 64, 512)]
        assert values == sorted(values)

    def test_unknown_bus_raises(self):
        with pytest.raises(KeyError):
            overhead_bits("CAN", 1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            overhead_bits("I2C", -1)


class TestFigure14:
    def test_rate_formula(self):
        assert transaction_rate_hz(400_000, 8) == pytest.approx(400_000 / 83)

    def test_zero_byte_rate(self):
        assert transaction_rate_hz(100_000, 0) == pytest.approx(100_000 / 19)

    def test_rate_scales_with_clock(self):
        assert transaction_rate_hz(7_100_000, 16) == pytest.approx(
            71 * transaction_rate_hz(100_000, 16)
        )

    def test_rate_decreases_with_length(self):
        rates = [transaction_rate_hz(400_000, n) for n in (0, 8, 16, 40)]
        assert rates == sorted(rates, reverse=True)

    def test_series_has_four_clocks(self):
        series = transaction_rate_series()
        assert set(series) == {100_000, 400_000, 1_000_000, 7_100_000}


class TestFigure15:
    def test_serial_cycles(self):
        assert transaction_cycles(16) == 19 + 128

    def test_striping_shrinks_data_phase_only(self):
        assert transaction_cycles(16, data_wires=4) == 19 + 32
        assert transaction_cycles(16, data_wires=3) == 19 + 43  # ceil

    def test_each_wire_roughly_doubles_long_message_goodput(self):
        """'each additional DATA line doubles the MBus payload
        throughput' — asymptotically."""
        assert speedup_vs_serial(128, 2) == pytest.approx(2.0, rel=0.02)
        assert speedup_vs_serial(128, 4) == pytest.approx(4.0, rel=0.07)

    def test_short_messages_overhead_dominated(self):
        """Figure 15: protocol overhead dominates short messages, so
        extra wires barely help."""
        assert speedup_vs_serial(2, 4) < 1.7

    def test_zero_bytes_zero_goodput(self):
        assert parallel_goodput_bps(0, 4) == 0.0

    def test_400khz_128byte_4wire_magnitude(self):
        """Top-right of Figure 15: ~1.5 Mbit/s at 400 kHz, 4 wires."""
        goodput = parallel_goodput_bps(128, 4, clock_hz=400_000)
        assert goodput == pytest.approx(1.49e6, rel=0.02)

    def test_series_kbps(self):
        series = parallel_goodput_series(lengths=(128,), wire_counts=(1,))
        (length, kbps), = series[1]
        assert length == 128
        assert kbps == pytest.approx(393, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            transaction_cycles(-1)
        with pytest.raises(ValueError):
            transaction_cycles(1, data_wires=0)
        with pytest.raises(ValueError):
            transaction_rate_hz(0, 1)
