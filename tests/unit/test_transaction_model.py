"""Unit tests for the analytic transaction model (Sections 6.1, 6.2)."""

import pytest

from repro.core.constants import ProtocolOverheads
from repro.core.transaction import TransactionModel, fragmentation_overhead_bits


class TestCycleCounts:
    def test_paper_overheads(self):
        """Arbitration 3 + addressing 8/32 + interjection 5 + control 3."""
        model = TransactionModel()
        assert model.overhead_cycles(full_address=False) == 19
        assert model.overhead_cycles(full_address=True) == 43

    def test_overhead_is_length_independent(self):
        model = TransactionModel()
        assert all(
            model.total_cycles(n) - 8 * n == 19 for n in (0, 1, 100, 100_000)
        )

    def test_data_cycles(self):
        model = TransactionModel()
        assert model.data_cycles(0) == 0
        assert model.data_cycles(12) == 96
        with pytest.raises(ValueError):
            model.data_cycles(-1)

    def test_protocol_overheads_dataclass(self):
        overheads = ProtocolOverheads()
        assert overheads.total() == 19
        assert overheads.total(full_address=True) == 43


class TestEnergy:
    def test_paper_formula(self):
        """E = 3.5 pJ x (19 + 8n) x chips (Section 6.2)."""
        model = TransactionModel()
        assert model.message_energy_pj(8, 3) == pytest.approx(
            3.5 * (19 + 64) * 3
        )

    def test_full_address_energy(self):
        model = TransactionModel()
        assert model.message_energy_pj(0, 2, full_address=True) == pytest.approx(
            3.5 * 43 * 2
        )

    def test_requires_two_chips(self):
        with pytest.raises(ValueError):
            TransactionModel().message_energy_pj(1, 1)


class TestTimingAndRates:
    def test_duration(self):
        model = TransactionModel(clock_hz=400_000)
        assert model.message_duration_s(8) == pytest.approx(83 / 400_000)

    def test_transaction_rate(self):
        model = TransactionModel(clock_hz=400_000)
        assert model.transactions_per_second(0) == pytest.approx(400_000 / 19)

    def test_bus_utilization_matches_paper(self):
        """Section 6.3.1: request (4 B) + response (8 B) every 15 s at
        400 kHz occupies 0.0022 % of the bus."""
        model = TransactionModel(clock_hz=400_000)
        util = model.bus_utilization([4, 8], period_s=15.0)
        assert util == pytest.approx(0.000022, rel=0.02)

    def test_utilization_rejects_bad_period(self):
        with pytest.raises(ValueError):
            TransactionModel().bus_utilization([1], period_s=0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            TransactionModel(clock_hz=0)


class TestCostBundle:
    def test_cost_fields_consistent(self):
        cost = TransactionModel().cost(10, n_chips=4)
        assert cost.total_cycles == 19 + 80
        assert cost.goodput_bits == 80
        assert cost.energy_per_goodput_bit_pj == pytest.approx(
            cost.energy_pj / 80
        )

    def test_zero_byte_goodput_energy_infinite(self):
        cost = TransactionModel().cost(0)
        assert cost.energy_per_goodput_bit_pj == float("inf")


class TestFragmentation:
    def test_imager_row_fragmentation(self):
        """Section 6.3.2: 160 rows cost 160 x 19 = 3,040 bits."""
        assert fragmentation_overhead_bits(28_800, 180) == 3_040

    def test_single_message(self):
        assert fragmentation_overhead_bits(28_800, 28_800) == 19

    def test_invalid_fragment(self):
        with pytest.raises(ValueError):
            fragmentation_overhead_bits(100, 0)
