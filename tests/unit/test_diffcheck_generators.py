"""Diffcheck scenario generation and minimization (no simulators).

The generator's contract is determinism: a scenario is a pure
function of its seed, on every host, forever — that is what turns a
fuzz finding into a repro.  The minimizer's contract is greedy
reduction under an injectable predicate, which these tests exercise
against synthetic properties so no simulation runs.
"""

import json

from repro.diffcheck import (
    CLOCK_CHOICES,
    WORKLOAD_SHAPES,
    generate_scenario,
    generate_scenarios,
    generate_system,
    load_repro,
    minimize_scenario,
    scenario_fingerprint,
    scenario_key,
    write_repro,
)
from repro.faults.primitives import FaultSpec
from repro.scenario.spec import SystemSpec
from repro.scenario.workload import workload_from_dict


class TestDeterminism:
    def test_same_seed_same_document(self):
        for seed in (0, 1, 7, 123456):
            assert generate_scenario(seed) == generate_scenario(seed)

    def test_documents_are_plain_json(self):
        scenario = generate_scenario(3)
        assert json.loads(json.dumps(scenario)) == scenario

    def test_scenario_key_ignores_the_seed(self):
        scenario = generate_scenario(9)
        relabeled = dict(scenario, seed=999)
        assert scenario_key(scenario) == scenario_key(relabeled)
        assert len(scenario_key(scenario)) == 16

    def test_fingerprint_ignores_the_seed(self):
        scenario = generate_scenario(9)
        assert scenario_fingerprint(scenario) == scenario_fingerprint(
            dict(scenario, seed=999)
        )

    def test_generate_scenarios_counts_and_distinct_seeds(self):
        scenarios = generate_scenarios(10, seed=4)
        assert len(scenarios) == 10
        assert len({s["seed"] for s in scenarios}) == 10


class TestGeneratedSpace:
    SEEDS = range(40)

    def test_systems_are_valid_and_bounded(self):
        for seed in self.SEEDS:
            spec = generate_system(seed)
            spec.validate()
            assert 2 <= len(spec.nodes) <= 5
            assert spec.clock_hz in CLOCK_CHOICES
            assert sum(node.is_mediator for node in spec.nodes) == 1

    def test_documents_reconstruct(self):
        for seed in self.SEEDS:
            scenario = generate_scenario(seed, faults_fraction=0.5)
            SystemSpec.from_dict(scenario["system"]).validate()
            workload = workload_from_dict(scenario["workload"])
            assert workload.kind in WORKLOAD_SHAPES or workload.kind in (
                "combined", "broadcast",
            )
            if scenario["faults"] is not None:
                assert FaultSpec.from_dict(scenario["faults"]).faults

    def test_faults_fraction_extremes(self):
        clean = [
            generate_scenario(seed, faults_fraction=0.0)
            for seed in self.SEEDS
        ]
        assert all(s["faults"] is None for s in clean)
        faulty = [
            generate_scenario(seed, faults_fraction=1.0)
            for seed in self.SEEDS
        ]
        assert any(s["faults"] is not None for s in faulty)


def synthetic_scenario(count=6, n_members=4, with_faults=True):
    spec = generate_system(17)
    scenario = {
        "seed": 17,
        "system": {
            "name": "synthetic",
            "clock_hz": 400000.0,
            "nodes": (
                [{"name": "m0", "short_prefix": 1, "is_mediator": True}]
                + [
                    {"name": f"n{i + 1}", "short_prefix": 2 + i}
                    for i in range(n_members)
                ]
            ),
        },
        "workload": {
            "kind": "burst",
            "source": "m0",
            "dest": {"kind": "short", "prefix": 2, "address": 0},
            "payload": "aabbccdd",
            "count": count,
            "gap_s": 0.0,
        },
        "faults": {
            "faults": [
                {"kind": "drop_edge", "node": "n1", "at_s": 0.001,
                 "count": 1},
            ],
        } if with_faults else None,
    }
    del spec
    return scenario


class TestMinimizer:
    def test_reduces_to_predicate_fixpoint(self):
        # "Fails" whenever the burst still has >= 2 posts: the
        # minimizer must shed the faults, the extra members and most
        # of the count, but never go below 2 posts.
        minimized = minimize_scenario(
            synthetic_scenario(count=6, n_members=4),
            lambda s: s["workload"].get("count", 0) >= 2,
        )
        assert minimized["faults"] is None
        assert len(minimized["system"]["nodes"]) == 2
        assert 2 <= minimized["workload"]["count"] < 6

    def test_input_scenario_is_never_mutated(self):
        scenario = synthetic_scenario()
        frozen = json.loads(json.dumps(scenario))
        minimize_scenario(scenario, lambda s: True)
        assert scenario == frozen

    def test_predicate_crash_is_a_rejection(self):
        def fragile(candidate):
            if len(candidate["system"]["nodes"]) < 5:
                raise ValueError("cannot even evaluate this")
            return True

        minimized = minimize_scenario(
            synthetic_scenario(n_members=4), fragile
        )
        # Node-dropping reductions all crash the predicate, so the
        # node count must survive.
        assert len(minimized["system"]["nodes"]) == 5

    def test_never_failing_input_is_returned_unchanged(self):
        scenario = synthetic_scenario()
        assert minimize_scenario(scenario, lambda s: False) == scenario

    def test_payload_and_fault_reductions(self):
        minimized = minimize_scenario(
            synthetic_scenario(),
            lambda s: True,   # everything still "fails"
        )
        assert minimized["faults"] is None
        assert len(minimized["workload"]["payload"]) <= 4
        assert minimized["workload"]["count"] == 1


class TestReproFiles:
    def test_write_load_roundtrip(self, tmp_path):
        scenario = synthetic_scenario()
        path = write_repro(
            scenario, ["delivery sets differ"], tmp_path, minimized=True
        )
        assert path.name == f"repro_{scenario_key(scenario)}.json"
        document = load_repro(path)
        assert document["scenario"] == json.loads(json.dumps(scenario))
        assert document["divergences"] == ["delivery sets differ"]
        assert document["minimized"] is True

    def test_rewriting_the_same_scenario_is_idempotent(self, tmp_path):
        scenario = synthetic_scenario()
        first = write_repro(scenario, ["a"], tmp_path)
        second = write_repro(scenario, ["a"], tmp_path)
        assert first == second
        assert len(list(tmp_path.iterdir())) == 1
