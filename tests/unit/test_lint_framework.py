"""Lint framework: suppressions, selection, reporting, CLI contract."""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    Finding,
    available_passes,
    default_root,
    format_findings,
    run_lint,
)


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def lint(tmp_path, files, select=None):
    write_tree(tmp_path, files)
    return run_lint(root=tmp_path, select=select)


def test_registry_has_the_contracted_passes():
    passes = available_passes()
    for name in (
        "determinism",
        "time-hygiene",
        "schema",
        "backend-parity",
        "api-hygiene",
        "typing",
    ):
        assert name in passes
    assert passes["schema"].scope == "project"
    assert passes["backend-parity"].scope == "project"
    assert passes["determinism"].scope == "file"


def test_unknown_select_raises():
    with pytest.raises(KeyError):
        run_lint(root=default_root(), select=["no-such-pass"])


def test_findings_sorted_and_anchored(tmp_path):
    findings = lint(
        tmp_path,
        {
            "b.py": "import random\nx = random.random()\n",
            "a.py": "import random\ny = random.random()\n",
        },
        select=["determinism"],
    )
    assert [f.path for f in findings] == ["a.py", "b.py"]
    assert all(f.pass_name == "determinism" for f in findings)
    assert findings[0].line == 2


def test_inline_suppression_with_justification(tmp_path):
    findings = lint(
        tmp_path,
        {
            "m.py": (
                "import random\n"
                "x = random.random()  "
                "# lint: disable=determinism -- fixture entropy only\n"
            ),
        },
        select=["determinism"],
    )
    assert findings == []


def test_own_line_suppression_covers_next_line(tmp_path):
    findings = lint(
        tmp_path,
        {
            "m.py": (
                "import random\n"
                "# lint: disable=determinism -- fixture entropy only\n"
                "x = random.random()\n"
            ),
        },
        select=["determinism"],
    )
    assert findings == []


def test_suppression_without_justification_is_a_finding(tmp_path):
    findings = lint(
        tmp_path,
        {
            "m.py": (
                "import random\n"
                "x = random.random()  # lint: disable=determinism\n"
            ),
        },
        select=["determinism"],
    )
    # The determinism finding is suppressed, but the bare suppression
    # itself is reported.
    assert [f.pass_name for f in findings] == ["suppression"]
    assert "justification" in findings[0].message


def test_suppression_naming_unknown_pass_is_a_finding(tmp_path):
    findings = lint(
        tmp_path,
        {
            "m.py": (
                "x = 1  # lint: disable=no-such-pass -- mistyped\n"
            ),
        },
        select=["determinism"],
    )
    assert [f.pass_name for f in findings] == ["suppression"]
    assert "unknown pass" in findings[0].message


def test_lint_package_is_excluded(tmp_path):
    findings = lint(
        tmp_path,
        {
            "lint/fixture.py": "import random\nx = random.random()\n",
        },
        select=["determinism"],
    )
    assert findings == []


def test_finding_format_and_dict():
    finding = Finding(
        pass_name="determinism",
        path="core/bus.py",
        line=7,
        col=4,
        message="msg",
        hint="do the fix",
    )
    assert finding.format() == (
        "core/bus.py:7:4: [determinism] msg  (fix: do the fix)"
    )
    assert finding.to_dict()["pass"] == "determinism"


def test_format_findings_text_and_json():
    finding = Finding("typing", "a.py", 1, 0, "m")
    text = format_findings([finding], fmt="text")
    assert text.endswith("lint: 1 finding(s)")
    assert format_findings([], fmt="text") == "lint: clean"
    doc = json.loads(format_findings([finding], fmt="json"))
    assert doc["n_findings"] == 1
    assert doc["findings"][0]["path"] == "a.py"


def test_shipped_tree_is_lint_clean():
    """Satellite 1: the repo's own sources carry zero findings."""
    assert run_lint() == []


def test_cli_exit_codes(tmp_path):
    # Clean tree -> 0.
    write_tree(tmp_path, {"clean.py": "x = 1\n"})
    ok = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path)],
        capture_output=True, text=True,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "lint: clean" in ok.stdout
    # Violations -> 1.
    dirty = tmp_path / "dirty"
    write_tree(dirty, {"m.py": "import random\nx = random.random()\n"})
    bad = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(dirty)],
        capture_output=True, text=True,
    )
    assert bad.returncode == 1
    assert "[determinism]" in bad.stdout
    # Unknown pass -> 2.
    usage = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--select", "bogus"],
        capture_output=True, text=True,
    )
    assert usage.returncode == 2


def test_cli_list_and_json(tmp_path):
    listed = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list"],
        capture_output=True, text=True,
    )
    assert listed.returncode == 0
    assert "determinism" in listed.stdout
    assert "backend-parity" in listed.stdout
    write_tree(tmp_path, {"m.py": "import random\nx = random.random()\n"})
    as_json = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path),
         "--format", "json"],
        capture_output=True, text=True,
    )
    assert as_json.returncode == 1
    doc = json.loads(as_json.stdout)
    assert doc["n_findings"] == 1
