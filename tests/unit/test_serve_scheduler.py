"""Scheduler unit surface: token buckets, backpressure, coalescing,
journal recovery, and dedupe accounting through a real (tiny)
campaign."""

import asyncio

import pytest

from repro import obs
from repro.campaign import Campaign, Grid
from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.scenario import Burst, NodeSpec, SystemSpec
from repro.serve.protocol import SubmitOptions, SubmitRequest
from repro.serve.scheduler import (
    QueueFull,
    RateLimited,
    Scheduler,
    TokenBucket,
)

SPEC = SystemSpec(
    name="serve-three-chip",
    clock_hz=400_000.0,
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)

BURST = Burst("m", Address.short(0x2, 5), bytes(range(4)), count=2)


def campaign_doc(name="serve-study", counts=(1, 2)):
    return Campaign(
        spec=SPEC,
        workload=BURST,
        grid=Grid.product(**{"workload.count": list(counts)}),
        name=name,
    ).to_dict()


def request(name="serve-study", client="alice", counts=(1, 2)):
    return SubmitRequest(
        campaign=campaign_doc(name, counts=counts), client=client
    )


def run_to_terminal(scheduler, job, timeout_s=30.0):
    """Drive the scheduler's loop until ``job`` is terminal."""
    async def main():
        await scheduler.start()
        for _ in range(int(timeout_s / 0.02)):
            if job.terminal:
                break
            await asyncio.sleep(0.02)
        await scheduler.stop()
    asyncio.run(main())
    assert job.terminal, job.state


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=3, rate_per_s=1.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, rate_per_s=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.now += 0.5   # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, rate_per_s=10.0, clock=clock)
        clock.now += 100.0
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_names_the_gap(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, rate_per_s=4.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after_s == pytest.approx(0.25)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TokenBucket(capacity=0, rate_per_s=1.0)


class TestSubmission:
    def test_rate_limited_past_burst(self):
        clock = FakeClock()
        scheduler = Scheduler(
            queue_depth=100, rate_per_s=1.0, burst=2.0, clock=clock
        )
        scheduler.submit(request(name="a", counts=(1,)))
        scheduler.submit(request(name="b", counts=(2,)))
        with pytest.raises(RateLimited) as exc:
            scheduler.submit(request(name="c", counts=(3,)))
        assert exc.value.retry_after_s > 0
        # Another client has its own bucket.
        job, created = scheduler.submit(
            request(name="c", client="bob", counts=(3,))
        )
        assert created

    def test_queue_full_backpressure(self):
        scheduler = Scheduler(queue_depth=2)
        scheduler.submit(request(name="a", counts=(1,)))
        scheduler.submit(request(name="b", counts=(2,)))
        with pytest.raises(QueueFull, match="capacity"):
            scheduler.submit(request(name="c", counts=(3,)))

    def test_identical_inflight_submission_coalesces(self):
        scheduler = Scheduler()
        job, created = scheduler.submit(request())
        again, created_again = scheduler.submit(request())
        assert created and not created_again
        assert again is job
        assert len(scheduler.jobs()) == 1
        # A different client's identical campaign is its own job.
        other, other_created = scheduler.submit(request(client="bob"))
        assert other_created and other is not job

    def test_uncompilable_campaign_rejected_not_queued(self):
        scheduler = Scheduler()
        bad = SubmitRequest(campaign={"system": {"nodes": []}})
        with pytest.raises(ConfigurationError):
            scheduler.submit(bad)
        assert scheduler.jobs() == []

    def test_job_id_is_stable_content_hash_plus_serial(self):
        scheduler = Scheduler()
        job, _ = scheduler.submit(request())
        assert job.job_id == f"{request().key}-0"


class TestExecution:
    def test_runs_to_done_with_accounting(self):
        scheduler = Scheduler()
        job, _ = scheduler.submit(request())
        run_to_terminal(scheduler, job)
        assert job.state == "done"
        assert job.n_trials == 2
        assert job.done == 2
        assert job.executed == 2
        assert job.cached == 0
        assert job.outcomes == {"ok": 2}
        assert len(job.lines) == 2

    def test_resubmission_serves_from_shared_store(self):
        scheduler = Scheduler()
        first, _ = scheduler.submit(request())
        run_to_terminal(scheduler, first)
        with obs.observe(trace=False, profile=False) as session:
            second, created = scheduler.submit(request())
            assert created   # the first job is terminal: a new job
            run_to_terminal(scheduler, second)
        assert second.state == "done"
        assert second.cached == 2
        assert second.executed == 0
        # Per-client dedupe accounting reaches the obs registry.
        counters = session.metrics.to_dict()["counters"]
        assert counters.get("serve.dedupe_hits{client=alice}") == 2
        # And the record lines are byte-identical across the two jobs.
        assert second.lines == first.lines


class TestJournalRecovery:
    def test_queued_job_survives_restart(self, tmp_path):
        root = tmp_path / "serve"
        scheduler = Scheduler(root=root)
        job, _ = scheduler.submit(request())

        recovered = Scheduler(root=root)
        twin = recovered.get(job.job_id)
        assert twin.state == "queued"
        assert twin.resumptions == 1
        assert twin.request == job.request

    def test_terminal_job_survives_restart_with_results(self, tmp_path):
        root = tmp_path / "serve"
        scheduler = Scheduler(root=root)
        job, _ = scheduler.submit(request())
        run_to_terminal(scheduler, job)
        lines = list(job.lines)

        recovered = Scheduler(root=root)
        twin = recovered.get(job.job_id)
        assert twin.state == "done"
        assert twin.done == twin.n_trials == 2
        assert twin.outcomes == {"ok": 2}
        # Results materialise from the shared store by trial key.
        assert recovered.materialize(twin) == lines

    def test_recovered_queued_job_resumes_and_completes(self, tmp_path):
        root = tmp_path / "serve"
        first = Scheduler(root=root)
        job, _ = first.submit(request())
        # Never started: the journal holds it as queued.
        recovered = Scheduler(root=root)
        twin = recovered.get(job.job_id)
        run_to_terminal(recovered, twin)
        assert twin.state == "done"
        assert twin.done == 2
