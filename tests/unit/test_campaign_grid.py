"""Grid algebra: product/zip axes, chain/cross composition, JSON."""

import json

import pytest

from repro.campaign import Grid, as_grid
from repro.core.errors import ConfigurationError


class TestProduct:
    def test_cartesian_product_in_axis_order(self):
        grid = Grid.product(a=[1, 2], b=["x", "y"])
        assert grid.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(grid) == 4
        assert grid.keys() == ("a", "b")

    def test_empty_product_is_one_empty_point(self):
        assert Grid.product().points() == [{}]

    def test_empty_axis_enumerates_nothing(self):
        assert Grid.product(a=[]).points() == []

    def test_scalar_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="iterable"):
            Grid.product(a=3)


class TestZip:
    def test_lockstep_axes(self):
        grid = Grid.zip(a=[1, 2, 3], b=[10, 20, 30])
        assert grid.points() == [
            {"a": 1, "b": 10},
            {"a": 2, "b": 20},
            {"a": 3, "b": 30},
        ]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="equal lengths"):
            Grid.zip(a=[1, 2], b=[1])

    def test_single_point(self):
        assert Grid.single(a=1, b=2).points() == [{"a": 1, "b": 2}]


class TestComposition:
    def test_chain_concatenates(self):
        grid = Grid.product(a=[1, 2]) + Grid.single(a=99, b=7)
        assert grid.points() == [{"a": 1}, {"a": 2}, {"a": 99, "b": 7}]
        assert grid.keys() == ("a", "b")

    def test_chain_flattens(self):
        grid = Grid.single(a=1) + Grid.single(a=2) + Grid.single(a=3)
        assert grid.kind == "chain"
        assert len(grid.parts) == 3

    def test_cross_combines_every_pair(self):
        grid = Grid.product(a=[1, 2]) * Grid.zip(b=[10, 20], c=[1, 2])
        assert grid.points() == [
            {"a": 1, "b": 10, "c": 1},
            {"a": 1, "b": 20, "c": 2},
            {"a": 2, "b": 10, "c": 1},
            {"a": 2, "b": 20, "c": 2},
        ]

    def test_cross_with_shared_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="disjoint"):
            Grid.product(a=[1]) * Grid.product(a=[2])

    def test_iteration_matches_points(self):
        grid = Grid.product(a=[1, 2]) + Grid.single(b=3)
        assert list(grid) == grid.points()


class TestSerialisation:
    @pytest.mark.parametrize("grid", [
        Grid.product(a=[1, 2], b=[3.5]),
        Grid.zip(a=[1, 2], b=["u", "v"]),
        Grid.product(a=[1]) + Grid.single(b=2),
        Grid.product(a=[1, 2]) * Grid.zip(b=[3, 4]),
    ], ids=["product", "zip", "chain", "cross"])
    def test_round_trips_through_json(self, grid):
        document = json.loads(json.dumps(grid.to_dict()))
        rebuilt = Grid.from_dict(document)
        assert rebuilt.points() == grid.points()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Grid.from_dict({"kind": "mystery"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            Grid.from_dict({"kind": "product", "axes": {}, "extra": 1})


class TestAsGrid:
    def test_plain_mapping_means_product(self):
        grid = as_grid({"a": [1, 2], "b": [3]})
        assert grid.kind == "product"
        assert grid.points() == [
            {"a": 1, "b": 3},
            {"a": 2, "b": 3},
        ]

    def test_grid_document_detected_by_kind(self):
        grid = as_grid({"kind": "zip", "axes": {"a": [1, 2]}})
        assert grid.kind == "zip"

    def test_grid_passes_through(self):
        grid = Grid.product(a=[1])
        assert as_grid(grid) is grid

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="Grid"):
            as_grid(42)
