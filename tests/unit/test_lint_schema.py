"""Schema pass: round-trip pairing, version stamps, canonical JSON,
wall-clock exclusion from trial records."""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=["schema"])


def test_to_dict_without_loader_flagged(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        ),
    })
    assert len(findings) == 1
    assert "no from_dict" in findings[0].message


def test_from_dict_classmethod_pairs(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls()\n"
        ),
    })
    assert findings == []


def test_module_level_loader_pairs(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "def spec_from_dict(data):\n"
            "    return Spec()\n"
        ),
    })
    assert findings == []


def test_one_way_report_suppressible(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Report:\n"
            "    # lint: disable=schema -- one-way analytic report\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        ),
    })
    assert findings == []


def test_inline_schema_version_literal_flagged(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "def record():\n"
            "    return {'schema_version': 3}\n"
        ),
    })
    assert len(findings) == 1
    assert "inline literal" in findings[0].message


def test_schema_version_constant_clean(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "from repro.core.schema import REPORT_SCHEMA_VERSION\n"
            "def record():\n"
            "    return {'schema_version': REPORT_SCHEMA_VERSION}\n"
        ),
    })
    assert findings == []


def test_canonical_module_requires_sort_keys(tmp_path):
    findings = lint(tmp_path, {
        "campaign/trial.py": (
            "import json\n"
            "def canonical_json(doc):\n"
            "    return json.dumps(doc)\n"
        ),
    })
    assert len(findings) == 1
    assert "canonical" in findings[0].message
    clean = lint(tmp_path / "fixed", {
        "campaign/trial.py": (
            "import json\n"
            "def canonical_json(doc):\n"
            "    return json.dumps(doc, sort_keys=True)\n"
        ),
    })
    assert clean == []


def test_dumps_feeding_hashlib_requires_sort_keys(tmp_path):
    findings = lint(tmp_path, {
        "anywhere.py": (
            "import hashlib, json\n"
            "def key(doc):\n"
            "    return hashlib.sha256("
            "json.dumps(doc).encode()).hexdigest()\n"
        ),
    })
    assert len(findings) == 1
    assert "content address" in findings[0].message


def test_plain_dumps_outside_canonical_modules_clean(tmp_path):
    findings = lint(tmp_path, {
        "anywhere.py": (
            "import json\n"
            "def pretty(doc):\n"
            "    return json.dumps(doc, indent=2)\n"
        ),
    })
    assert findings == []


_RUNNER = """\
class RunReport:
    # lint: disable=schema -- fixture one-way report
    def to_dict(self):
        return {
            "n_ok": self.n_ok,
            "wall_s": self.wall_s,
            "wall_throughput_tps": self.tps,
        }
"""

_TRIAL_POPS = """\
import json
def canonical_json(doc):
    return json.dumps(doc, sort_keys=True)
def trial_record(trial, report):
    doc = report.to_dict()
    doc.pop("wall_s", None)
    doc.pop("wall_throughput_tps", None)
    return doc
"""

_TRIAL_FORGETS = """\
import json
def canonical_json(doc):
    return json.dumps(doc, sort_keys=True)
def trial_record(trial, report):
    doc = report.to_dict()
    doc.pop("wall_s", None)
    return doc
"""


def test_wall_keys_must_be_popped_from_records(tmp_path):
    clean = lint(tmp_path, {
        "scenario/runner.py": _RUNNER,
        "campaign/trial.py": _TRIAL_POPS,
    })
    assert clean == []
    findings = lint(tmp_path / "drifted", {
        "scenario/runner.py": _RUNNER,
        "campaign/trial.py": _TRIAL_FORGETS,
    })
    assert len(findings) == 1
    assert "wall_throughput_tps" in findings[0].message
    assert findings[0].path == "campaign/trial.py"
