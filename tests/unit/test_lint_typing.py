"""Typing pass: annotated public surfaces, no implicit Optional."""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=["typing"])


def test_unannotated_public_function_in_typed_package(tmp_path):
    findings = lint(tmp_path, {
        "core/thing.py": (
            "def compute(value):\n"
            "    return value\n"
        ),
    })
    assert len(findings) == 2  # parameter + return
    joined = " ".join(f.message for f in findings)
    assert "unannotated parameter" in joined
    assert "no return annotation" in joined


def test_fully_annotated_function_clean(tmp_path):
    findings = lint(tmp_path, {
        "core/thing.py": (
            "def compute(value: int) -> int:\n"
            "    return value\n"
        ),
    })
    assert findings == []


def test_private_functions_exempt(tmp_path):
    findings = lint(tmp_path, {
        "core/thing.py": (
            "def _helper(value):\n"
            "    return value\n"
        ),
    })
    assert findings == []


def test_untyped_package_surface_exempt(tmp_path):
    findings = lint(tmp_path, {
        "baselines/thing.py": (
            "def compute(value):\n"
            "    return value\n"
        ),
    })
    assert findings == []


def test_public_method_and_init_checked(tmp_path):
    findings = lint(tmp_path, {
        "campaign/thing.py": (
            "class Runner:\n"
            "    def __init__(self, store):\n"
            "        self.store = store\n"
            "    def go(self) -> None:\n"
            "        pass\n"
            "    def _internal(self, x):\n"
            "        pass\n"
        ),
    })
    assert len(findings) == 1
    assert "Runner.__init__" in findings[0].message


def test_varargs_need_annotations(tmp_path):
    findings = lint(tmp_path, {
        "scenario/thing.py": (
            "def build(*parts, **options) -> None:\n"
            "    pass\n"
        ),
    })
    assert len(findings) == 1
    assert "*parts" in findings[0].message
    assert "**options" in findings[0].message


def test_implicit_optional_flagged_everywhere(tmp_path):
    # Unlike surface annotation, implicit Optional is checked in
    # every package (mypy's no_implicit_optional is global).
    findings = lint(tmp_path, {
        "baselines/thing.py": (
            "def connect(timeout: float = None) -> None:\n"
            "    pass\n"
        ),
    })
    assert len(findings) == 1
    assert "implicit Optional" in findings[0].message


def test_explicit_optional_clean(tmp_path):
    findings = lint(tmp_path, {
        "core/thing.py": (
            "from typing import Optional\n"
            "def connect(timeout: Optional[float] = None) -> None:\n"
            "    pass\n"
        ),
    })
    assert findings == []


def test_none_admitting_alias_clean(tmp_path):
    findings = lint(tmp_path, {
        "campaign/thing.py": (
            "from typing import Union\n"
            "StoreLike = Union[str, None]\n"
            "def open_store(store: StoreLike = None) -> None:\n"
            "    pass\n"
        ),
    })
    assert findings == []
