"""Unit tests for the tier-3 batch compiler, accel seam and caches.

The compiler lowers specs and schedules to flat integer arrays; these
tests pin the node-table layout (mediator-rooted rotation, ``-1``
sentinels), message interning, scheduler-compatible time quantization,
validation-error parity with the event-loop backends, the numpy/python
accel equivalence, the content-addressed compiled-system cache, and
the table-driven backend registry.
"""

import pytest

from repro.batch import (
    KIND_INTERRUPT,
    KIND_POST,
    CompiledSystem,
    accel,
    cache_stats,
    clear_cache,
    compile_system_cached,
    compile_workload,
    spec_digest,
)
from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.scenario import (
    BACKEND_REGISTRY,
    BACKENDS,
    Burst,
    Interrupt,
    NodeSpec,
    OneShot,
    SystemSpec,
    backend_help,
    run,
    select_backend,
)


def three_chip(**kwargs):
    return SystemSpec(
        name="three-chip",
        nodes=(
            NodeSpec("sensor", short_prefix=0x2, power_gated=True),
            NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
            NodeSpec("radio", short_prefix=0x3, power_gated=True),
        ),
        **kwargs,
    )


class TestCompiledSystem:
    def test_mediator_rooted_rotation(self):
        csys = CompiledSystem(three_chip())
        # The mediator rotates to position 0; ring order is preserved.
        assert csys.names == ("cpu", "radio", "sensor")
        assert csys.spec_order_names == ("sensor", "cpu", "radio")
        assert csys.position_of == {"cpu": 0, "radio": 1, "sensor": 2}
        assert csys.short_prefixes == (0x1, 0x3, 0x2)
        assert csys.power_gated == (0, 1, 1)
        assert csys.n == 3

    def test_full_prefix_sentinel_and_auto_sleep_default(self):
        spec = SystemSpec(
            name="full",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("f", full_prefix=0xAB0CD, power_gated=True),
            ),
        )
        csys = CompiledSystem(spec)
        assert csys.short_prefixes == (0x1, -1)
        assert csys.full_prefixes == (-1, 0xAB0CD)
        # auto_sleep defaults to the node's power gating.
        assert csys.auto_sleep == (0, 1)

    def test_template_cache_starts_empty_and_is_mutable(self):
        csys = CompiledSystem(three_chip())
        assert csys.templates == {}
        assert csys.template_list == []

    def test_anchor_resolution(self):
        spec = SystemSpec(
            name="anchored",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2),
            ),
            arbitration_anchor="a",
        )
        assert CompiledSystem(spec).anchor_pos == 1
        # Anchoring at the mediator is the default: no override.
        spec_m = SystemSpec(
            name="anchored-m",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2),
            ),
            arbitration_anchor="m",
        )
        assert CompiledSystem(spec_m).anchor_pos is None


class TestValidationParity:
    """The compiler must refuse exactly what MBusSystem refuses —
    same exception type, same message — so error symmetry holds in
    the differential harness."""

    def _parity(self, spec, workload):
        with pytest.raises(ConfigurationError) as edge_err:
            run(spec, workload, backend="edge")
        with pytest.raises(ConfigurationError) as batch_err:
            run(spec, workload, backend="batch")
        assert str(edge_err.value) == str(batch_err.value)

    def test_duplicate_short_prefix(self):
        spec = SystemSpec(
            name="dup",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2),
                NodeSpec("b", short_prefix=0x2),
            ),
        )
        self._parity(spec, OneShot("m", Address.short(0x2, 5), b"\x01"))

    def test_reserved_short_prefix(self):
        spec = SystemSpec(
            name="reserved",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0xF),
            ),
        )
        self._parity(spec, OneShot("m", Address.short(0x1, 5), b"\x01"))

    def test_short_address_budget(self):
        spec = SystemSpec(
            name="crowded",
            nodes=tuple(
                [NodeSpec("m", short_prefix=0x1, is_mediator=True)]
                + [
                    NodeSpec(f"n{i}", short_prefix=0x2 + i)
                    for i in range(14)
                ]
            ),
        )
        self._parity(spec, OneShot("m", Address.short(0x2, 5), b"\x01"))

    def test_prefixless_member(self):
        spec = SystemSpec(
            name="prefixless",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("ghost"),
            ),
        )
        self._parity(spec, OneShot("m", Address.short(0x1, 5), b"\x01"))

    def test_gated_anchor(self):
        spec = SystemSpec(
            name="gated-anchor",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2, power_gated=True),
            ),
            arbitration_anchor="a",
        )
        self._parity(spec, OneShot("m", Address.short(0x2, 5), b"\x01"))

    def test_unknown_workload_source(self):
        self._parity(
            three_chip(), OneShot("nobody", Address.short(0x2, 5), b"\x01")
        )


class TestCompiledWorkload:
    def test_arrays_and_interning(self):
        spec = three_chip()
        csys = CompiledSystem(spec)
        workload = (
            Burst("cpu", Address.short(0x2, 5), b"\xAA", count=3)
            + Interrupt("radio", at_s=0.02)
        )
        cwl = compile_workload(workload.compile(spec), csys)
        assert len(cwl) == 4
        assert cwl.kind == (
            KIND_POST, KIND_POST, KIND_POST, KIND_INTERRUPT,
        )
        # Three identical posts intern to a single message...
        assert len(cwl.messages) == 1
        assert cwl.ref == (0, 0, 0, -1)
        # ...and positions are mediator-rooted (cpu=0, radio=1).
        assert cwl.pos == (0, 0, 0, 1)

    def test_quantization_matches_event_loop_runner(self):
        spec = three_chip()
        csys = CompiledSystem(spec)
        workload = OneShot(
            "cpu", Address.short(0x2, 5), b"\x01", at_s=0.0123456789
        )
        cwl = compile_workload(workload.compile(spec), csys)
        assert cwl.t_ps == (int(round(0.0123456789 * 1e12)),)


class TestAccelSeam:
    """Both implementations must agree integer-for-integer."""

    @pytest.fixture
    def both(self):
        def call(fn, *args):
            original = accel.backend_name()
            try:
                accel.configure(force="python")
                python = fn(*args)
                try:
                    accel.configure(force="numpy")
                except ImportError:
                    pytest.skip("numpy not installed")
                numpy = fn(*args)
            finally:
                accel.configure(force=original)
            return python, numpy

        return call

    def test_quantize_times_equivalence(self, both):
        # Includes a half-way case: round-half-even must agree.
        seconds = [0.0, 1e-12, 0.0123456789, 2.5e-12, 3.5e-12] * 3
        python, numpy = both(accel.quantize_times, seconds, 10**12)
        assert python == numpy
        assert python == [int(round(s * 10**12)) for s in seconds]

    def test_prefix_sums_equivalence(self, both):
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        python, numpy = both(accel.prefix_sums, values)
        assert python == numpy == [3, 4, 8, 9, 14, 23, 25, 31, 36, 39]

    def test_weighted_sum_rows_equivalence(self, both):
        rows = [[i + j for j in range(9)] for i in range(8)]
        weights = list(range(1, 9))
        python, numpy = both(accel.weighted_sum_rows, rows, weights)
        assert python == numpy
        assert python[0] == sum(w * r[0] for w, r in zip(weights, rows))

    def test_env_var_opt_out(self, monkeypatch):
        original = accel.backend_name()
        try:
            monkeypatch.setenv("REPRO_BATCH_NUMPY", "0")
            assert accel.configure() == "python"
        finally:
            accel.configure(force=original)


class TestCompiledSystemCache:
    def test_content_addressed_reuse(self):
        clear_cache()
        spec = three_chip()
        first = compile_system_cached(spec)
        # A *different* spec object with equal content hits the cache.
        second = compile_system_cached(
            SystemSpec.from_dict(spec.to_dict())
        )
        assert first is second
        stats = cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        clear_cache()
        assert cache_stats()["entries"] == 0

    def test_digest_is_canonical(self):
        spec = three_chip()
        assert spec_digest(spec) == spec_digest(
            SystemSpec.from_dict(spec.to_dict())
        )

    def test_validation_errors_do_not_poison_cache(self):
        clear_cache()
        bad = SystemSpec(
            name="dup",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2),
                NodeSpec("b", short_prefix=0x2),
            ),
        )
        with pytest.raises(ConfigurationError):
            compile_system_cached(bad)
        assert cache_stats()["entries"] == 0


class TestBackendRegistry:
    def test_registry_drives_backends_tuple(self):
        assert BACKENDS == tuple(BACKEND_REGISTRY)
        assert set(BACKENDS) == {"auto", "edge", "fast", "batch"}

    def test_backend_help_mentions_every_backend(self):
        text = backend_help()
        for name in BACKENDS:
            assert f"{name}:" in text

    def test_batch_is_explicit_never_auto(self):
        assert select_backend("batch") == "batch"
        assert select_backend("auto") == "fast"
        assert select_backend("auto", trace=True) == "edge"

    def test_unknown_backend_lists_the_registry(self):
        with pytest.raises(ConfigurationError) as err:
            select_backend("warp")
        assert str(BACKENDS) in str(err.value)

    def test_batch_rejects_trace_and_faults(self):
        with pytest.raises(ConfigurationError, match="trac"):
            select_backend("batch", trace=True)
        with pytest.raises(ConfigurationError, match="edge"):
            select_backend("batch", faults_active=True)
