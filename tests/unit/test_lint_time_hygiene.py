"""Time-hygiene pass: *_ps quantities stay integer picoseconds."""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, source):
    (tmp_path / "m.py").write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=["time-hygiene"])


def test_float_literal_assignment_flagged(tmp_path):
    findings = lint(tmp_path, "delay_ps = 1.5 * cycles\n")
    assert len(findings) == 1
    assert "integer picoseconds" in findings[0].message


def test_true_division_assignment_flagged(tmp_path):
    findings = lint(tmp_path, "period_ps = total / n\n")
    assert len(findings) == 1


def test_int_quantization_clean(tmp_path):
    findings = lint(tmp_path, "delay_ps = int(round(delay_s * 1e12))\n")
    assert findings == []


def test_non_ps_names_uncontrolled(tmp_path):
    findings = lint(tmp_path, "duration_s = cycles / clock_hz\n")
    assert findings == []


def test_float_annotation_flagged(tmp_path):
    findings = lint(tmp_path, "wake_ps: float = 0\n")
    assert len(findings) == 1
    assert "annotated float" in findings[0].message


def test_annotated_assignment_value_taint_flagged(tmp_path):
    findings = lint(tmp_path, "wake_ps: int = round(2.5)\n")
    assert len(findings) == 1


def test_augmented_division_flagged(tmp_path):
    findings = lint(tmp_path, "t_ps = 0\nt_ps /= 2\n")
    assert len(findings) == 1
    assert "/=" in findings[0].message


def test_floor_division_augment_clean(tmp_path):
    findings = lint(tmp_path, "t_ps = 0\nt_ps //= 2\n")
    assert findings == []


def test_ps_keyword_argument_flagged(tmp_path):
    findings = lint(
        tmp_path,
        "configure(node_delay_ps=0.5 * cycle)\n",
    )
    assert len(findings) == 1
    assert "node_delay_ps=" in findings[0].message


def test_ps_keyword_argument_quantized_clean(tmp_path):
    findings = lint(
        tmp_path,
        "configure(node_delay_ps=int(round(0.5 * cycle)))\n",
    )
    assert findings == []


def test_float_annotated_ps_parameter_flagged(tmp_path):
    findings = lint(
        tmp_path,
        "def schedule(at_ps: float) -> None:\n    pass\n",
    )
    assert len(findings) == 1
    assert "parameter at_ps" in findings[0].message


def test_ps_function_returning_division_flagged(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def cycle_ps(clock_hz):\n"
            "    return 1e12 / clock_hz\n"
        ),
    )
    assert len(findings) == 1
    assert "cycle_ps() returns" in findings[0].message


def test_ps_function_returning_quantized_clean(tmp_path):
    findings = lint(
        tmp_path,
        (
            "def cycle_ps(clock_hz):\n"
            "    return int(round(1e12 / clock_hz))\n"
        ),
    )
    assert findings == []


def test_nested_function_return_not_misattributed(tmp_path):
    # A return inside a nested helper belongs to the helper, not to
    # the enclosing *_ps function.
    findings = lint(
        tmp_path,
        (
            "def cycle_ps(clock_hz):\n"
            "    def helper():\n"
            "        return 1.0\n"
            "    return int(helper())\n"
        ),
    )
    assert findings == []
