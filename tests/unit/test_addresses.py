"""Unit tests for MBus addressing (Sections 4.6, 4.7)."""

import pytest

from repro.core.addresses import (
    Address,
    BROADCAST_PREFIX,
    FULL_ADDR_MARKER,
    FullPrefix,
    ShortPrefix,
)
from repro.core.errors import AddressError


class TestShortPrefix:
    def test_range(self):
        assert ShortPrefix(0x5) == 5
        with pytest.raises(AddressError):
            ShortPrefix(0x10)
        with pytest.raises(AddressError):
            ShortPrefix(-1)

    def test_reserved_prefixes(self):
        assert ShortPrefix(BROADCAST_PREFIX).is_broadcast
        assert ShortPrefix(FULL_ADDR_MARKER).is_full_marker
        assert not ShortPrefix(0x2).is_broadcast

    def test_fourteen_assignable_prefixes(self):
        """Sections 4.7: 16 minus broadcast minus 0xF leaves 14."""
        assignable = [p for p in range(16) if ShortPrefix(p).is_assignable]
        assert len(assignable) == 14


class TestFullPrefix:
    def test_twenty_bit_range(self):
        FullPrefix((1 << 20) - 1)
        with pytest.raises(AddressError):
            FullPrefix(1 << 20)


class TestAddressConstruction:
    def test_requires_exactly_one_prefix(self):
        with pytest.raises(AddressError):
            Address(fu_id=0)
        with pytest.raises(AddressError):
            Address(fu_id=0, short_prefix=1, full_prefix=1)

    def test_fu_id_range(self):
        with pytest.raises(AddressError):
            Address.short(0x2, fu_id=16)

    def test_short_prefix_0xf_rejected(self):
        with pytest.raises(AddressError):
            Address.short(0xF, 0)

    def test_broadcast_constructor(self):
        address = Address.broadcast(3)
        assert address.is_broadcast
        assert address.fu_id == 3


class TestWireFormat:
    def test_short_address_is_8_bits(self):
        assert Address.short(0x2, 0x5).n_bits == 8

    def test_full_address_is_32_bits(self):
        assert Address.full(0x12345, 0x5).n_bits == 32

    def test_short_encoding_layout(self):
        assert Address.short(0xA, 0x5).encode() == 0xA5

    def test_full_encoding_has_marker(self):
        word = Address.full(0x12345, 0x6).encode()
        assert (word >> 28) == 0xF
        assert (word >> 8) & 0xFFFFF == 0x12345
        assert word & 0xF == 0x6

    def test_bits_msb_first(self):
        bits = Address.short(0x8, 0x1).bits()
        assert bits == (1, 0, 0, 0, 0, 0, 0, 1)

    def test_roundtrip_short(self):
        original = Address.short(0x7, 0xC)
        decoded = Address.decode(original.encode(), 8)
        assert decoded == original

    def test_roundtrip_full(self):
        original = Address.full(0xABCDE, 0x3)
        decoded = Address.decode(original.encode(), 32)
        assert decoded == original

    def test_decode_full_without_marker_rejected(self):
        with pytest.raises(AddressError):
            Address.decode(0x0123_4567, 32)

    def test_decode_odd_width_rejected(self):
        with pytest.raises(AddressError):
            Address.decode(0, 16)

    def test_str_forms(self):
        assert "broadcast" in str(Address.broadcast(1))
        assert "short" in str(Address.short(2, 1))
        assert "full" in str(Address.full(0x12345, 1))
