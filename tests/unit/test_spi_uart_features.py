"""Unit tests for SPI/UART baselines and the Table 1 feature matrix."""

import pytest

from repro.baselines.features import (
    FEATURE_MATRIX,
    PowerLevel,
    buses_satisfying_all_critical,
)
from repro.baselines.spi import DaisyChainedSPI, SPIBus
from repro.baselines.uart import UARTLink


class TestSPI:
    def test_pads_scale_with_slaves(self):
        """Table 1: 3 + n chip-select lines."""
        assert SPIBus(1).io_pads == 4
        assert SPIBus(11).io_pads == 14

    def test_overhead_is_two_bits(self):
        assert SPIBus(1).overhead_bits(100) == 2

    def test_no_slave_initiation(self):
        bus = SPIBus(4)
        assert not bus.supports_slave_initiation
        assert bus.interrupt_lines_needed(3) == 3

    def test_slave_to_slave_more_than_doubles_cost(self):
        """Section 2.3: sent twice plus central-controller energy."""
        bus = SPIBus(4)
        direct = bus.master_to_slave_energy_pj(8)
        relayed = bus.slave_to_slave_energy_pj(8)
        assert relayed > 2 * direct

    def test_needs_a_slave(self):
        with pytest.raises(ValueError):
            SPIBus(0)


class TestDaisyChain:
    def test_shift_overhead_proportional_to_buffers(self):
        chain = DaisyChainedSPI(buffer_bits_per_device=[32, 32, 64])
        assert chain.shift_overhead_bits() == 128
        assert chain.n_devices == 3

    def test_fixed_pads(self):
        assert DaisyChainedSPI([8, 8]).io_pads == 3

    def test_transfer_includes_payload(self):
        chain = DaisyChainedSPI([16, 16])
        assert chain.transfer_cycles(4) == 32 + 32


class TestUART:
    def test_one_stop_overhead(self):
        assert UARTLink(stop_bits=1).overhead_bits(10) == 20

    def test_two_stop_overhead(self):
        assert UARTLink(stop_bits=2).overhead_bits(10) == 30

    def test_parity_adds_a_bit(self):
        assert UARTLink(stop_bits=1, parity=True).overhead_bits(10) == 30

    def test_pads_pairwise(self):
        assert UARTLink.io_pads(5) == 10

    def test_efficiency(self):
        link = UARTLink(stop_bits=1)
        assert link.efficiency(10) == pytest.approx(0.8)
        assert link.efficiency(0) == 0.0

    def test_stop_bits_validation(self):
        with pytest.raises(ValueError):
            UARTLink(stop_bits=3)


class TestFeatureMatrix:
    def test_table1_buses_present(self):
        assert set(FEATURE_MATRIX) == {"I2C", "SPI", "UART", "Lee-I2C", "MBus"}

    def test_only_mbus_satisfies_all_critical(self):
        """Table 1's punch line."""
        assert buses_satisfying_all_critical() == ["MBus"]

    def test_mbus_satisfies_desirable_features_too(self):
        assert FEATURE_MATRIX["MBus"].satisfies_all()

    def test_mbus_pads_fixed_at_four(self):
        mbus = FEATURE_MATRIX["MBus"]
        assert mbus.io_pads(2) == mbus.io_pads(14) == 4

    def test_spi_pads_population_dependent(self):
        assert not FEATURE_MATRIX["SPI"].population_independent_pads()

    def test_i2c_fails_on_active_power(self):
        i2c = FEATURE_MATRIX["I2C"]
        assert i2c.active_power is PowerLevel.HIGH
        assert not i2c.satisfies_critical()

    def test_lee_fails_on_synthesizability(self):
        lee = FEATURE_MATRIX["Lee-I2C"]
        assert not lee.synthesizable
        assert not lee.satisfies_critical()

    def test_address_spaces(self):
        """Table 1: I2C 128, MBus 2^24."""
        assert FEATURE_MATRIX["I2C"].global_unique_addresses == 128
        assert FEATURE_MATRIX["MBus"].global_unique_addresses == 2 ** 24

    def test_only_mbus_is_power_aware(self):
        aware = [n for n, f in FEATURE_MATRIX.items() if f.power_aware]
        assert aware == ["MBus"]

    def test_overhead_expressions(self):
        assert FEATURE_MATRIX["I2C"].overhead_bits(8) == 18
        assert FEATURE_MATRIX["MBus"].overhead_bits(8) == 19
        assert FEATURE_MATRIX["SPI"].overhead_bits(8) == 2
