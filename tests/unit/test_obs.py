"""Unit tests for repro.obs: tracer, metrics, profiler, state guard.

The determinism contract under test: every host-time-derived field or
metric name carries ``wall``, so :func:`strip_wall_fields` separates
a trace into a byte-comparable deterministic core plus discardable
timing noise.  Integration-level byte comparisons across backends
live in tests/integration/test_obs_runner.py.
"""

import json

import pytest

from repro.obs import (
    OBS,
    MetricsRegistry,
    ObsSession,
    PhaseProfiler,
    Tracer,
    observe,
    strip_wall_fields,
)
from repro.obs.profiler import diff_profiles, format_profile
from repro.obs.tracer import (
    SIM_PID,
    WALL_PID,
    canonical_line,
    chrome_trace,
    load_trace,
    span_structure,
    trace_records,
    validate_trace,
    write_trace,
)


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        assert reg.counter("a").value == 3

    def test_labels_encode_sorted(self):
        reg = MetricsRegistry()
        reg.inc("runs", labels={"backend": "edge", "mode": "x"})
        reg.inc("runs", labels={"mode": "x", "backend": "edge"})
        snap = reg.snapshot()
        assert snap["counters"] == {"runs{backend=edge,mode=x}": 2}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("depth", 5)
        reg.set("depth", 2)
        assert reg.snapshot()["gauges"] == {"depth": 2}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (3, 1, 2):
            reg.observe("lat", value)
        assert reg.snapshot()["histograms"]["lat"] == {
            "count": 3, "sum": 6, "min": 1, "max": 3,
        }

    def test_empty_histogram_summary_is_zeroed(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        assert reg.snapshot()["histograms"]["lat"] == {
            "count": 0, "sum": 0, "min": 0, "max": 0,
        }

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_len_counts_all_instruments(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set("g", 1)
        reg.observe("h", 1)
        assert len(reg) == 3


# ----------------------------------------------------------------------
# Tracer.
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_sequential_ids_and_parents(self):
        tracer = Tracer()
        with tracer.span("run", backend="edge"):
            with tracer.span("compile"):
                pass
            with tracer.span("execute"):
                pass
        ids = [(s.id, s.parent, s.name) for s in tracer.spans]
        assert ids == [
            (0, None, "run"), (1, 0, "compile"), (2, 0, "execute"),
        ]

    def test_span_records_wall_fields_only(self):
        tracer = Tracer()
        with tracer.span("execute"):
            pass
        span = tracer.spans[0].to_dict()
        assert span["t0_ps"] is None
        assert span["wall_t0_s"] is not None
        assert span["wall_dur_s"] >= 0.0

    def test_sim_span_has_no_wall_fields(self):
        tracer = Tracer()
        with tracer.sim_span("bus-round", 100, 50, index=0):
            pass
        span = tracer.spans[0].to_dict()
        assert (span["t0_ps"], span["dur_ps"]) == (100, 50)
        assert span["wall_t0_s"] is None
        assert span["wall_dur_s"] is None

    def test_emit_leaf_backdates_wall_start(self):
        tracer = Tracer()
        with tracer.span("campaign"):
            span = tracer.emit("trial", index=3, wall_dur_s=0.5)
        assert span.parent == 0
        assert span.wall_dur_s == 0.5
        assert span.wall_t0_s is not None

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer._open("outer", "phase", None)
        tracer._open("inner", "phase", None)
        with pytest.raises(RuntimeError):
            tracer._close(outer)

    def test_span_structure_ignores_args_and_timing(self):
        tracer = Tracer()
        with tracer.span("run", backend="edge"):
            with tracer.span("compile"):
                pass
            with tracer.sim_span("bus-round", 0, 10):
                with tracer.sim_span("transaction", 0, 10):
                    pass
        expected = (
            ("run", (
                ("compile", ()),
                ("bus-round", (("transaction", ()),)),
            )),
        )
        assert span_structure(tracer.spans) == expected
        assert span_structure(tracer.records()) == expected


# ----------------------------------------------------------------------
# Trace files: canonical JSONL, wall stripping, validation, Chrome.
# ----------------------------------------------------------------------
class TestTraceFiles:
    def traced(self):
        tracer = Tracer()
        with tracer.span("run", backend="edge"):
            with tracer.sim_span("bus-round", 0, 10, index=0):
                pass
        return tracer

    def test_trace_records_header_first(self):
        records = trace_records(self.traced(), meta={"label": "t"})
        assert records[0]["type"] == "meta"
        assert records[0]["kind"] == "repro-trace"
        assert records[0]["label"] == "t"
        assert "schema_version" in records[0]

    def test_canonical_line_is_sorted_and_compact(self):
        line = canonical_line({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_strip_wall_fields_recursive(self):
        value = {
            "wall_dur_s": 1.0,
            "args": [{"wall_t0_s": 2.0, "dur_ps": 5}],
            "retry_backoff_wall_s": 3.0,
            "dur_ps": 7,
        }
        assert strip_wall_fields(value) == {
            "args": [{"dur_ps": 5}], "dur_ps": 7,
        }

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = self.traced()
        n = write_trace(
            path, tracer,
            meta={"label": "t"},
            metrics={"counters": {"x": 1}},
            profile={"phases": {"execute": {"calls": 1, "wall_s": 0.1}}},
        )
        assert n == 1 + len(tracer.spans) + 2
        doc = load_trace(path)
        assert doc.label == "t"
        assert len(doc.spans) == 2
        assert doc.metrics == {"counters": {"x": 1}}
        assert doc.profile["phases"]["execute"]["calls"] == 1

    def test_validate_trace_clean(self):
        records = trace_records(self.traced(), meta={"label": "t"})
        assert validate_trace(records) == []

    def test_validate_trace_problems(self):
        assert validate_trace([]) == ["empty trace"]
        no_meta = validate_trace([
            {"type": "span", "id": 0, "parent": None, "cat": "phase"},
        ])
        assert any("meta header" in p for p in no_meta)
        orphan = validate_trace([
            {"type": "meta"},
            {"type": "span", "id": 1, "parent": 0, "cat": "phase"},
        ])
        assert any("parent 0" in p for p in orphan)
        bad_cat = validate_trace([
            {"type": "meta"},
            {"type": "span", "id": 0, "parent": None, "cat": "nope"},
        ])
        assert any("unknown category" in p for p in bad_cat)
        dup = validate_trace([
            {"type": "meta"},
            {"type": "span", "id": 0, "parent": None, "cat": "phase"},
            {"type": "span", "id": 0, "parent": None, "cat": "phase"},
        ])
        assert any("duplicate" in p or "increasing" in p for p in dup)

    def test_chrome_trace_tracks_and_floor(self):
        records = trace_records(self.traced())
        doc = chrome_trace(records)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {WALL_PID, SIM_PID}
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 1e-6 for e in xs)
        sim = [e for e in xs if e["pid"] == SIM_PID]
        assert sim and sim[0]["name"] == "bus-round"
        # the JSON must be loadable as Chrome expects
        json.loads(json.dumps(doc))


# ----------------------------------------------------------------------
# Profiler.
# ----------------------------------------------------------------------
class TestProfiler:
    def test_add_accumulates(self):
        prof = PhaseProfiler()
        prof.add("execute", 0.25)
        prof.add("execute", 0.75, calls=2)
        phases = prof.to_dict()["phases"]
        assert phases["execute"]["calls"] == 3
        assert phases["execute"]["wall_s"] == pytest.approx(1.0)

    def test_phase_context_times(self):
        prof = PhaseProfiler()
        with prof.phase("compile"):
            pass
        assert prof.to_dict()["phases"]["compile"]["calls"] == 1

    def test_canonical_phase_order(self):
        prof = PhaseProfiler()
        for name in ("serialize", "compile", "zeta", "execute"):
            prof.add(name, 0.1)
        assert list(prof.to_dict()["phases"]) == [
            "compile", "execute", "serialize", "zeta",
        ]

    def test_format_profile_renders_shares(self):
        text = format_profile("edge", {
            "phases": {
                "compile": {"calls": 1, "wall_s": 0.25},
                "execute": {"calls": 4, "wall_s": 0.75},
            },
        })
        assert "profile: edge" in text
        assert "75.0%" in text

    def test_diff_profiles_ratio_column(self):
        header, rows = diff_profiles([
            ("edge", {"phases": {"execute": {"calls": 1, "wall_s": 0.2}}}),
            ("fast", {"phases": {"execute": {"calls": 1, "wall_s": 0.1}}}),
        ])
        assert header[-1] == "fast/edge"
        (row,) = rows
        assert row[0] == "execute"
        assert row[-1] == "0.50x"

    def test_diff_profiles_missing_phase_dashes(self):
        _header, rows = diff_profiles([
            ("a", {"phases": {"compile": {"calls": 1, "wall_s": 0.1}}}),
            ("b", {"phases": {"execute": {"calls": 1, "wall_s": 0.1}}}),
        ])
        by_phase = {row[0]: row for row in rows}
        assert by_phase["execute"][1] == "-"
        assert by_phase["compile"][2] == "-"


# ----------------------------------------------------------------------
# The OBS switchboard.
# ----------------------------------------------------------------------
class TestState:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert OBS.metrics is None

    def test_observe_scopes_and_restores(self):
        with observe() as session:
            assert OBS.enabled is True
            assert OBS.metrics is session.metrics
            OBS.metrics.inc("x")
        assert OBS.enabled is False
        assert OBS.tracer is None
        # the detached session stays readable after the block
        assert isinstance(session, ObsSession)
        assert session.metrics.snapshot()["counters"] == {"x": 1}

    def test_observe_nests(self):
        with observe() as outer:
            with observe() as inner:
                OBS.metrics.inc("inner")
            assert OBS.enabled is True
            assert OBS.metrics is outer.metrics
            OBS.metrics.inc("outer")
        assert inner.metrics.snapshot()["counters"] == {"inner": 1}
        assert outer.metrics.snapshot()["counters"] == {"outer": 1}

    def test_facets_opt_out(self):
        with observe(trace=False, profile=False) as session:
            assert OBS.tracer is None
            assert OBS.profiler is None
            assert OBS.metrics is not None
        assert session.tracer is None

    def test_phase_disabled_is_noop_context(self):
        with OBS.phase("execute"):
            pass
        assert OBS.enabled is False

    def test_phase_enabled_spans_and_profiles(self):
        with observe() as session:
            with OBS.phase("execute", backend="edge"):
                pass
        assert [s.name for s in session.tracer.spans] == ["execute"]
        assert session.profiler.to_dict()["phases"]["execute"]["calls"] == 1

    def test_profiled_counts_without_span(self):
        with observe() as session:
            with OBS.profiled("plan_round", "tlm.plan_round_calls"):
                pass
        assert session.tracer.spans == []
        snap = session.metrics.snapshot()
        assert snap["counters"]["tlm.plan_round_calls"] == 1
        assert session.profiler.to_dict()["phases"]["plan_round"]["calls"] == 1
