"""ResultStore compaction: bounding the append-only log.

Last-write-wins appending leaves superseded lines behind; without
compaction a cross-run retry loop (a flaky trial re-recorded every
campaign run) grows ``results.jsonl`` without bound.  These tests pin
the stale-line accounting, the explicit ``compact()`` rewrite, and
the automatic compaction on load.
"""

import json

from repro.campaign import RESULTS_FILENAME, ResultStore
from repro.campaign.store import AUTO_COMPACT_MIN_STALE


def record(key, stamp=0):
    return {"key": key, "schema_version": 1, "report": {"stamp": stamp}}


def log_lines(store_dir):
    text = (store_dir / RESULTS_FILENAME).read_text()
    return [line for line in text.splitlines() if line.strip()]


class TestStaleAccounting:
    def test_fresh_store_has_no_stale_lines(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a"))
        store.put(record("b"))
        assert store.stale_lines == 0

    def test_identical_reput_stays_clean(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a"))
        store.put(record("a"))
        assert store.stale_lines == 0
        assert len(log_lines(tmp_path / "s")) == 1

    def test_superseding_put_appends_and_counts(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for stamp in range(4):
            store.put(record("a", stamp))
        assert len(store) == 1
        assert store.stale_lines == 3
        assert len(log_lines(tmp_path / "s")) == 4
        # Last write wins both in memory and on reload.
        assert store.get("a")["report"]["stamp"] == 3
        reloaded = ResultStore(tmp_path / "s", auto_compact=False)
        assert reloaded.get("a")["report"]["stamp"] == 3
        assert reloaded.stale_lines == 3

    def test_corrupt_interior_line_counts_as_stale(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a"))
        with open(store.results_path, "a") as handle:
            handle.write("{this is not json\n")
        store.put(record("b"))
        reloaded = ResultStore(tmp_path / "s", auto_compact=False)
        assert len(reloaded) == 2
        assert reloaded.stale_lines == 1


class TestCompact:
    def test_compact_rewrites_to_live_records(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for stamp in range(5):
            store.put(record("a", stamp))
        store.put(record("b"))
        assert store.compact() == 4
        assert store.stale_lines == 0
        lines = log_lines(tmp_path / "s")
        assert len(lines) == 2
        # First-seen key order and last-written content survive.
        assert [json.loads(line)["key"] for line in lines] == ["a", "b"]
        assert json.loads(lines[0])["report"]["stamp"] == 4
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.get("a")["report"]["stamp"] == 4
        assert reloaded.get("b") is not None

    def test_compact_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a", 0))
        store.put(record("a", 1))
        assert store.compact() == 1
        assert store.compact() == 0

    def test_compact_drops_corrupt_lines(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a"))
        with open(store.results_path, "a") as handle:
            handle.write("not json at all\n")
        reloaded = ResultStore(tmp_path / "s", auto_compact=False)
        assert reloaded.compact() == 1
        assert all(
            json.loads(line) for line in log_lines(tmp_path / "s")
        )

    def test_memory_store_compact_is_a_noop(self):
        store = ResultStore.memory()
        store.put(record("a", 0))
        store.put(record("a", 1))
        assert store.compact() == 0

    def test_no_tmp_file_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(record("a", 0))
        store.put(record("a", 1))
        store.compact()
        leftovers = [
            p.name for p in (tmp_path / "s").iterdir()
            if p.name != RESULTS_FILENAME
        ]
        assert leftovers == []


class TestAutoCompaction:
    def test_reopen_compacts_past_the_floor(self, tmp_path):
        store = ResultStore(tmp_path / "s", auto_compact=False)
        # One live record superseded well past the floor.
        for stamp in range(AUTO_COMPACT_MIN_STALE + 2):
            store.put(record("flaky", stamp))
        assert store.stale_lines == AUTO_COMPACT_MIN_STALE + 1
        reloaded = ResultStore(tmp_path / "s")   # auto_compact=True
        assert reloaded.stale_lines == 0
        assert len(log_lines(tmp_path / "s")) == 1
        assert reloaded.get("flaky")["report"]["stamp"] == (
            AUTO_COMPACT_MIN_STALE + 1
        )

    def test_small_stores_never_churn_disk(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for stamp in range(5):
            store.put(record("a", stamp))
        reloaded = ResultStore(tmp_path / "s")
        # 4 stale < the floor: the log is left alone.
        assert reloaded.stale_lines == 4
        assert len(log_lines(tmp_path / "s")) == 5

    def test_auto_compact_false_preserves_history(self, tmp_path):
        store = ResultStore(tmp_path / "s", auto_compact=False)
        for stamp in range(AUTO_COMPACT_MIN_STALE + 2):
            store.put(record("flaky", stamp))
        reloaded = ResultStore(tmp_path / "s", auto_compact=False)
        assert reloaded.stale_lines == AUTO_COMPACT_MIN_STALE + 1
