"""Failure-as-data vocabulary: TrialFailure, classification, retry."""

import json

import pytest

from repro.campaign import (
    RetryPolicy,
    TrialFailure,
    classify_exception,
    failure_record,
    record_is_quarantined,
    record_outcome,
)
from repro.campaign.failures import crash_failure, normalize_retry
from repro.campaign.trial import Trial
from repro.core.errors import (
    ConfigurationError,
    TransientTrialError,
    WallClockTimeout,
)


def _raise_and_catch(exc):
    try:
        raise exc
    except type(exc) as caught:
        return caught


class TestClassification:
    def test_wall_clock_timeout_maps_to_timeout_outcome(self):
        failure = classify_exception(
            _raise_and_catch(WallClockTimeout("budget blown"))
        )
        assert failure.outcome == "timeout"
        assert failure.error_type == "WallClockTimeout"
        assert "budget blown" in failure.message

    def test_ordinary_exception_is_a_deterministic_error(self):
        failure = classify_exception(_raise_and_catch(RuntimeError("boom")))
        assert failure.outcome == "error"
        assert not failure.transient

    def test_transient_errors_are_flagged(self):
        for exc in (TransientTrialError("x"), OSError("y"), MemoryError()):
            assert classify_exception(_raise_and_catch(exc)).transient

    def test_traceback_digest_is_short_and_stable(self):
        a = classify_exception(_raise_and_catch(ValueError("v")))
        b = classify_exception(_raise_and_catch(ValueError("v")))
        assert len(a.traceback_digest) == 16
        # Same raise site, same type -> same fingerprint.
        assert (
            a.traceback_digest == b.traceback_digest
        )

    def test_crash_failure_shape(self):
        failure = crash_failure(attempts=2)
        assert failure.outcome == "crashed"
        assert failure.error_type == ""
        assert failure.transient
        assert failure.attempts == 2


class TestTrialFailureDocument:
    def test_roundtrip(self):
        failure = TrialFailure(
            outcome="error", error_type="ValueError", message="m",
            traceback_digest="abcd", attempts=3, quarantined=True,
            transient=True,
        )
        assert TrialFailure.from_dict(failure.to_dict()) == failure
        # And through actual JSON bytes.
        assert TrialFailure.from_dict(
            json.loads(json.dumps(failure.to_dict()))
        ) == failure

    def test_invalid_outcome_rejected(self):
        with pytest.raises(ConfigurationError, match="outcome"):
            TrialFailure(outcome="ok")
        with pytest.raises(ConfigurationError, match="outcome"):
            TrialFailure(outcome="exploded")

    def test_unknown_key_strict_vs_lenient(self):
        doc = TrialFailure(outcome="error").to_dict()
        doc["from_the_future"] = 1
        with pytest.raises(ConfigurationError, match="from_the_future"):
            TrialFailure.from_dict(doc)
        assert TrialFailure.from_dict(doc, lenient=True).outcome == "error"

    def test_summary_mentions_quarantine_and_attempts(self):
        text = TrialFailure(
            outcome="timeout", error_type="WallClockTimeout",
            attempts=2, quarantined=True,
        ).summary()
        assert "quarantined" in text
        assert "2 attempt(s)" in text


class TestFailureRecords:
    TRIAL = Trial(
        index=0, params={"p": 1}, spec_doc={"name": "s"},
        workload_doc={"kind": "one_shot"}, backend="edge",
    )

    def test_failure_record_envelope(self):
        failure = classify_exception(_raise_and_catch(RuntimeError("boom")))
        record = failure_record(self.TRIAL, failure)
        assert record["key"] == self.TRIAL.key
        assert record["params"] == {"p": 1}
        assert record["outcome"] == "error"
        assert record["failure"]["error_type"] == "RuntimeError"
        assert "report" not in record

    def test_record_outcome_defaults_legacy_records_to_ok(self):
        assert record_outcome({"key": "k", "report": {}}) == "ok"
        assert record_outcome({"key": "k", "outcome": "timeout"}) == "timeout"

    def test_record_is_quarantined(self):
        assert not record_is_quarantined({"key": "k", "report": {}})
        assert not record_is_quarantined(
            {"outcome": "error", "failure": {"quarantined": False}}
        )
        assert record_is_quarantined(
            {"outcome": "error", "failure": {"quarantined": True}}
        )


class TestRetryPolicy:
    def test_deterministic_errors_never_retry(self):
        policy = RetryPolicy(max_attempts=5)
        failure = classify_exception(_raise_and_catch(RuntimeError("x")))
        assert not policy.should_retry(failure)

    def test_transient_retries_until_budget(self):
        policy = RetryPolicy(max_attempts=3)
        transient = classify_exception(
            _raise_and_catch(TransientTrialError("x")), attempts=1
        )
        assert policy.should_retry(transient)
        exhausted = classify_exception(
            _raise_and_catch(TransientTrialError("x")), attempts=3
        )
        assert not policy.should_retry(exhausted)

    def test_timeouts_not_retried_by_default(self):
        timeout = classify_exception(
            _raise_and_catch(WallClockTimeout("x"))
        )
        assert not RetryPolicy().should_retry(timeout)
        assert RetryPolicy(retry_timeout=True).should_retry(timeout)

    def test_crashes_retried_by_default(self):
        assert RetryPolicy().should_retry(crash_failure(attempts=1))
        assert not RetryPolicy(retry_crashed=False).should_retry(
            crash_failure(attempts=1)
        )

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.3)
        assert policy.delay_s(3) == pytest.approx(0.9)

    def test_finalize_quarantines_exhausted_retryables_only(self):
        policy = RetryPolicy(max_attempts=2)
        poison = crash_failure(attempts=2)
        assert policy.finalize(poison).quarantined
        deterministic = classify_exception(
            _raise_and_catch(RuntimeError("x")), attempts=1
        )
        assert not policy.finalize(deterministic).quarantined

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_roundtrip_and_normalize(self):
        policy = RetryPolicy(max_attempts=7, retry_timeout=True)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert normalize_retry(policy) is policy
        assert normalize_retry(policy.to_dict()) == policy
        assert normalize_retry(None) is None
        with pytest.raises(ConfigurationError):
            normalize_retry("aggressive")
