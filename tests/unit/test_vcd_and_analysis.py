"""Unit tests for VCD export and the analysis rendering helpers."""

import os

import pytest

from repro.analysis import Series, ascii_chart, format_table, render_check
from repro.sim.scheduler import NS, Simulator
from repro.sim.signals import Net
from repro.sim.tracer import Tracer


class TestVcdExport:
    def _trace_some_activity(self):
        sim = Simulator()
        clk = Net(sim, "clk")
        data = Net(sim, "data")
        tracer = Tracer()
        tracer.watch_all([clk, data])
        for i in range(4):
            clk.set(i % 2, delay=10 * NS)
            sim.run()
        data.set(0, delay=5 * NS)
        sim.run()
        return tracer

    def test_vcd_structure(self, tmp_path):
        tracer = self._trace_some_activity()
        path = tmp_path / "wave.vcd"
        tracer.write_vcd(str(path))
        text = path.read_text()
        assert "$timescale 1ps $end" in text
        assert "$var wire 1" in text
        assert "$dumpvars" in text
        assert "#0" in text
        # One timestamped change per recorded transition.
        stamps = [l for l in text.splitlines() if l.startswith("#")]
        assert len(stamps) >= len(tracer.transitions)

    def test_vcd_distinct_codes(self, tmp_path):
        tracer = self._trace_some_activity()
        path = tmp_path / "wave.vcd"
        tracer.write_vcd(str(path))
        var_lines = [
            l for l in path.read_text().splitlines() if l.startswith("$var")
        ]
        codes = [l.split()[3] for l in var_lines]
        assert len(set(codes)) == len(codes) == 2

    def test_code_generator_unique_for_many_nets(self):
        codes = {Tracer._vcd_code(i) for i in range(500)}
        assert len(codes) == 500

    def test_system_trace_to_vcd(self, tmp_path):
        """End to end: a traced MBus system exports its rings."""
        from repro.core import Address, MBusSystem

        system = MBusSystem(trace=True)
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.send("m", Address.short(0x2, 5), b"\x42")
        path = tmp_path / "mbus.vcd"
        system.tracer.write_vcd(str(path))
        text = path.read_text()
        assert "m.dout.clk" in text
        assert "a.dout.data" in text


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"], [("a", 1), ("bbb", 22.5)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_float_formatting(self):
        table = format_table(["v"], [(0.000123,), (1234567.0,), (3.14159,)])
        assert "0.000123" in table
        assert "3.14" in table

    def test_render_check_marks(self):
        ok = render_check("x", 1, 1, True)
        bad = render_check("x", 1, 2, False)
        assert ok.startswith("[OK ]")
        assert bad.startswith("[DIFF]")


class TestAsciiChart:
    def test_renders_series_and_legend(self):
        chart = ascii_chart(
            [Series.of("a", [(0, 0), (1, 1)]), Series.of("b", [(0, 1), (1, 0)])],
            width=20,
            height=5,
        )
        assert "o a" in chart and "* b" in chart
        assert "+" in chart

    def test_log_scale(self):
        chart = ascii_chart(
            [Series.of("a", [(0, 1), (1, 1000)])], log_y=True, width=10, height=4
        )
        assert "1e" in chart

    def test_empty(self):
        assert ascii_chart([]) == "(no data)"

    def test_infinite_points_skipped(self):
        chart = ascii_chart(
            [Series.of("a", [(0, float("inf")), (1, 2.0), (2, 3.0)])],
            width=10,
            height=4,
        )
        assert "a" in chart
