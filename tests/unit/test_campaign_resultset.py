"""ResultSet queries: filter, group_by, aggregate, tables, JSONL."""

import json

import pytest

from repro.campaign import ResultSet, Trial, TrialResult, canonical_json
from repro.core.errors import ConfigurationError


def make_result(index, params, report, cached=False):
    trial = Trial(
        index=index,
        params=params,
        spec_doc={"name": "t"},
        workload_doc={"kind": "burst"},
    )
    return TrialResult(
        trial=trial,
        record={
            "schema_version": 1,
            "key": trial.key,
            "params": params,
            "backend": "fast",
            "report": report,
        },
        cached=cached,
    )


@pytest.fixture
def results():
    rows = [
        ({"clock_hz": 100e3, "n": 2}, {"n_ok": 2, "n_transactions": 2,
                                       "goodput_bps": 1000.0,
                                       "throughput_tps": 10.0}),
        ({"clock_hz": 100e3, "n": 4}, {"n_ok": 4, "n_transactions": 4,
                                       "goodput_bps": 2000.0,
                                       "throughput_tps": 20.0}),
        ({"clock_hz": 400e3, "n": 2}, {"n_ok": 2, "n_transactions": 2,
                                       "goodput_bps": 4000.0,
                                       "throughput_tps": 40.0}),
        ({"clock_hz": 400e3, "n": 4}, {"n_ok": 3, "n_transactions": 4,
                                       "goodput_bps": 8000.0,
                                       "throughput_tps": 80.0}),
    ]
    return ResultSet(
        [
            make_result(i, params, report, cached=(i == 3))
            for i, (params, report) in enumerate(rows)
        ],
        executor="serial",
        wall_s=0.5,
        name="unit",
    )


class TestMetricResolution:
    def test_bare_name_prefers_params(self, results):
        assert results[0].value("clock_hz") == 100e3
        assert results[0].value("n_ok") == 2

    def test_dotted_path_into_record(self, results):
        assert results[0].value("report.goodput_bps") == 1000.0
        assert results[0].value("params.n") == 2

    def test_callable_metric(self, results):
        assert results[0].value(lambda r: r.report["n_ok"] * 10) == 20

    def test_missing_metric_raises_with_default_escape(self, results):
        with pytest.raises(ConfigurationError, match="metric"):
            results[0].value("nonexistent")
        assert results[0].value("nonexistent", default=None) is None
        with pytest.raises(ConfigurationError, match="resolve"):
            results[0].value("report.missing.deeper")


class TestQueries:
    def test_filter_by_params(self, results):
        fast = results.filter(clock_hz=400e3)
        assert len(fast) == 2
        assert all(r.params["clock_hz"] == 400e3 for r in fast)

    def test_filter_drops_rows_missing_the_key(self, results):
        """Heterogeneous grids (chained sub-grids) leave some rows
        without a given axis; filtering on it must exclude them, not
        raise."""
        mixed = ResultSet(
            list(results)
            + [make_result(9, {"other_axis": 1},
                           {"n_ok": 1, "n_transactions": 1,
                            "goodput_bps": 1.0, "throughput_tps": 1.0})],
        )
        kept = mixed.filter(clock_hz=100e3)
        assert len(kept) == 2
        assert mixed.filter(other_axis=1)[0].params == {"other_axis": 1}
        assert len(mixed.filter(no_such_axis=1)) == 0

    def test_filter_by_predicate(self, results):
        lossy = results.filter(lambda r: r.report["n_ok"]
                               < r.report["n_transactions"])
        assert len(lossy) == 1
        assert lossy[0].params == {"clock_hz": 400e3, "n": 4}

    def test_group_by_single_key_uses_scalar_keys(self, results):
        groups = results.group_by("clock_hz")
        assert set(groups) == {100e3, 400e3}
        assert len(groups[100e3]) == 2

    def test_group_by_two_keys_uses_tuples(self, results):
        groups = results.group_by("clock_hz", "n")
        assert set(groups) == {
            (100e3, 2), (100e3, 4), (400e3, 2), (400e3, 4),
        }

    def test_aggregate_scalar(self, results):
        assert results.aggregate("report.goodput_bps", agg="sum") == 15000.0
        assert results.aggregate("report.n_ok", agg="count") == 4
        assert results.aggregate("report.n_ok", agg=max) == 4

    def test_aggregate_grouped(self, results):
        by_clock = results.aggregate(
            "report.throughput_tps", agg="mean", by=("clock_hz",)
        )
        assert by_clock == {100e3: 15.0, 400e3: 60.0}

    def test_unknown_aggregation_rejected(self, results):
        with pytest.raises(ConfigurationError, match="agg"):
            results.aggregate("report.n_ok", agg="mode-ish")

    def test_series(self, results):
        series = results.filter(n=2).series("clock_hz", "report.goodput_bps")
        assert series == [(100e3, 1000.0), (400e3, 4000.0)]

    def test_slice_stays_a_resultset(self, results):
        head = results[:2]
        assert isinstance(head, ResultSet)
        assert len(head) == 2


class TestProvenanceAndOutput:
    def test_cache_accounting(self, results):
        assert results.executed == 3
        assert results.cached == 1
        assert results.cache_hit_rate == 0.25
        assert "unit" in results.summary()
        assert "25%" in results.summary()

    def test_to_table_renders_params_and_metrics(self, results):
        table = results.to_table()
        assert "clock_hz" in table
        assert "cached" in table
        assert "2/2" in table and "3/4" in table

    def test_to_table_custom_columns(self, results):
        table = results.to_table(columns=[
            ("clock", "clock_hz"),
            ("bps", "report.goodput_bps"),
        ])
        assert "clock" in table and "bps" in table
        assert "8,000" in table

    def test_to_jsonl_is_canonical(self, results, tmp_path):
        path = tmp_path / "out.jsonl"
        assert results.to_jsonl(path) == 4
        lines = path.read_text().splitlines()
        assert lines == [canonical_json(r.record) for r in results]
        assert all(json.loads(line)["backend"] == "fast" for line in lines)
