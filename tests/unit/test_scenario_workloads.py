"""Unit tests for workload primitives (repro.scenario.workload)."""

import json

import pytest

from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.scenario import (
    Broadcast,
    Burst,
    Combined,
    Interrupt,
    InterruptEvent,
    NodeSpec,
    OneShot,
    Periodic,
    PostEvent,
    RandomTraffic,
    SystemSpec,
    workload_from_dict,
)

SPEC = SystemSpec(
    name="unit",
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)


class TestCompilation:
    def test_one_shot(self):
        workload = OneShot("a", Address.short(0x3, 5), b"\x01", at_s=0.5)
        events = workload.compile(SPEC)
        assert events == (
            PostEvent(0.5, "a", Address.short(0x3, 5), b"\x01", False),
        )

    def test_burst_back_to_back_and_spaced(self):
        burst = Burst("m", Address.short(0x2), b"\xAA", count=3)
        assert [e.at_s for e in burst.compile(SPEC)] == [0.0, 0.0, 0.0]
        spaced = Burst("m", Address.short(0x2), b"\xAA", count=3, gap_s=0.1)
        assert [e.at_s for e in spaced.compile(SPEC)] == pytest.approx(
            [0.0, 0.1, 0.2]
        )

    def test_periodic_schedule(self):
        workload = Periodic(
            "m", Address.short(0x2), b"", period_s=15.0, count=4, start_s=1.0
        )
        assert [e.at_s for e in workload.compile(SPEC)] == pytest.approx(
            [1.0, 16.0, 31.0, 46.0]
        )

    def test_broadcast_targets_channel(self):
        events = Broadcast("m", channel=2, payload=b"\x01").compile(SPEC)
        assert events[0].dest == Address.broadcast(2)

    def test_broadcast_can_carry_priority(self):
        events = Broadcast("m", channel=0, priority=True).compile(SPEC)
        assert events[0].priority

    def test_interrupt_event(self):
        events = Interrupt("b", at_s=0.25).compile(SPEC)
        assert events == (InterruptEvent(0.25, "b"),)

    def test_composition_merges_and_sorts(self):
        workload = (
            OneShot("a", Address.short(0x3), b"\x02", at_s=0.2)
            + Interrupt("b", at_s=0.1)
            + OneShot("m", Address.short(0x2), b"\x03", at_s=0.3)
        )
        assert isinstance(workload, Combined)
        assert len(workload.parts) == 3
        assert [e.at_s for e in workload.compile(SPEC)] == pytest.approx(
            [0.1, 0.2, 0.3]
        )

    def test_compile_is_deterministic_and_spec_independent_backends(self):
        workload = RandomTraffic(seed=7, count=20)
        assert workload.compile(SPEC) == workload.compile(SPEC)


class TestRandomTraffic:
    def test_seed_changes_schedule(self):
        a = RandomTraffic(seed=1, count=10).compile(SPEC)
        b = RandomTraffic(seed=2, count=10).compile(SPEC)
        assert a != b

    def test_targets_are_real_nodes_and_never_self(self):
        prefix_to_name = {
            node.short_prefix: node.name for node in SPEC.nodes
        }
        for event in RandomTraffic(seed=3, count=50).compile(SPEC):
            assert event.source in SPEC.node_names
            assert prefix_to_name[event.dest.short_prefix] != event.source

    def test_payload_bounds_respected(self):
        workload = RandomTraffic(seed=4, count=50, min_bytes=2, max_bytes=4)
        for event in workload.compile(SPEC):
            assert 2 <= len(event.payload) <= 4

    def test_sources_filter(self):
        workload = RandomTraffic(seed=5, count=25, sources=("a",))
        assert all(e.source == "a" for e in workload.compile(SPEC))

    def test_needs_two_addressable_nodes(self):
        tiny = SystemSpec(nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("x", full_prefix=0x12345),
        ))
        with pytest.raises(ConfigurationError):
            RandomTraffic(seed=0, count=1).compile(tiny)


class TestSerialisation:
    @pytest.mark.parametrize("workload", [
        OneShot("a", Address.short(0x3, 5), b"\x01\x02", at_s=0.5,
                priority=True),
        Burst("m", Address.short(0x2), b"\xAA" * 8, count=6, gap_s=0.01),
        Periodic("m", Address.full(0x4FFC2, 3), b"\x00", period_s=15.0,
                 count=4),
        RandomTraffic(seed=9, count=12, mean_gap_s=0.05, sources=("a", "b"),
                      priority_fraction=0.25),
        Broadcast("m", channel=1, payload=b"\xFE", priority=True),
        Interrupt("b", at_s=2.0),
        OneShot("a", Address.short(0x3), b"\x01") + Interrupt("b"),
    ])
    def test_json_round_trip(self, workload):
        document = json.loads(json.dumps(workload.to_dict()))
        rebuilt = workload_from_dict(document)
        assert rebuilt == workload
        assert rebuilt.compile(SPEC) == workload.compile(SPEC)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            workload_from_dict({"kind": "mystery"})
