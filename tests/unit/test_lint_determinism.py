"""Determinism pass: ambient entropy, wall clocks, env, set order."""

import textwrap

from repro.lint import run_lint


def lint(tmp_path, files, select=("determinism",)):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, select=list(select))


def messages(findings):
    return [f.message for f in findings]


def test_global_rng_flagged(tmp_path):
    findings = lint(tmp_path, {
        "m.py": (
            "import random\n"
            "x = random.random()\n"
            "y = random.randint(0, 7)\n"
        ),
    })
    assert len(findings) == 2
    assert "process-global RNG" in findings[0].message


def test_seeded_rng_clean(tmp_path):
    findings = lint(tmp_path, {
        "m.py": (
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
        ),
    })
    assert findings == []


def test_from_random_import_flagged(tmp_path):
    findings = lint(tmp_path, {
        "m.py": "from random import randint, shuffle\n",
    })
    assert len(findings) == 1
    assert "randint" in findings[0].message
    assert "shuffle" in findings[0].message


def test_absolute_clock_flagged_even_in_wall_module(tmp_path):
    findings = lint(tmp_path, {
        "campaign/executors.py": (
            "import time\n"
            "stamp = time.time()\n"
        ),
    })
    assert len(findings) == 1
    assert "absolute wall clock" in findings[0].message


def test_relative_clock_allowed_in_wall_module_only(tmp_path):
    clean = lint(tmp_path, {
        "campaign/executors.py": (
            "import time\n"
            "t0 = time.perf_counter()\n"
        ),
    })
    assert clean == []
    flagged = lint(tmp_path / "other", {
        "core/bus.py": (
            "import time\n"
            "t0 = time.perf_counter()\n"
        ),
    })
    assert len(flagged) == 1
    assert "whitelist" in flagged[0].message


def test_relative_clock_allowed_in_obs_wallclock(tmp_path):
    clean = lint(tmp_path, {
        "obs/wallclock.py": (
            "import time\n"
            "wall_now = time.perf_counter\n"
            "t0 = time.perf_counter()\n"
        ),
    })
    assert clean == []
    flagged = lint(tmp_path / "other", {
        "obs/tracer.py": (
            "import time\n"
            "t0 = time.perf_counter()\n"
        ),
    })
    assert len(flagged) == 1
    assert "whitelist" in flagged[0].message


def test_datetime_now_flagged(tmp_path):
    findings = lint(tmp_path, {
        "m.py": (
            "import datetime\n"
            "stamp = datetime.datetime.now()\n"
        ),
    })
    assert len(findings) == 1


def test_environ_allowed_in_env_module_only(tmp_path):
    clean = lint(tmp_path, {
        "batch/accel.py": (
            "import os\n"
            "gate = os.environ.get('REPRO_ACCEL', '')\n"
        ),
    })
    assert clean == []
    flagged = lint(tmp_path / "other", {
        "core/node.py": (
            "import os\n"
            "gate = os.environ.get('REPRO_ACCEL', '')\n"
        ),
    })
    assert len(flagged) == 1
    assert "host" in flagged[0].message
    getenv = lint(tmp_path / "third", {
        "core/node.py": (
            "import os\n"
            "gate = os.getenv('REPRO_ACCEL')\n"
        ),
    })
    assert len(getenv) == 1


def test_set_iteration_in_serialization_file_flagged(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Report:\n"
            "    def to_dict(self):\n"
            "        return {'chans': [c for c in {1, 2, 3}]}\n"
        ),
    })
    assert len(findings) == 1
    assert "hash-order" in findings[0].message


def test_set_iteration_outside_serialization_file_clean(tmp_path):
    findings = lint(tmp_path, {
        "m.py": (
            "def walk():\n"
            "    return [c for c in {1, 2, 3}]\n"
        ),
    })
    assert findings == []


def test_sorted_set_in_serialization_file_clean(tmp_path):
    findings = lint(tmp_path, {
        "doc.py": (
            "class Report:\n"
            "    def to_dict(self):\n"
            "        return {'chans': sorted({1, 2, 3})}\n"
        ),
    })
    assert findings == []
