"""Unit tests for the Table 2 area model and the Section 6.6 bitbang."""

import pytest

from repro.bitbang import (
    analyze_i2c_bitbang,
    analyze_mbus_bitbang,
    i2c_bitbang_isr,
    max_bus_clock_hz,
    mbus_edge_isr,
)
from repro.bitbang.mcu import Msp430Costs, Program, isr_wrap
from repro.synthesis import (
    MBUS_MODULES,
    MBUS_TOTAL,
    OTHER_BUSES,
    fit_area_library,
    mbus_total_area_um2,
)
from repro.synthesis.area_model import (
    integration_overhead_um2,
    mbus_component_sum_um2,
    mbus_required_only_area_um2,
    table2_rows,
)


class TestTable2Database:
    def test_bus_controller_row(self):
        bc = MBUS_MODULES["bus_controller"]
        assert (bc.verilog_sloc, bc.gates, bc.flip_flops) == (947, 1314, 207)
        assert bc.area_um2 == 27_376.0

    def test_total_row(self):
        assert MBUS_TOTAL.gates == 1367
        assert mbus_total_area_um2() == 37_200.0

    def test_integration_overhead_positive_and_small(self):
        """Table 2 footnote: total includes a small integration area."""
        overhead = integration_overhead_um2()
        assert 0 < overhead < 0.1 * mbus_total_area_um2()

    def test_non_power_gated_designs_need_only_bus_controller(self):
        assert mbus_required_only_area_um2() == 27_376.0
        assert mbus_required_only_area_um2() < mbus_component_sum_um2()

    def test_mbus_larger_than_i2c_smaller_story(self):
        """MBus incurs a modest area increase over the I2C master but
        is comparable to the SPI master."""
        assert mbus_total_area_um2() > OTHER_BUSES["i2c_master"].area_um2
        assert mbus_total_area_um2() == pytest.approx(
            OTHER_BUSES["spi_master"].area_um2, rel=0.05
        )

    def test_wire_controller_is_tiny(self):
        """7 gates, 0 flops: the always-on cost of forwarding."""
        wc = MBUS_MODULES["wire_controller"]
        assert wc.gates == 7 and wc.flip_flops == 0
        assert wc.area_um2 < 1_000


class TestAreaFit:
    def test_fit_produces_positive_coefficients(self):
        lib = fit_area_library()
        assert lib.um2_per_gate > 0
        assert lib.um2_per_flip_flop >= 0

    def test_fit_explains_most_designs_within_half(self):
        lib = fit_area_library()
        for module in list(MBUS_MODULES.values()) + list(OTHER_BUSES.values()):
            if module.gates < 50:
                continue   # tiny modules are dominated by routing
            assert abs(module.area_error_fraction(lib)) < 0.5

    def test_table2_rows_shape(self):
        rows = table2_rows()
        assert len(rows) == 7
        assert all(len(row) == 6 for row in rows)


class TestBitbangPrograms:
    def test_mbus_worst_path_20_instructions(self):
        """Section 6.6: 'our worst case path is 20 instructions'."""
        assert mbus_edge_isr().worst_case_instructions() == 20

    def test_mbus_worst_path_65_cycles(self):
        """'(65 cycles including interrupt entry and exit)'."""
        assert mbus_edge_isr().worst_case_cycles() == 65

    def test_i2c_comparable_21_instructions(self):
        """Wikipedia's I2C bitbang: longest path of 21 instructions."""
        assert i2c_bitbang_isr().worst_case_instructions() == 21

    def test_supported_clock_120khz(self):
        """8 MHz MSP430 -> up to a 120 kHz MBus clock."""
        analysis = analyze_mbus_bitbang()
        assert analysis.supported_bus_clock_hz == 120_000
        assert analysis.max_bus_clock_hz == pytest.approx(8e6 / 65)

    def test_response_time(self):
        analysis = analyze_mbus_bitbang()
        assert analysis.response_time_us == pytest.approx(65 / 8.0, rel=1e-6)

    def test_max_bus_clock_helper(self):
        assert max_bus_clock_hz() == pytest.approx(8e6 / 65)

    def test_i2c_analysis_runs(self):
        analysis = analyze_i2c_bitbang()
        assert analysis.worst_path_instructions == 21
        assert analysis.worst_path_cycles > 0

    def test_flatten_worst_path_matches_counts(self):
        isr = mbus_edge_isr()
        path = isr.flatten_worst_path()
        assert sum(i.cycles for i in path) == isr.worst_case_cycles()
        assert sum(1 for i in path if not i.hardware) == 20


class TestMcuModel:
    def test_branch_takes_worst_alternative(self):
        costs = Msp430Costs()
        short = Program("short").add("NOP", 1)
        long = Program("long").add("A", 3).add("B", 3)
        program = Program("p").fork(short, long)
        assert program.worst_case_cycles() == 6
        assert program.worst_case_instructions() == 2

    def test_isr_wrap_adds_entry_and_reti(self):
        costs = Msp430Costs()
        body = Program("body").add("NOP", 1)
        isr = isr_wrap(costs, body)
        assert isr.worst_case_cycles() == costs.interrupt_entry + 1 + costs.reti
        # Entry is hardware: 2 countable instructions (NOP + RETI).
        assert isr.worst_case_instructions() == 2

    def test_zero_cycle_instruction_rejected(self):
        with pytest.raises(ValueError):
            Program("p").add("BAD", 0)
