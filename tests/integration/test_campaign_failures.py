"""Failure-as-data campaign execution: the PR's acceptance drill.

A campaign whose trials raise, hang past their wall-clock budget and
kill their worker process must complete end to end, recording a
structured failure for exactly those trials — never aborting, never
hanging, never losing the healthy trials.
"""

import pytest

from repro.campaign import (
    Campaign,
    ResultStore,
    RetryPolicy,
)
from repro.campaign.chaos import Chaos
from repro.scenario import NodeSpec, SystemSpec

DRILL_SPEC = SystemSpec(
    name="chaos-drill",
    clock_hz=400_000.0,
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
    ),
)


def chaos_campaign(behaviors, name="drill", **kwargs):
    return Campaign(
        spec=DRILL_SPEC,
        workload=lambda p: Chaos(behavior=p["behavior"], **kwargs),
        grid={"behavior": list(behaviors)},
        backend="edge",
        name=name,
    )


class TestSerialFailures:
    def test_raising_trial_is_recorded_not_raised(self):
        results = chaos_campaign(["ok", "raise"]).run(executor="serial")
        assert len(results) == 2
        ok, bad = results[0], results[1]
        assert ok.ok and ok.outcome == "ok"
        assert bad.outcome == "error"
        assert bad.failure.error_type == "RuntimeError"
        assert "injected deterministic failure" in bad.failure.message
        assert not bad.failure.quarantined   # deterministic: no retry
        assert bad.failure.attempts == 1

    def test_transient_retries_then_quarantines(self):
        results = chaos_campaign(["transient"]).run(
            executor="serial",
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        failure = results[0].failure
        assert failure.attempts == 3
        assert failure.quarantined
        assert failure.transient

    def test_flaky_trial_recovers_on_retry(self, tmp_path):
        results = chaos_campaign(
            ["flaky"], token=str(tmp_path / "token")
        ).run(
            executor="serial",
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        assert results[0].ok
        assert (tmp_path / "token").exists()

    def test_no_retry_policy_means_one_attempt(self):
        results = chaos_campaign(["transient"]).run(
            executor="serial", retry=RetryPolicy(max_attempts=1)
        )
        failure = results[0].failure
        assert failure.attempts == 1
        assert failure.quarantined   # retryable class, budget of one

    def test_summary_and_table_surface_failures(self):
        results = chaos_campaign(["ok", "raise"]).run(executor="serial")
        assert "1 FAILED" in results.summary()
        table = results.to_table()
        assert "outcome" in table
        assert "error" in table
        assert results.failed == 1
        assert results.quarantined == 0
        assert [r.outcome for r in results.failures()] == ["error"]
        assert [r.outcome for r in results.oks()] == ["ok"]


class TestProcessExecutorDrill:
    """The full acceptance bar: raise + hang + crash, one campaign."""

    @pytest.fixture(scope="class")
    def drill(self, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("drill-store")
        campaign = chaos_campaign(
            ["ok", "raise", "hang", "crash"], name="acceptance"
        )
        results = campaign.run(
            executor="process",
            workers=4,
            store=str(store_dir),
            wall_timeout_s=1.0,
            retry=RetryPolicy(max_attempts=1),
        )
        return campaign, results, store_dir

    def test_campaign_completes_with_exact_outcomes(self, drill):
        _campaign, results, _store = drill
        assert len(results) == 4
        by_behavior = {
            r.params["behavior"]: r.outcome for r in results
        }
        assert by_behavior == {
            "ok": "ok",
            "raise": "error",
            "hang": "timeout",
            "crash": "crashed",
        }

    def test_failures_are_structured_records(self, drill):
        _campaign, results, _store = drill
        by_behavior = {r.params["behavior"]: r for r in results}
        hang = by_behavior["hang"].failure
        assert "wall-clock" in hang.message
        crash = by_behavior["crash"].failure
        assert crash.outcome == "crashed"
        assert by_behavior["raise"].failure.error_type == "RuntimeError"

    def test_resume_serves_failures_from_cache(self, drill):
        campaign, _results, store_dir = drill
        resumed = campaign.run(
            executor="serial", store=str(store_dir), wall_timeout_s=1.0
        )
        assert resumed.executed == 0
        assert resumed.cached == 4
        assert resumed.failed == 3

    def test_retry_failed_reexecutes_only_failures(self, drill):
        campaign, _results, store_dir = drill
        # Wall budget for the hang trial keeps the re-run bounded.
        resumed = campaign.run(
            executor="process",
            workers=4,
            store=str(store_dir),
            wall_timeout_s=1.0,
            retry=RetryPolicy(max_attempts=1),
            retry_failed=True,
            retry_quarantined=True,
        )
        assert resumed.cached == 1    # the ok trial
        assert resumed.executed == 3  # every failure re-ran

    def test_status_counts_failures(self, drill):
        campaign, _results, store_dir = drill
        status = campaign.status(str(store_dir))
        assert status.cached == 4
        assert status.failed == 3
        assert "3 FAILED" in status.summary()

    def test_store_records_have_outcome_fields(self, drill):
        campaign, _results, store_dir = drill
        store = ResultStore(str(store_dir))
        outcomes = sorted(
            record.get("outcome", "ok") for record in store.records()
        )
        assert outcomes == ["crashed", "error", "ok", "timeout"]


class TestWorkerCrashIsolation:
    def test_crash_kills_worker_not_campaign(self):
        # More healthy trials than workers, plus one poison trial:
        # the pool must replace the dead worker and finish everything.
        campaign = Campaign(
            spec=DRILL_SPEC,
            workload=lambda p: Chaos(behavior=p["behavior"]),
            grid={"behavior": ["ok"] * 5 + ["crash"] + ["ok"] * 5},
            backend="edge",
            name="crash-isolation",
        )
        results = campaign.run(
            executor="process",
            workers=2,
            dedupe=False,
            retry=RetryPolicy(max_attempts=1),
        )
        assert len(results) == 11
        assert results.failed == 1
        assert results.failures()[0].outcome == "crashed"
        assert all(r.ok for r in results.oks())
        assert len(results.oks()) == 10

    def test_crash_retry_can_distinguish_poison_from_bad_luck(self):
        # A deterministic crasher retried twice is quarantined.
        results = chaos_campaign(["crash"]).run(
            executor="process",
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        failure = results[0].failure
        assert failure.outcome == "crashed"
        assert failure.attempts == 2
        assert failure.quarantined
