"""Campaign server integration: the HTTP surface end to end.

Each test runs a real :class:`CampaignServer` on an ephemeral port
(in a background thread holding its own asyncio loop) and drives it
with the blocking :class:`ServeClient` — exactly the production
topology, minus the process boundary.  The restart test covers the
PR's acceptance bar: a server stopped mid-campaign checkpoints,
a restarted server resumes the journaled job at the trial boundary,
and the final streamed results are byte-identical to a local
``campaign run`` of the same document.
"""

import asyncio
import threading
import time

import pytest

from repro import obs
from repro.campaign import Campaign, Grid, ResultStore, canonical_json
from repro.core import Address
from repro.scenario import Burst, NodeSpec, SystemSpec
from repro.serve import (
    CampaignServer,
    Scheduler,
    ServeClient,
    ServeError,
    SubmitOptions,
)

SPEC = SystemSpec(
    name="serve-int-three-chip",
    clock_hz=400_000.0,
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)

BURST = Burst("m", Address.short(0x2, 5), bytes(range(4)), count=2)


def campaign_doc(name="serve-int", counts=(1, 2)):
    return Campaign(
        spec=SPEC,
        workload=BURST,
        grid=Grid.product(**{"workload.count": list(counts)}),
        name=name,
    ).to_dict()


class ServerThread:
    """A live server on an ephemeral port, in a background loop."""

    def __init__(self, root=None, **scheduler_kwargs):
        self.scheduler = Scheduler(root=root, **scheduler_kwargs)
        self.server = CampaignServer(self.scheduler, port=0)
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10), "server did not start"
        return self

    def __exit__(self, *_exc):
        self.stop()

    def stop(self):
        """Graceful shutdown: what the CLI's SIGTERM handler does —
        the scheduler checkpoints an in-flight campaign at its next
        trial boundary and journals it back to queued."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()

    def client(self):
        return ServeClient(port=self.server.port)


class TestHTTPSurface:
    def test_healthz_and_unknown_routes(self):
        with ServerThread() as live:
            client = live.client()
            health = client.healthz()
            assert health["ok"] is True
            assert health["jobs"] == {}
            with pytest.raises(ServeError) as exc:
                client._request("GET", "/v1/nope")
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                client._request("POST", "/v1/healthz", body={})
            assert exc.value.status == 405

    def test_submit_watch_results_and_listing(self):
        with ServerThread() as live:
            client = live.client()
            status, created = client.submit(
                campaign_doc(), client="alice"
            )
            assert created
            assert status.state in ("queued", "running")
            final = client.watch(status.job_id, poll_s=0.02, timeout_s=60)
            assert final.ok
            assert final.done == final.n_trials == 2
            records = list(client.results(status.job_id))
            assert len(records) == 2
            assert all("key" in record for record in records)
            listed = client.jobs()
            assert [j.job_id for j in listed] == [status.job_id]

    def test_submit_bad_document_is_400(self):
        with ServerThread() as live:
            client = live.client()
            with pytest.raises(ServeError) as exc:
                client.submit({"system": {"nodes": []}})
            assert exc.value.status == 400
            with pytest.raises(ServeError) as exc:
                client._request("POST", "/v1/campaigns", body={"x": 1})
            assert exc.value.status == 400

    def test_unknown_job_is_404(self):
        with ServerThread() as live:
            client = live.client()
            with pytest.raises(ServeError) as exc:
                client.status("no-such-job")
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                list(client.results("no-such-job"))
            assert exc.value.status == 404

    def test_rate_limit_answers_429_with_retry_after(self):
        with ServerThread(rate_per_s=0.1, burst=2.0) as live:
            client = live.client()
            client.submit(campaign_doc("a", counts=(1,)), client="alice")
            client.submit(campaign_doc("b", counts=(2,)), client="alice")
            with pytest.raises(ServeError) as exc:
                client.submit(
                    campaign_doc("c", counts=(3,)), client="alice"
                )
            assert exc.value.status == 429
            assert exc.value.retry_after_s > 0
            # Other clients are unaffected.
            status, _ = client.submit(
                campaign_doc("c", counts=(3,)), client="bob"
            )
            assert status.client == "bob"

    def test_full_queue_answers_503(self):
        with ServerThread(queue_depth=1) as live:
            client = live.client()
            # A long job occupies the worker; one more fills the queue.
            client.submit(
                campaign_doc("long", counts=tuple(range(1, 9))),
                client="alice",
            )
            client.submit(campaign_doc("queued", counts=(1,)))
            with pytest.raises(ServeError) as exc:
                client.submit(campaign_doc("rejected", counts=(2,)))
            assert exc.value.status == 503

    def test_metrics_route_reports_request_counters(self):
        with obs.observe(trace=False, profile=False):
            with ServerThread() as live:
                client = live.client()
                client.healthz()
                status, _ = client.submit(campaign_doc(), client="alice")
                client.watch(status.job_id, poll_s=0.02, timeout_s=60)
                doc = client.metrics()
        assert doc["enabled"] is True
        counters = doc["metrics"]["counters"]
        assert counters.get(
            "serve.requests{route=GET /v1/healthz,status=200}"
        ) == 1
        assert counters.get(
            "serve.requests{route=POST /v1/campaigns,status=202}"
        ) == 1
        assert counters.get("serve.submits{client=alice}") == 1
        gauges = doc["metrics"]["gauges"]
        assert "serve.queue_depth" in gauges


class TestStreaming:
    def test_results_stream_while_running(self):
        """The JSONL stream delivers records before the job is done:
        the first line must arrive while the job is still live."""
        with ServerThread() as live:
            client = live.client()
            status, _ = client.submit(
                campaign_doc("stream", counts=tuple(range(1, 7)))
            )
            seen_live = False
            records = []
            for record in client.results(status.job_id):
                records.append(record)
                if not client.status(status.job_id).terminal:
                    seen_live = True
            assert len(records) == 6
            assert seen_live, "stream only yielded after completion"


class TestDedupe:
    def test_resubmission_is_served_from_cache(self, tmp_path):
        doc = campaign_doc("dedupe", counts=(1, 2, 3))
        with ServerThread(root=tmp_path / "serve") as live:
            client = live.client()
            first, _ = client.submit(doc, client="alice")
            final = client.watch(first.job_id, poll_s=0.02, timeout_s=60)
            assert final.executed == 3
            second, created = client.submit(doc, client="alice")
            assert created   # terminal jobs re-run as new jobs...
            refinal = client.watch(
                second.job_id, poll_s=0.02, timeout_s=60
            )
            # ...but every trial is a dedupe hit on the shared store.
            assert refinal.cached == 3
            assert refinal.executed == 0
            # Another client's identical campaign also hits the store.
            other, _ = client.submit(doc, client="bob")
            otherfinal = client.watch(
                other.job_id, poll_s=0.02, timeout_s=60
            )
            assert otherfinal.cached == 3


class TestRestartSurvival:
    def test_stop_midway_restart_resumes_byte_identical(self, tmp_path):
        """The acceptance bar: stop a server mid-campaign, restart it
        on the same root, and the job resumes at the trial boundary
        and converges — with results byte-identical to a local
        ``campaign run`` of the same document."""
        # 8 trials of a few hundred transactions each (tens of ms per
        # trial): slow enough that the stop below lands mid-campaign,
        # fast enough for CI.
        counts = tuple(range(500, 580, 10))
        doc = campaign_doc("restart", counts=counts)
        root = tmp_path / "serve"

        with ServerThread(root=root) as live:
            client = live.client()
            status, _ = client.submit(doc, client="alice")
            job_id = status.job_id
            deadline = time.monotonic() + 60
            while client.status(job_id).done < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        # Context exit = graceful stop: checkpoint + journal.

        with ServerThread(root=root) as live:
            client = live.client()
            recovered = client.status(job_id)
            if recovered.terminal:
                # The first run won the race and finished before the
                # stop landed; the restart still recovered the job.
                final = recovered
            else:
                assert recovered.resumptions >= 1
                final = client.watch(job_id, poll_s=0.02, timeout_s=120)
            assert final.ok
            assert final.done == len(counts)
            served = [
                canonical_json(record)
                for record in client.results(job_id)
            ]
            if recovered.resumptions:
                # Resumed: the completed prefix came from the store.
                assert final.cached >= 1

        local = ResultStore(tmp_path / "local")
        results = Campaign.from_dict(doc, lenient=True).run(
            executor="serial", store=local
        )
        assert len(results) == len(counts)
        expected = [canonical_json(r.record) for r in results]
        assert served == expected

        # And the server's own store holds the same bytes.
        server_store = ResultStore(root / "results", readonly=True)
        assert sorted(server_store.entries()) == sorted(expected)
