"""Broadcast messages and run-time enumeration (Sections 4.6, 4.7)."""

import pytest

from repro.core import Address, MBusSystem
from repro.core.enumeration import (
    CHANNEL_ENUMERATION,
    Enumerator,
)


class TestBroadcast:
    def test_broadcast_reaches_all_subscribers(self, three_node_system):
        result = three_node_system.broadcast("cpu", 0, b"\xCA\xFE")
        assert result.ok
        assert set(result.rx_nodes) == {"sensor", "radio"}

    def test_channel_filtering(self):
        """Broadcast FU-IDs are channel identifiers: nodes listen only
        to channels they support (Section 4.6)."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, broadcast_channels=frozenset({0, 3}))
        system.add_node("b", short_prefix=0x3, broadcast_channels=frozenset({0}))
        result = system.broadcast("m", 3, b"\x01")
        assert result.rx_nodes == ["a"]

    def test_broadcast_wakes_gated_subscribers(self, gated_system):
        result = gated_system.broadcast("cpu", 0, b"\x01")
        assert set(result.rx_nodes) == {"sensor", "radio"}
        assert gated_system.node("sensor").layer_domain.wake_count == 1

    def test_broadcast_channel_count(self):
        """FU-ID width gives 16 channels."""
        for channel in (0, 15):
            address = Address.broadcast(channel)
            assert address.is_broadcast
            assert address.fu_id == channel

    def test_sender_does_not_receive_own_broadcast(self, three_node_system):
        three_node_system.broadcast("cpu", 0, b"\x01")
        assert all(
            m.payload != b"\x01" for m in three_node_system.node("cpu").inbox
        )


class TestEnumeration:
    def _unassigned_system(self):
        system = MBusSystem()
        system.add_mediator_node("ctl", short_prefix=0x1)
        # Two copies of the same chip design: identical full prefixes,
        # the case that *requires* enumeration (Section 4.7).
        system.add_node("mem0", full_prefix=0xBEEF0)
        system.add_node("mem1", full_prefix=0xBEEF0)
        system.add_node("snsr", full_prefix=0x12345)
        system.build()
        return system

    def test_all_nodes_enumerated(self):
        system = self._unassigned_system()
        assignments = Enumerator(system, "ctl").enumerate()
        assert set(assignments) == {"ctl", "mem0", "mem1", "snsr"}
        member_prefixes = [assignments[n] for n in ("mem0", "mem1", "snsr")]
        assert len(set(member_prefixes)) == 3

    def test_short_prefix_encodes_topological_priority(self):
        """Section 4.7: 'a node's short prefix encodes its topological
        priority' — ring order wins each round."""
        system = self._unassigned_system()
        assignments = Enumerator(system, "ctl").enumerate()
        assert assignments["mem0"] < assignments["mem1"] < assignments["snsr"]

    def test_enumerated_nodes_are_addressable(self):
        system = self._unassigned_system()
        assignments = Enumerator(system, "ctl").enumerate()
        result = system.send(
            "ctl", Address.short(assignments["mem1"], 5), b"\x42"
        )
        assert result.ok
        assert system.node("mem1").inbox[-1].payload == b"\x42"

    def test_static_prefixes_skip_enumeration(self):
        """Devices may self-assign static prefixes; if there are no
        conflicts enumeration may be skipped."""
        system = MBusSystem()
        system.add_mediator_node("ctl", short_prefix=0x1)
        system.add_node("a", short_prefix=0x7)
        system.build()
        enumerator = Enumerator(system, "ctl")
        assignments = enumerator.enumerate()
        assert assignments["a"] == 0x7

    def test_mixed_static_and_dynamic(self):
        system = MBusSystem()
        system.add_mediator_node("ctl", short_prefix=0x1)
        system.add_node("static", short_prefix=0x7)
        system.add_node("dynamic", full_prefix=0x33333)
        system.build()
        assignments = Enumerator(system, "ctl").enumerate()
        assert assignments["static"] == 0x7
        assert assignments["dynamic"] not in (0x1, 0x7)

    def test_enumeration_uses_broadcast_channel(self):
        system = self._unassigned_system()
        Enumerator(system, "ctl").enumerate()
        enum_messages = [
            t
            for t in system.transactions
            if t.message is not None
            and t.message.dest.is_broadcast
            and t.message.dest.fu_id == CHANNEL_ENUMERATION
        ]
        assert len(enum_messages) >= 4   # 3+ ENUMERATE rounds + replies
