"""Section 7 features: mutable/rotating priority, third-party
interjections, resumable messages, and the protocol monitor."""

import pytest

from repro.core import Address, ControlCode, MBusSystem
from repro.core.errors import ConfigurationError
from repro.core.fairness import RotatingPriority, fairness_index
from repro.core.monitor import ProtocolMonitor
from repro.core.resumable import (
    FU_RESUMABLE,
    ResumableReceiver,
    ResumableSender,
)


def _four_node_system():
    system = MBusSystem()
    system.add_mediator_node("m", short_prefix=0x1)
    for i in range(3):
        system.add_node(f"n{i}", short_prefix=0x2 + i)
    system.build()
    return system


class TestMutablePriority:
    def test_anchor_moves_topological_priority(self):
        """With the anchor at n1, n2 (first downstream) beats n0."""
        system = _four_node_system()
        system.set_arbitration_anchor("n1")
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n2", Address.short(0x1, 5), b"\x22")
        system.run_until_idle()
        assert [t.tx_node for t in system.transactions] == ["n2", "n0"]

    def test_default_scheme_restored(self):
        system = _four_node_system()
        system.set_arbitration_anchor("n1")
        system.set_arbitration_anchor(None)
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n2", Address.short(0x1, 5), b"\x22")
        system.run_until_idle()
        assert [t.tx_node for t in system.transactions] == ["n0", "n2"]

    def test_anchor_as_requester_wins(self):
        system = _four_node_system()
        system.set_arbitration_anchor("n2")
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n2", Address.short(0x1, 5), b"\x22")
        system.run_until_idle()
        assert system.transactions[0].tx_node == "n2"

    def test_anchor_handles_null_transactions(self):
        """The anchor inherits the mediator's no-winner duty."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3, power_gated=True)
        system.build()
        system.set_arbitration_anchor("a")
        fired = []
        system.node("b").on_interrupt = lambda n: fired.append(n.name)
        system.interrupt("b")
        system.run_until_idle()
        assert fired == ["b"]
        assert system.transactions[-1].control is ControlCode.GENERAL_ERROR

    def test_mediator_can_transmit_under_anchor(self):
        system = _four_node_system()
        system.set_arbitration_anchor("n1")
        result = system.send("m", Address.short(0x2, 5), b"\x01")
        assert result.ok and result.tx_node == "m"

    def test_gated_node_cannot_anchor(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("g", short_prefix=0x2, power_gated=True)
        system.build()
        with pytest.raises(ConfigurationError):
            system.set_arbitration_anchor("g")

    def test_delivery_unaffected_by_anchor(self):
        system = _four_node_system()
        system.set_arbitration_anchor("n1")
        result = system.send("n0", Address.short(0x4, 5), b"\xAB\xCD")
        assert result.ok
        assert system.node("n2").inbox[-1].payload == b"\xAB\xCD"


class TestRotatingPriority:
    def test_sustained_contention_is_fair(self):
        """Section 7: 'one fair scheme could automatically rotate
        priority on every message.'"""
        system = _four_node_system()
        policy = RotatingPriority(system, members=["n0", "n1", "n2"])
        for i in range(4):
            for name in ("n0", "n1", "n2"):
                system.post(name, Address.short(0x1, 5), bytes([i]))
        system.run_until_idle()
        assert fairness_index(policy.wins_by_node) > 0.95
        assert sum(policy.wins_by_node.values()) == 12
        # Under rotation the backlogged nodes interleave round-robin
        # instead of draining in topological order.
        winners = [t.tx_node for t in system.transactions]
        assert winners[:6] == ["n0", "n1", "n2", "n0", "n1", "n2"]

    def test_fixed_priority_is_unfair_under_contention(self):
        """Contrast: the default scheme starves by topology order."""
        system = _four_node_system()
        wins = {}
        system.on_transaction_complete.append(
            lambda r: wins.__setitem__(r.tx_node, wins.get(r.tx_node, 0) + 1)
        )
        # Keep both nodes permanently backlogged.
        for i in range(6):
            system.post("n0", Address.short(0x1, 5), bytes([i]))
            system.post("n2", Address.short(0x1, 5), bytes([0x80 + i]))
        system.run_until_idle()
        first_six = [t.tx_node for t in system.transactions[:6]]
        assert first_six == ["n0"] * 6   # n0 drains fully first

    def test_rotation_count_tracks_transactions(self):
        system = _four_node_system()
        policy = RotatingPriority(system, members=["n0", "n1"])
        for i in range(4):
            system.post("n0", Address.short(0x1, 5), bytes([i]))
        system.run_until_idle()
        assert policy.rotations == 4

    def test_detach_restores_default(self):
        system = _four_node_system()
        policy = RotatingPriority(system, members=["n0", "n1"])
        policy.detach()
        assert system.arbitration_anchor is None

    def test_jain_index_bounds(self):
        assert fairness_index({}) == 1.0
        assert fairness_index({"a": 5, "b": 5}) == 1.0
        assert fairness_index({"a": 10, "b": 0}) == pytest.approx(0.5)


class TestThirdPartyInterjection:
    def test_latency_sensitive_node_kills_long_message(self):
        """Section 4.9: a node with a latency-sensitive message may
        interrupt an active transaction."""
        system = _four_node_system()
        system.post("m", Address.short(0x2, 5), bytes(64))
        # Let the transfer get past the address phase, then interject
        # from a bystander.
        system.run_for(30 * 2.5e-6)     # ~30 cycles at 400 kHz
        system.node("n2").request_interjection("urgent")
        system.run_until_idle()
        result = system.transactions[-1]
        assert not result.ok
        assert result.control is ControlCode.RX_ABORT

    def test_minimum_progress_respected(self):
        """The kill lands only after 4 payload bytes have moved."""
        system = _four_node_system()
        system.post("m", Address.short(0x2, 5), bytes(range(64)))
        system.run_for(15 * 2.5e-6)
        system.node("n2").request_interjection("urgent")
        system.run_until_idle()
        delivered = system.node("n0").inbox[-1].payload
        assert len(delivered) >= 4
        assert delivered == bytes(range(len(delivered)))

    def test_interjection_outside_transfer_rejected(self):
        system = _four_node_system()
        with pytest.raises(Exception):
            system.node("n0").request_interjection("nothing to kill")


class TestResumableMessages:
    def _system(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("rx", short_prefix=0x2, rx_buffer_bytes=4096)
        system.add_node("bystander", short_prefix=0x3)
        system.build()
        return system

    def test_uninterrupted_stream_delivers(self):
        system = self._system()
        receiver = ResumableReceiver(system.node("rx"))
        sender = ResumableSender(system, "m")
        payload = bytes(i & 0xFF for i in range(700))
        stream = sender.send(0x2, payload, chunk_bytes=128)
        assert receiver.finish(stream) == payload

    def test_interrupted_stream_resumes(self):
        """Chunks killed mid-flight are resumed, and the receiver
        reassembles by offset (Section 7)."""
        system = self._system()
        receiver = ResumableReceiver(system.node("rx"))
        sender = ResumableSender(system, "m")
        payload = bytes((i * 7) & 0xFF for i in range(600))

        # Kill every long transaction once via a bystander interjection.
        killed = []

        def saboteur(result):
            if (
                result.ok
                and len(killed) < 2
                and result.message is not None
                and result.message.n_bytes > 64
            ):
                pass

        # Schedule interjections during the first two chunks.
        def arm_kill():
            try:
                system.node("bystander").request_interjection("urgent")
                killed.append(system.sim.now)
            except Exception:
                pass

        for delay_cycles in (60, 400):
            system.sim.schedule(
                int(delay_cycles * 2.5e-6 * 1e12) + 3_000_000, arm_kill
            )
        stream = sender.send(0x2, payload, chunk_bytes=256)
        assert receiver.finish(stream) == payload
        assert killed, "the saboteur never fired"

    def test_streams_are_independent(self):
        system = self._system()
        receiver = ResumableReceiver(system.node("rx"))
        sender = ResumableSender(system, "m")
        a = bytes(range(100))
        b = bytes(reversed(range(100)))
        sa = sender.send(0x2, a, chunk_bytes=64)
        sb = sender.send(0x2, b, chunk_bytes=64)
        assert receiver.finish(sa) == a
        assert receiver.finish(sb) == b

    def test_progress_tracking(self):
        system = self._system()
        receiver = ResumableReceiver(system.node("rx"))
        sender = ResumableSender(system, "m")
        stream = sender.send(0x2, bytes(100), chunk_bytes=64)
        assert receiver.progress(stream) == 100


class TestProtocolMonitor:
    def test_clean_after_mixed_traffic(self):
        system = _four_node_system()
        system.send("m", Address.short(0x2, 5), bytes(16))
        system.broadcast("m", 0, b"\x01")
        system.post("n0", Address.short(0x1, 5), b"\x01")
        system.post("n2", Address.short(0x1, 5), b"\x02", priority=True)
        system.run_until_idle()
        ProtocolMonitor(system).assert_clean()

    def test_clean_with_gated_nodes_and_interrupts(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, power_gated=True)
        system.add_node("b", short_prefix=0x3, power_gated=True)
        system.send("m", Address.short(0x2, 5), b"\x01")
        system.interrupt("b")
        system.run_until_idle()
        assert ProtocolMonitor(system).audit() == []

    def test_clean_under_anchor_and_aborts(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=4)
        system.add_node("anchor", short_prefix=0x3)
        system.build()
        system.set_arbitration_anchor("anchor")
        system.send("m", Address.short(0x2, 5), bytes(32))   # aborts
        system.send("m", Address.short(0x3, 5), b"\x01")
        system.run_until_idle()
        ProtocolMonitor(system).assert_clean()

    def test_monitor_detects_seeded_fault(self):
        """Sanity: the monitor is not vacuously green."""
        system = _four_node_system()
        system.send("m", Address.short(0x2, 5), b"\x01")
        # Seed a fault: leave a node's controller driving low.
        system.node("n2").data_ctl.drive(0)
        violations = ProtocolMonitor(system).audit()
        assert any(v.rule.startswith("R1") for v in violations)
