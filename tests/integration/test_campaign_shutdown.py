"""Graceful shutdown: SIGINT checkpoints; restart loses nothing.

The contract: an interrupted campaign run stops at the next trial
boundary, leaves every *completed* trial durably in the store, exits
130 through the CLI, and a restarted run executes exactly the missing
trials — no trial lost, none executed twice, cache accounting exact.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import RESULTS_FILENAME, load_campaign

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

N_TRIALS = 12

CAMPAIGN_DOC = {
    "name": "shutdown-drill",
    "system": {
        "name": "shutdown-drill",
        "clock_hz": 400000.0,
        "nodes": [
            {"name": "m", "short_prefix": 1, "is_mediator": True},
            {"name": "a", "short_prefix": 2},
        ],
    },
    "workload": {
        "kind": "burst",
        "source": "m",
        "dest": {"short_prefix": 2, "full_prefix": None, "fu_id": 5},
        "payload": "00010203",
        "count": 4,
        "gap_s": 0.0,
    },
    # Edge backend + distinct large counts: every trial key is unique
    # and each trial takes a few hundred ms, leaving a wide interrupt
    # window (the fast backend would race the SIGINT).
    "backend": "edge",
    "grid": {"workload.count": [200 + i for i in range(N_TRIALS)]},
}


def _store_lines(store_dir) -> list:
    path = Path(store_dir) / RESULTS_FILENAME
    if not path.exists():
        return []
    return [
        line for line in path.read_text().splitlines() if line.strip()
    ]


@pytest.fixture
def drill(tmp_path):
    doc_path = tmp_path / "campaign.json"
    doc_path.write_text(json.dumps(CAMPAIGN_DOC))
    return doc_path, tmp_path / "store"


def _launch(doc_path, store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            str(doc_path), "--store", str(store_dir), "--json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestSigintCheckpointing:
    def test_interrupt_checkpoint_resume(self, drill):
        doc_path, store_dir = drill
        process = _launch(doc_path, store_dir)
        # Wait until at least two trials are durably checkpointed,
        # then interrupt mid-campaign.
        deadline = time.time() + 60
        while time.time() < deadline and len(_store_lines(store_dir)) < 2:
            if process.poll() is not None:
                pytest.fail(
                    "campaign finished before it could be interrupted: "
                    + process.stderr.read()
                )
            time.sleep(0.02)
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 130, stderr

        # The interrupted run reported a partial, interrupted set.
        document = json.loads(stdout)
        assert document["interrupted"] is True
        checkpointed = len(_store_lines(store_dir))
        assert 2 <= checkpointed < N_TRIALS
        assert document["n_trials"] == checkpointed
        assert document["executed"] == checkpointed

        # Every checkpointed line is a complete, distinct record.
        keys = [json.loads(line)["key"] for line in _store_lines(store_dir)]
        assert len(set(keys)) == checkpointed

        # Restart: exactly the missing trials execute, nothing twice.
        campaign = load_campaign(str(doc_path))
        resumed = campaign.run(executor="serial", store=str(store_dir))
        assert not resumed.interrupted
        assert len(resumed) == N_TRIALS
        assert resumed.cached == checkpointed
        assert resumed.executed == N_TRIALS - checkpointed
        final_keys = [
            json.loads(line)["key"] for line in _store_lines(store_dir)
        ]
        assert len(final_keys) == N_TRIALS          # no duplicates
        assert set(keys) <= set(final_keys)          # nothing lost
        assert resumed.failed == 0

    def test_interrupted_resultset_summary_says_so(self, drill):
        doc_path, store_dir = drill
        process = _launch(doc_path, store_dir)
        deadline = time.time() + 60
        while time.time() < deadline and len(_store_lines(store_dir)) < 1:
            if process.poll() is not None:
                pytest.fail("campaign finished before interrupt")
            time.sleep(0.02)
        process.send_signal(signal.SIGTERM)   # TERM drains identically
        stdout, _stderr = process.communicate(timeout=60)
        assert process.returncode == 130
        document = json.loads(stdout)
        assert document["interrupted"] is True


class TestStopEvent:
    def test_external_stop_event_checkpoints_in_process(self, tmp_path):
        # The programmatic face of the same contract: a stop event
        # set after the second completion halts at the next boundary.
        import threading

        campaign = load_campaign(CAMPAIGN_DOC)
        stop = threading.Event()
        seen = []
        original_put = None

        from repro.campaign import ResultStore

        store = ResultStore(tmp_path / "store")
        original_put = store.put

        def counting_put(record):
            seen.append(record["key"])
            if len(seen) == 2:
                stop.set()
            return original_put(record)

        store.put = counting_put
        results = campaign.run(executor="serial", store=store, stop=stop)
        assert results.interrupted
        assert len(results) == 2
        assert results.planned == N_TRIALS
        assert "INTERRUPTED" in results.summary()

        # Resume without the stop event: the remaining ten run.
        resumed = campaign.run(executor="serial", store=store)
        assert resumed.cached == 2
        assert resumed.executed == N_TRIALS - 2
