"""Tier-3 batch backend integration: three-way equivalence and policy.

The acceptance bar for the compiled tier: ``backend="batch"`` must
produce byte-identical transaction signatures, delivery sets and wake
counts against both event-loop backends for every scenario shape in
``test_scenario_runner.SHAPES``, survive a 60-scenario fixed-seed
three-way fuzz with zero divergence, refuse the capabilities it does
not implement (setup hooks, fault injection, tracing) with clear
errors, and slot into :mod:`repro.campaign` unchanged.
"""

import pytest

from repro.batch import cache_stats, clear_cache, compile_system_cached
from repro.core import Address
from repro.core.errors import BusLockedError, ConfigurationError
from repro.scenario import Burst, NodeSpec, OneShot, SystemSpec, run

from tests.integration.test_scenario_runner import SHAPES


def run_matrix(spec, workload, **kwargs):
    return {
        backend: run(spec, workload, backend=backend, **kwargs)
        for backend in ("edge", "fast", "batch")
    }


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_identical_results_across_all_tiers(self, shape):
        spec, workload = SHAPES[shape]
        reports = run_matrix(spec, workload)
        edge = reports["edge"]
        assert edge.n_transactions > 0
        for backend in ("fast", "batch"):
            other = reports[backend]
            assert (
                edge.transaction_signatures()
                == other.transaction_signatures()
            ), backend
            assert edge.delivery_set() == other.delivery_set(), backend
            for node in spec.node_names:
                for counter in ("bus_wakeups", "layer_wakeups"):
                    assert (
                        edge.power[node][counter]
                        == other.power[node][counter]
                    ), (backend, node, counter)

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_batch_matches_fast_exactly(self, shape):
        """Beyond the cross-tier contract, batch replays the fast
        path's event loop perfectly: same wire totals, same simulated
        end time, same event count."""
        spec, workload = SHAPES[shape]
        fast = run(spec, workload, backend="fast")
        batch = run(spec, workload, backend="batch")
        assert batch.wire_activity == fast.wire_activity
        assert batch.sim_time_s == fast.sim_time_s
        assert batch.events_processed == fast.events_processed
        assert batch.power == fast.power

    def test_timeout_semantics_match_fast(self):
        spec, workload = SHAPES["burst"]
        # A timeout far too short to drain the burst must lock the
        # bus identically on both tiers.
        with pytest.raises(BusLockedError):
            run(spec, workload, backend="fast", timeout_s=1e-9)
        with pytest.raises(BusLockedError):
            run(spec, workload, backend="batch", timeout_s=1e-9)


class TestBatchReport:
    def test_report_shape(self):
        spec, workload = SHAPES["burst"]
        report = run(spec, workload, backend="batch")
        assert report.backend == "batch"
        # No live objects exist on the compiled tier.
        assert report.system is None
        assert report.faults is None
        assert report.reliability is None
        doc = report.to_dict()
        assert doc["backend"] == "batch"
        assert doc["wall_throughput_tps"] == report.wall_throughput_tps
        assert report.wall_throughput_tps > 0
        assert "txn/s wall" in report.summary()

    def test_wall_throughput_guard_on_zero_wall(self):
        spec, workload = SHAPES["one_shot"]
        report = run(spec, workload, backend="batch")
        report.wall_s = 0.0
        assert report.wall_throughput_tps == 0.0


class TestBatchPolicy:
    def test_setup_hooks_are_refused(self):
        spec, workload = SHAPES["one_shot"]
        with pytest.raises(ConfigurationError, match="setup"):
            run(
                spec, workload, backend="batch",
                setup=lambda system: None,
            )

    def test_faults_are_refused_even_empty(self):
        from repro.faults.primitives import normalize_faults

        spec, workload = SHAPES["one_shot"]
        with pytest.raises(ConfigurationError, match="batch"):
            run(
                spec, workload, backend="batch",
                faults=normalize_faults(()),
            )

    def test_trace_is_refused(self):
        spec, workload = SHAPES["one_shot"]
        with pytest.raises(ConfigurationError, match="trac"):
            run(spec, workload, backend="batch", trace=True)


class TestBatchCampaign:
    def test_campaign_over_batch_backend(self):
        from repro.campaign import Campaign

        spec, workload = SHAPES["burst"]
        clear_cache()
        results = Campaign(
            spec, workload, grid={"clock_hz": [100e3, 400e3]},
            backend="batch",
        ).run()
        assert [r.params["clock_hz"] for r in results] == [100e3, 400e3]
        assert all(r.report["backend"] == "batch" for r in results)
        # Wall-clock noise never enters the content-addressed record.
        assert all(
            "wall_s" not in r.report
            and "wall_throughput_tps" not in r.report
            for r in results
        )

    def test_campaign_matches_fast_records(self):
        from repro.campaign import Campaign

        spec, workload = SHAPES["seeded_random"]
        grid = {"clock_hz": [100e3, 400e3]}
        fast = Campaign(spec, workload, grid=grid, backend="fast").run()
        batch = Campaign(spec, workload, grid=grid, backend="batch").run()
        for f, b in zip(fast, batch):
            for field in (
                "transactions", "power", "wire_activity", "sim_time_s",
            ):
                assert f.report[field] == b.report[field], field

    def test_spec_compiles_once_per_campaign(self):
        from repro.campaign import Campaign

        spec, workload = SHAPES["burst"]
        clear_cache()
        Campaign(
            spec, workload,
            grid={"workload.count": [2, 3, 4]},
            backend="batch",
        ).run()
        stats = cache_stats()
        # One topology, three trials: one miss, the rest cache hits —
        # and the warm template cache carries across trials.
        assert stats["misses"] == 1
        assert stats["hits"] >= 2
        assert stats["templates"] > 0


class TestTemplateReuse:
    def test_repeated_rounds_share_templates(self):
        spec = SystemSpec(
            name="repeat",
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2, power_gated=True),
            ),
        )
        clear_cache()
        csys = compile_system_cached(spec)
        run(
            spec,
            Burst("m", Address.short(0x2, 5), b"\xAB", count=50),
            backend="batch",
        )
        # 50 identical transactions cannot need anywhere near 50
        # distinct round shapes.
        assert 0 < len(csys.template_list) < 10


class TestThreeWayFuzz:
    def test_sixty_scenarios_zero_divergence(self):
        from repro.diffcheck import fuzz

        report = fuzz(
            count=60,
            seed=1,
            faults_fraction=0.0,
            repro_dir=None,
            minimize=False,
            invariants=False,
            backends=("edge", "fast", "batch"),
        )
        assert report.n_scenarios == 60
        assert report.ok, report.summary()
        assert report.to_dict()["backends"] == ["edge", "fast", "batch"]


class TestOneShotStillWorks:
    def test_minimal_scenario(self):
        report = run(
            SystemSpec(
                name="pair",
                nodes=(
                    NodeSpec("m", short_prefix=0x1, is_mediator=True),
                    NodeSpec("a", short_prefix=0x2),
                ),
            ),
            OneShot("m", Address.short(0x2, 5), b"\x2A"),
            backend="batch",
        )
        assert report.n_ok == 1
        assert report.deliveries == [("a", b"\x2A")]
