"""Scenario runner integration: backend equivalence and reporting.

The PR's acceptance bar: one :class:`Workload` object must produce
identical :class:`TransactionResult` streams and delivery sets on
``backend="edge"`` and ``backend="fast"`` for (at least) five scenario
shapes — one-shot, burst, periodic, seeded-random, and
broadcast+interrupt — and ``SystemSpec.from_dict(spec.to_dict())``
must round-trip exactly.
"""

import json

import pytest

from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.scenario import (
    Broadcast,
    Burst,
    Interrupt,
    NodeSpec,
    OneShot,
    Periodic,
    RandomTraffic,
    SystemSpec,
    load_scenario,
    run,
    select_backend,
    sweep,
)

THREE_CHIP = SystemSpec(
    name="three-chip",
    nodes=(
        NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
        NodeSpec("sensor", short_prefix=0x2, power_gated=True),
        NodeSpec("radio", short_prefix=0x3, power_gated=True),
    ),
)

FIVE_CHIP = SystemSpec(
    name="five-chip",
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3, power_gated=True),
        NodeSpec("c", short_prefix=0x4),
        NodeSpec("d", short_prefix=0x5, power_gated=True),
    ),
)

#: The five acceptance scenario shapes (plus extras), as (spec,
#: workload) pairs.  Every entry runs unchanged on both backends.
SHAPES = {
    "one_shot": (
        THREE_CHIP,
        OneShot("cpu", Address.short(0x2, 5), b"\x12\x34\x56"),
    ),
    "burst": (
        THREE_CHIP,
        Burst("cpu", Address.short(0x3, 5), bytes(range(8)), count=6),
    ),
    "periodic": (
        THREE_CHIP,
        Periodic("cpu", Address.short(0x2, 5), b"\x01\x02\x03\x04",
                 period_s=0.05, count=4),
    ),
    "seeded_random": (
        FIVE_CHIP,
        RandomTraffic(seed=42, count=12, mean_gap_s=0.01,
                      priority_fraction=0.3),
    ),
    "broadcast_and_interrupt": (
        THREE_CHIP,
        Broadcast("cpu", channel=0, payload=b"\xAA", priority=True)
        + Interrupt("radio", at_s=0.02)
        + OneShot("radio", Address.short(0x1, 5), b"\x99", at_s=0.03),
    ),
    "contending_sources": (
        FIVE_CHIP,
        Burst("a", Address.short(0x4, 5), b"\x0A", count=3)
        + Burst("c", Address.short(0x2, 5), b"\x0C", count=3)
        + OneShot("m", Address.short(0x5, 5), b"\x0E", at_s=0.001),
    ),
}


def run_both(spec, workload):
    return (
        run(spec, workload, backend="edge"),
        run(spec, workload, backend="fast"),
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_identical_results_across_backends(self, shape):
        spec, workload = SHAPES[shape]
        edge, fast = run_both(spec, workload)
        assert edge.n_transactions > 0
        assert edge.transaction_signatures() == fast.transaction_signatures()
        assert edge.delivery_set() == fast.delivery_set()
        # Wake counts are part of the contract too.
        for node in spec.node_names:
            assert (
                edge.power[node]["bus_wakeups"]
                == fast.power[node]["bus_wakeups"]
            ), node
            assert (
                edge.power[node]["layer_wakeups"]
                == fast.power[node]["layer_wakeups"]
            ), node

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_spec_round_trips_exactly(self, shape):
        spec, _ = SHAPES[shape]
        assert SystemSpec.from_dict(spec.to_dict()) == spec
        assert (
            SystemSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            == spec
        )

    def test_derived_stats_agree_within_timing_slack(self):
        spec, workload = SHAPES["burst"]
        edge, fast = run_both(spec, workload)
        assert fast.throughput_tps == pytest.approx(
            edge.throughput_tps, rel=0.03
        )
        assert fast.goodput_bps == pytest.approx(edge.goodput_bps, rel=0.03)
        assert fast.energy_pj() == pytest.approx(edge.energy_pj())


class TestBackendSelection:
    def test_auto_prefers_fast_for_throughput(self):
        assert select_backend("auto") == "fast"

    def test_auto_with_trace_needs_edge(self):
        assert select_backend("auto", trace=True) == "edge"

    def test_explicit_fast_with_trace_is_an_error(self):
        with pytest.raises(ConfigurationError, match="trac"):
            select_backend("fast", trace=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            select_backend("warp")

    def test_run_reports_resolved_backend(self):
        spec, workload = SHAPES["one_shot"]
        assert run(spec, workload).backend == "fast"
        assert run(spec, workload, trace=True).backend == "edge"

    def test_traced_run_exposes_tracer(self):
        spec, workload = SHAPES["one_shot"]
        report = run(spec, workload, backend="auto", trace=True)
        assert report.system.tracer is not None
        assert len(report.system.tracer.transitions) > 0


class TestRunReport:
    def test_report_to_dict_is_json_serialisable(self):
        spec, workload = SHAPES["broadcast_and_interrupt"]
        report = run(spec, workload, backend="fast")
        document = json.loads(json.dumps(report.to_dict()))
        assert document["backend"] == "fast"
        assert document["n_transactions"] == report.n_transactions
        assert document["transactions"][0]["tx_node"] is not None

    def test_goodput_counts_delivered_payload_bits(self):
        spec, workload = SHAPES["burst"]
        report = run(spec, workload, backend="fast")
        assert report.delivered_payload_bits == 6 * 8 * 8
        assert report.goodput_bps == pytest.approx(
            report.delivered_payload_bits / report.sim_time_s
        )

    def test_summary_mentions_backend_and_counts(self):
        spec, workload = SHAPES["one_shot"]
        text = run(spec, workload, backend="edge").summary()
        assert "edge backend" in text
        assert "transactions" in text

    def test_setup_hook_runs_before_traffic(self):
        seen = []
        spec, workload = SHAPES["one_shot"]
        report = run(
            spec, workload, backend="fast",
            setup=lambda system: seen.append(system.mode),
        )
        assert seen == ["fast"]
        assert report.n_ok == 1


class TestCampaignGridRuns:
    def test_campaign_over_spec_field(self):
        from repro.campaign import Campaign

        spec, workload = SHAPES["burst"]
        results = Campaign(
            spec, workload, grid={"clock_hz": [100e3, 400e3]},
            backend="fast",
        ).run()
        assert [r.params["clock_hz"] for r in results] == [100e3, 400e3]
        slow, fast_clock = results
        assert (
            fast_clock.report["throughput_tps"]
            > 3 * slow.report["throughput_tps"]
        )

    def test_campaign_with_workload_factory(self):
        from repro.campaign import Campaign

        spec, _ = SHAPES["burst"]
        results = Campaign(
            spec,
            lambda params: Burst(
                "cpu", Address.short(0x2, 5),
                b"\x00" * params["payload_bytes"], count=3,
            ),
            grid={"payload_bytes": [2, 32]},
            backend="fast",
        ).run()
        assert (
            results[1].report["goodput_bps"] > results[0].report["goodput_bps"]
        )

    def test_unknown_grid_key_with_fixed_workload_is_an_error(self):
        from repro.campaign import Campaign

        spec, workload = SHAPES["burst"]
        with pytest.raises(ConfigurationError, match="factory"):
            Campaign(spec, workload, grid={"payload_bytes": [2, 4]}).trials()


class TestSweepDeprecationShim:
    def test_sweep_warns_and_matches_campaign(self):
        """Satellite: sweep() still works — as a serial campaign in
        disguise — but tells callers to move on."""
        from repro.campaign import Campaign

        spec, workload = SHAPES["burst"]
        grid = {"clock_hz": [100e3, 400e3]}
        with pytest.warns(DeprecationWarning, match="repro.campaign"):
            points = sweep(spec, workload, grid, backend="fast")
        results = Campaign(
            spec, workload, grid=grid, backend="fast"
        ).run(keep_reports=True)
        assert [p.params for p in points] == [dict(r.params) for r in results]
        for point, result in zip(points, results):
            # Live reports on both sides, identical streams.
            assert (
                point.report.transaction_signatures()
                == result.live.transaction_signatures()
            )
            assert point.report.delivery_set() == result.live.delivery_set()

    def test_sweep_still_supports_setup_hooks(self):
        seen = []
        spec, workload = SHAPES["one_shot"]
        with pytest.warns(DeprecationWarning):
            points = sweep(
                spec, workload, {"clock_hz": [100e3]}, backend="fast",
                setup=lambda system: seen.append(system.mode),
            )
        assert seen == ["fast"]
        assert points[0].report.n_ok == 1


class TestScenarioDocuments:
    def test_load_scenario_from_dict_and_file(self, tmp_path):
        spec, workload = SHAPES["burst"]
        document = {
            "system": spec.to_dict(),
            "workload": workload.to_dict(),
            "sweep": {"clock_hz": [100e3]},
        }
        loaded_spec, loaded_workload, grid = load_scenario(document)
        assert loaded_spec == spec
        assert loaded_workload == workload
        assert grid == {"clock_hz": [100e3]}

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(document))
        from_file = load_scenario(str(path))
        assert from_file[0] == spec
        assert from_file[1] == workload

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="system"):
            load_scenario({"workload": {}})
