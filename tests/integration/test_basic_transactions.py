"""Edge-accurate transactions: delivery, cycle counts, addressing."""

import pytest

from repro.core import Address, ControlCode, MBusSystem
from repro.core.errors import ConfigurationError


class TestDelivery:
    def test_payload_delivered_intact(self, three_node_system):
        payload = bytes(range(16))
        result = three_node_system.send("cpu", Address.short(0x3, 5), payload)
        assert result.ok
        assert three_node_system.node("radio").inbox[-1].payload == payload

    def test_member_to_member_without_cpu(self, three_node_system):
        """Any-to-any: sensor talks to radio directly (Section 6.3.1)."""
        result = three_node_system.send("sensor", Address.short(0x3, 5), b"\x42")
        assert result.ok
        assert result.tx_node == "sensor"
        assert result.rx_nodes == ["radio"]
        assert three_node_system.node("cpu").inbox == []

    def test_member_to_mediator(self, three_node_system):
        result = three_node_system.send("radio", Address.short(0x1, 5), b"\x99")
        assert result.ok
        assert three_node_system.node("cpu").inbox[-1].payload == b"\x99"

    def test_zero_byte_message(self, three_node_system):
        result = three_node_system.send("cpu", Address.short(0x2, 5), b"")
        assert result.ok
        assert three_node_system.node("sensor").inbox[-1].payload == b""

    def test_single_byte_values_roundtrip(self, three_node_system):
        for value in (0x00, 0xFF, 0xAA, 0x55, 0x01, 0x80):
            result = three_node_system.send(
                "cpu", Address.short(0x2, 5), bytes([value])
            )
            assert result.ok
            assert three_node_system.node("sensor").inbox[-1].payload == bytes(
                [value]
            )

    def test_long_message(self, three_node_system):
        payload = bytes(i & 0xFF for i in range(600))
        result = three_node_system.send("cpu", Address.short(0x3, 5), payload)
        assert result.ok
        assert three_node_system.node("radio").inbox[-1].payload == payload

    def test_sequential_messages_all_delivered(self, three_node_system):
        for i in range(5):
            three_node_system.post("cpu", Address.short(0x2, 5), bytes([i]))
        three_node_system.run_until_idle()
        payloads = [m.payload for m in three_node_system.node("sensor").inbox]
        assert payloads == [bytes([i]) for i in range(5)]

    def test_fu_id_carried(self, three_node_system):
        three_node_system.send("cpu", Address.short(0x2, 0xB), b"\x01")
        assert three_node_system.node("sensor").inbox[-1].dest.fu_id == 0xB


class TestCycleCounts:
    """Cross-validation of the edge simulator against Section 6.1."""

    @pytest.mark.parametrize("n_bytes", [0, 1, 2, 8, 13])
    def test_short_address_clock_cycles(self, n_bytes):
        """Mediator clock cycles before control: arbitration (3) +
        address (8) + data (8n); control adds its 3."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        result = system.send("m", Address.short(0x2, 5), bytes(n_bytes))
        assert result.clock_cycles == 3 + 8 + 8 * n_bytes
        assert result.control_cycles == 3

    @pytest.mark.parametrize("n_bytes", [0, 4])
    def test_full_address_clock_cycles(self, n_bytes):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, full_prefix=0x2B3C4)
        result = system.send("m", Address.full(0x2B3C4, 5), bytes(n_bytes))
        assert result.ok
        assert result.clock_cycles == 3 + 32 + 8 * n_bytes

    def test_analytic_model_consistency(self, three_node_system):
        """Edge sim total = analytic 19 + 8n minus the interjection
        allowance (5 cycles) that is wall-time, not clocked."""
        from repro.core.transaction import TransactionModel

        model = TransactionModel()
        result = three_node_system.send("cpu", Address.short(0x2, 5), bytes(8))
        clocked = result.clock_cycles + result.control_cycles
        assert clocked == model.total_cycles(8) - 5

    def test_duration_matches_clock(self):
        from repro.core.constants import MBusTiming

        system = MBusSystem(timing=MBusTiming(clock_hz=1_000_000))
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        result = system.send("m", Address.short(0x2, 5), bytes(4))
        # 43 data/arb cycles + interjection + 3 control at 1 MHz ~= 50 us.
        assert 40e-6 < result.duration_ps * 1e-12 < 80e-6


class TestFullAddressing:
    def test_full_and_short_interchangeable(self):
        """Section 4.7: chips may be addressed by either form."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, full_prefix=0x54321)
        r1 = system.send("m", Address.short(0x2, 5), b"\x01")
        r2 = system.send("m", Address.full(0x54321, 5), b"\x02")
        assert r1.ok and r2.ok
        assert [m.payload for m in system.node("a").inbox] == [b"\x01", b"\x02"]

    def test_wrong_full_prefix_naks(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, full_prefix=0x54321)
        result = system.send("m", Address.full(0x11111, 5), b"\x01")
        assert not result.ok
        assert result.control is ControlCode.EOM_NAK


class TestConfigurationValidation:
    def test_duplicate_short_prefix_rejected(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x2)
        with pytest.raises(ConfigurationError):
            system.build()

    def test_two_mediators_rejected(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        with pytest.raises(ConfigurationError):
            system.add_mediator_node("m2", short_prefix=0x2)

    def test_mediator_required(self):
        system = MBusSystem()
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        with pytest.raises(ConfigurationError):
            system.build()

    def test_reserved_prefix_rejected(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        with pytest.raises(Exception):
            system.add_node("a", short_prefix=0xF)
            system.build()

    def test_duplicate_names_rejected(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        with pytest.raises(ConfigurationError):
            system.add_node("m", short_prefix=0x2)

    def test_unknown_node_lookup(self, three_node_system):
        with pytest.raises(ConfigurationError):
            three_node_system.node("ghost")
