"""Shared fixtures for edge-accurate integration tests."""

import pytest

from repro.core import MBusSystem


@pytest.fixture
def three_node_system():
    """cpu (mediator) + sensor + radio, all always-on."""
    system = MBusSystem()
    system.add_mediator_node("cpu", short_prefix=0x1)
    system.add_node("sensor", short_prefix=0x2)
    system.add_node("radio", short_prefix=0x3)
    system.build()
    return system


@pytest.fixture
def gated_system():
    """cpu (mediator) + two power-gated members."""
    system = MBusSystem()
    system.add_mediator_node("cpu", short_prefix=0x1)
    system.add_node("sensor", short_prefix=0x2, power_gated=True)
    system.add_node("radio", short_prefix=0x3, power_gated=True)
    system.build()
    return system
