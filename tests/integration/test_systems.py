"""End-to-end tests of the two microbenchmark systems (Section 6.3)."""

import pytest

from repro.systems import (
    ImageTransferAnalysis,
    ImagerSystem,
    SenseAndSendAnalysis,
    TemperatureSystem,
)
from repro.systems.chips import CMD_FRAME_ROW, CMD_SAMPLE_REPLY


class TestSenseAndSendSimulation:
    def test_direct_round_bypasses_processor(self):
        system = TemperatureSystem(direct_to_radio=True)
        transactions = system.run_round()
        assert [t.tx_node for t in transactions] == ["cpu", "sensor"]
        assert transactions[1].rx_nodes == ["radio"]
        packet = system.radio_packets()[-1]
        assert packet[0] == CMD_SAMPLE_REPLY
        assert len(packet) == 8

    def test_relay_round_goes_through_processor(self):
        system = TemperatureSystem(direct_to_radio=False)
        transactions = system.run_round()
        tx_nodes = [t.tx_node for t in transactions]
        assert tx_nodes == ["cpu", "sensor", "cpu"]
        assert len(system.radio_packets()) == 1

    def test_sensor_sleeps_between_rounds(self):
        system = TemperatureSystem()
        system.run_round()
        sensor = system.system.node("sensor")
        assert not sensor.layer_domain.is_on
        assert not sensor.bus_domain.is_on

    def test_multiple_rounds_give_distinct_readings(self):
        system = TemperatureSystem()
        for _ in range(3):
            system.run_round()
        packets = system.radio_packets()
        assert len(packets) == 3
        readings = {bytes(p[2:6]) for p in packets}
        assert len(readings) == 3   # synthetic sensor drifts

    def test_radio_never_wakes_processor_layer_in_direct_mode(self):
        system = TemperatureSystem(direct_to_radio=True)
        system.run_round()
        # cpu's inbox only ever sees what was addressed to it: nothing.
        assert system.system.node("cpu").inbox == []


class TestSenseAndSendArithmetic:
    """The Section 6.3.1 numbers."""

    def setup_method(self):
        self.analysis = SenseAndSendAnalysis()

    def test_response_is_5_6_nj(self):
        assert self.analysis.response_energy_nj() == pytest.approx(5.6, abs=0.05)

    def test_direct_saves_6_6_nj(self):
        assert self.analysis.relay_penalty_nj() == pytest.approx(6.6, abs=0.05)

    def test_saving_is_about_7_percent(self):
        saving = self.analysis.relay_penalty_nj() / self.analysis.event_energy_nj(
            direct=False
        )
        assert saving == pytest.approx(0.062, abs=0.01)   # "~7 %"

    def test_lifetimes_44_5_and_47_5_days(self):
        assert self.analysis.lifetime_days(True) == pytest.approx(47.5, abs=0.5)
        assert self.analysis.lifetime_days(False) == pytest.approx(44.5, abs=0.6)

    def test_gain_is_about_71_hours(self):
        assert self.analysis.lifetime_gain_hours() == pytest.approx(71, abs=2)

    def test_utilization_0_0022_percent(self):
        assert self.analysis.bus_utilization() * 100 == pytest.approx(
            0.0022, abs=0.0002
        )

    def test_direct_cuts_utilization_about_40_percent(self):
        assert self.analysis.utilization_reduction_from_direct() == pytest.approx(
            0.40, abs=0.03
        )

    def test_ledger_breakdown_totals(self):
        direct = self.analysis.event_ledger(direct=True)
        relay = self.analysis.event_ledger(direct=False)
        assert direct.total_nj == pytest.approx(100.0, abs=0.1)
        assert relay.total_nj == pytest.approx(106.6, abs=0.1)


class TestImagerSimulation:
    def test_motion_event_streams_rows(self):
        system = ImagerSystem(rows=4)
        transactions = system.motion_event()
        # One null transaction (wakeup) + four row messages.
        assert sum(1 for t in transactions if t.general_error) == 1
        assert sum(1 for t in transactions if t.ok) == 4
        rows = system.received_rows()
        assert len(rows) == 4
        assert all(len(r) == 182 for r in rows)  # 180 B + cmd + index

    def test_rows_are_ordered_and_distinct(self):
        system = ImagerSystem(rows=4)
        system.motion_event()
        rows = system.received_rows()
        assert [r[1] for r in rows] == [0, 1, 2, 3]
        assert len({bytes(r) for r in rows}) == 4
        assert all(r[0] == CMD_FRAME_ROW for r in rows)

    def test_imager_wakes_only_on_motion(self):
        system = ImagerSystem(rows=2)
        imager_node = system.system.node("imager")
        assert not imager_node.layer_domain.is_on
        system.motion_event()
        assert imager_node.layer_domain.wake_count == 1

    def test_motion_detector_threshold(self):
        system = ImagerSystem(rows=2)
        first = system.imager.detect_motion([10, 10, 10])
        assert first is False                     # no reference frame yet
        assert system.imager.detect_motion([10, 10, 10]) is False
        assert system.imager.detect_motion([900, 900, 900]) is True


class TestImagerArithmetic:
    """The Section 6.3.2 numbers."""

    def setup_method(self):
        self.analysis = ImageTransferAnalysis()

    def test_image_is_28_8_kb(self):
        assert self.analysis.image_bytes == 28_800
        assert self.analysis.n_rows == 160

    def test_row_by_row_costs_3021_extra_bits(self):
        assert self.analysis.mbus_extra_bits_for_rows == 3_021

    def test_row_overhead_is_1_31_percent(self):
        assert self.analysis.mbus_rows_overhead_fraction * 100 == pytest.approx(
            1.31, abs=0.02
        )

    def test_i2c_whole_image_12_5_percent(self):
        assert self.analysis.i2c_single_overhead_bits == 28_810
        assert self.analysis.i2c_single_overhead_fraction * 100 == pytest.approx(
            12.5, abs=0.05
        )

    def test_i2c_row_by_row_13_2_percent(self):
        assert self.analysis.i2c_rows_overhead_bits == 30_400
        assert self.analysis.i2c_rows_overhead_fraction * 100 == pytest.approx(
            13.2, abs=0.05
        )

    def test_ack_overhead_reduction_90_to_99_percent(self):
        rows = self.analysis.ack_overhead_reduction(row_by_row=True)
        single = self.analysis.ack_overhead_reduction(row_by_row=False)
        assert 0.90 <= rows <= 0.99
        assert single > 0.99

    def test_paper_quoted_frame_times(self):
        """4.2 ms at the top clock, 2.9 s at the bottom — the paper's
        byte-per-cycle arithmetic, reproduced verbatim."""
        fast = self.analysis.paper_quoted_frame_time_s(6.67e6)
        slow = self.analysis.paper_quoted_frame_time_s(10e3)
        assert fast == pytest.approx(4.3e-3, abs=0.2e-3)
        assert slow == pytest.approx(2.88, abs=0.05)

    def test_bit_serial_frame_times(self):
        """The physically consistent bit-serial times are 8x longer."""
        ratio = self.analysis.frame_time_s(400e3) / (
            self.analysis.paper_quoted_frame_time_s(400e3)
        )
        assert ratio == pytest.approx(8.0, rel=0.01)
