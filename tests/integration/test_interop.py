"""Cross-process interoperability (Sections 5 and 6.5).

The paper implements MBus on twelve chips across three CMOS processes
(65, 130, 180 nm) and two FPGA fabrics and finds "all interoperate
without error and without tuning."  We model process differences as
per-node forwarding-delay corners — the only knob the spec constrains
(max 10 ns node-to-node) — and sweep heterogeneous rings.
"""

import itertools

import pytest

from repro.core import Address, MBusSystem
from repro.sim.scheduler import NS

#: Representative forwarding delays per fabrication target.
PROCESS_DELAYS_PS = {
    "65nm": 2 * NS,
    "130nm": 4 * NS,
    "180nm": 6 * NS,
    "fpga-smartfusion": 9 * NS,
    "fpga-igloo-nano": 10 * NS,   # the spec's limit
}


def _heterogeneous_system(processes):
    system = MBusSystem()
    system.add_mediator_node(
        "m", short_prefix=0x1, node_delay_ps=PROCESS_DELAYS_PS["180nm"]
    )
    for i, process in enumerate(processes):
        system.add_node(
            f"chip{i}-{process}",
            short_prefix=0x2 + i,
            node_delay_ps=PROCESS_DELAYS_PS[process],
            power_gated=(i % 2 == 0),
        )
    system.build()
    return system


class TestProcessCorners:
    @pytest.mark.parametrize(
        "pair", list(itertools.combinations(PROCESS_DELAYS_PS, 2))
    )
    def test_every_process_pair_interoperates(self, pair):
        """No tuning: any two fabrication targets exchange messages."""
        system = _heterogeneous_system(pair)
        a, b = (f"chip0-{pair[0]}", f"chip1-{pair[1]}")
        r1 = system.send(a, Address.short(0x3, 5), b"\x0A")
        r2 = system.send(b, Address.short(0x2, 5), b"\x0B")
        assert r1.ok and r2.ok
        assert system.node(b).inbox[-1].payload == b"\x0A"
        assert system.node(a).inbox[-1].payload == b"\x0B"

    def test_all_five_targets_on_one_ring(self):
        system = _heterogeneous_system(list(PROCESS_DELAYS_PS))
        for i, process in enumerate(PROCESS_DELAYS_PS):
            result = system.send(
                "m", Address.short(0x2 + i, 5), bytes([i])
            )
            assert result.ok, f"delivery to {process} failed"

    def test_heterogeneous_arbitration(self):
        """Contention across process corners resolves cleanly."""
        system = _heterogeneous_system(list(PROCESS_DELAYS_PS))
        for i in range(5):
            system.post(f"chip{i}-{list(PROCESS_DELAYS_PS)[i]}",
                        Address.short(0x1, 5), bytes([i]))
        system.run_until_idle()
        payloads = sorted(m.payload for m in system.node("m").inbox)
        assert payloads == [bytes([i]) for i in range(5)]

    def test_soak_traffic_without_errors(self):
        """Stand-in for the paper's 1,000 hours of error-free system
        testing: sustained mixed traffic over a heterogeneous ring."""
        system = _heterogeneous_system(["65nm", "180nm", "fpga-igloo-nano"])
        for i in range(30):
            src = 0x2 + (i % 3)
            dst = 0x2 + ((i + 1) % 3)
            system.post(
                f"chip{src - 2}-{['65nm', '180nm', 'fpga-igloo-nano'][src - 2]}",
                Address.short(dst, 5),
                bytes([i]),
            )
        system.run_until_idle()
        assert system.is_idle
        assert all(t.ok or t.general_error for t in system.transactions)
        delivered = sum(len(n.inbox) for n in system.nodes)
        assert delivered == 30
