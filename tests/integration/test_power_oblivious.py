"""Power-oblivious communication (Sections 4.4, 4.5, Figure 6).

The paper's central primitive: a sender may send to any recipient
regardless of the recipient's power state, and the recipient will
receive the message; only the destination node is powered on.
"""

import pytest

from repro.core import Address, MBusSystem


class TestTransparentWakeup:
    def test_sleeping_receiver_gets_message(self, gated_system):
        result = gated_system.send("cpu", Address.short(0x2, 5), b"\xAB")
        assert result.ok
        assert gated_system.node("sensor").inbox[-1].payload == b"\xAB"

    def test_only_destination_layer_powers_on(self, gated_system):
        """Section 4.4: 'only the destination node is powered on'."""
        gated_system.send("cpu", Address.short(0x2, 5), b"\x01")
        assert gated_system.node("sensor").layer_domain.wake_count == 1
        assert gated_system.node("radio").layer_domain.wake_count == 0

    def test_all_bus_controllers_wake_for_every_message(self, gated_system):
        """Arbitration edges wake every bus controller (4.4)."""
        gated_system.send("cpu", Address.short(0x2, 5), b"\x01")
        assert gated_system.node("sensor").bus_domain.wake_count == 1
        assert gated_system.node("radio").bus_domain.wake_count == 1

    def test_wakeup_sequence_order(self, gated_system):
        """Power gate -> clock -> isolation -> reset (Section 3)."""
        gated_system.send("cpu", Address.short(0x2, 5), b"\x01")
        log = gated_system.node("sensor").bus_domain.log
        steps = [e.action for e in log if e.action.startswith("release")]
        assert steps[:4] == [
            "release_power_gate",
            "release_clock",
            "release_isolation",
            "release_reset",
        ]

    def test_nodes_return_to_sleep_after_transaction(self, gated_system):
        gated_system.send("cpu", Address.short(0x2, 5), b"\x01")
        for name in ("sensor", "radio"):
            node = gated_system.node(name)
            assert not node.bus_domain.is_on
            assert not node.layer_domain.is_on

    def test_no_messages_dropped_by_gating(self, gated_system):
        for i in range(4):
            gated_system.post("cpu", Address.short(0x2, 5), bytes([i]))
        gated_system.run_until_idle()
        assert len(gated_system.node("sensor").inbox) == 4
        assert gated_system.node("sensor").dropped == []

    def test_gated_node_never_addressed_stays_down(self, gated_system):
        """The radio's layer must never wake while traffic flows
        between cpu and sensor."""
        for _ in range(3):
            gated_system.send("cpu", Address.short(0x2, 5), b"\x01")
        radio = gated_system.node("radio")
        assert radio.layer_domain.wake_count == 0
        assert radio.layer_domain.total_on_time_ps() == 0


class TestIntraNodeWakeup:
    """Section 4.5: null transactions from the interrupt port."""

    def test_interrupt_wakes_own_node(self, gated_system):
        fired = []
        gated_system.node("sensor").on_interrupt = lambda n: fired.append(n.name)
        gated_system.interrupt("sensor")
        gated_system.run_until_idle()
        assert fired == ["sensor"]

    def test_null_transaction_is_general_error(self, gated_system):
        """Figure 6: no winner -> mediator raises a general error."""
        gated_system.interrupt("sensor")
        gated_system.run_until_idle()
        last = gated_system.transactions[-1]
        assert last.general_error
        assert last.error_reason == "no-arbitration-winner"

    def test_null_transaction_wakes_full_hierarchy(self, gated_system):
        """Figure 6: bus controller wakes during arbitration, layer
        controller during interjection + control."""
        gated_system.interrupt("sensor")
        gated_system.run_until_idle()
        sensor = gated_system.node("sensor")
        assert sensor.bus_domain.wake_count == 1
        assert sensor.layer_domain.wake_count == 1

    def test_sleeping_node_can_send(self, gated_system):
        """post() on a sleeping node: wake via null transaction, then
        transmit — no other component's support required (4.5)."""
        gated_system.post("sensor", Address.short(0x3, 5), b"\x77")
        gated_system.run_until_idle()
        kinds = [(t.general_error, t.tx_node) for t in gated_system.transactions]
        assert kinds == [(True, None), (False, "sensor")]
        assert gated_system.node("radio").inbox[-1].payload == b"\x77"

    def test_interrupt_while_bus_busy_piggybacks(self, gated_system):
        """An interrupt raised mid-transaction needs no null
        transaction of its own: the in-flight transaction's CLK edges
        wake the node's hierarchy, and the interrupt is serviced at
        the transaction boundary."""
        fired = []
        gated_system.node("sensor").on_interrupt = lambda n: fired.append(n.name)
        gated_system.post("cpu", Address.short(0x3, 5), bytes(64))
        gated_system.node("sensor").trigger_interrupt()
        gated_system.run_until_idle()
        assert fired == ["sensor"]
        assert any(t.tx_node == "cpu" for t in gated_system.transactions)
        # No null transaction was necessary.
        assert not any(t.general_error for t in gated_system.transactions)


class TestInteroperability:
    def test_mixed_gated_and_oblivious_nodes(self):
        """Section 3 'Interoperability': power-conscious and
        power-oblivious devices share one bus."""
        system = MBusSystem()
        system.add_mediator_node("cpu", short_prefix=0x1)
        system.add_node("old", short_prefix=0x2, power_gated=False)
        system.add_node("new", short_prefix=0x3, power_gated=True)
        r1 = system.send("old", Address.short(0x3, 5), b"\x01")
        r2 = system.send("new", Address.short(0x2, 5), b"\x02")
        assert r1.ok and r2.ok
        assert system.node("new").inbox[-1].payload == b"\x01"
        assert system.node("old").inbox[-1].payload == b"\x02"

    def test_power_oblivious_node_never_gates(self):
        system = MBusSystem()
        system.add_mediator_node("cpu", short_prefix=0x1)
        system.add_node("old", short_prefix=0x2, power_gated=False)
        system.send("cpu", Address.short(0x2, 5), b"\x01")
        node = system.node("old")
        assert node.bus_domain.is_on and node.layer_domain.is_on
        assert node.bus_domain.wake_count == 1  # initial power-on only

    def test_sleep_api_requires_gated_design(self, three_node_system):
        with pytest.raises(Exception):
            three_node_system.node("sensor").sleep()

    def test_explicit_sleep_and_rewake(self):
        system = MBusSystem()
        system.add_mediator_node("cpu", short_prefix=0x1)
        system.add_node("s", short_prefix=0x2, power_gated=True, auto_sleep=False)
        system.send("cpu", Address.short(0x2, 5), b"\x01")
        node = system.node("s")
        assert node.is_fully_awake          # auto_sleep disabled
        node.sleep()
        assert not node.bus_domain.is_on
        result = system.send("cpu", Address.short(0x2, 5), b"\x02")
        assert result.ok
        assert node.inbox[-1].payload == b"\x02"
