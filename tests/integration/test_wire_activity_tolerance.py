"""Enforce the fast path's documented wire-activity accuracy.

``MBusSystem.wire_activity()`` in fast mode returns analytic
transition estimates (the transaction-level backend never toggles
nets).  Its docstring claims they "track the edge engine's counts
closely enough for the activity-based power model" — this module
states and enforces the tolerance: for every node that the edge
engine reports as active, the fast-path estimate must lie within
``WIRE_ACTIVITY_TOL`` (30 %, the same bound the fastpath-equivalence
matrix uses) across several topologies and traffic shapes.
"""

import pytest

from repro.core import Address
from repro.scenario import (
    Broadcast,
    Burst,
    Interrupt,
    NodeSpec,
    OneShot,
    RandomTraffic,
    SystemSpec,
    run,
)

#: The stated accuracy contract of the fast path's analytic estimates.
WIRE_ACTIVITY_TOL = 0.30

THREE_PLAIN = SystemSpec(
    name="three-plain",
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)

FOUR_GATED = SystemSpec(
    name="four-gated",
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2, power_gated=True),
        NodeSpec("b", short_prefix=0x3, power_gated=True),
        NodeSpec("c", short_prefix=0x4, power_gated=True),
    ),
)

SIX_MIXED_ANCHORED = SystemSpec(
    name="six-mixed-anchored",
    arbitration_anchor="c",
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2, power_gated=True),
        NodeSpec("b", short_prefix=0x3),
        NodeSpec("c", short_prefix=0x4),
        NodeSpec("d", short_prefix=0x5, power_gated=True),
        NodeSpec("e", short_prefix=0x6),
    ),
)

CASES = {
    "three_plain_burst": (
        THREE_PLAIN,
        Burst("a", Address.short(0x3, 5), bytes(range(16)), count=4),
    ),
    "three_plain_broadcast": (
        THREE_PLAIN,
        Broadcast("m", channel=0, payload=b"\x01\x02")
        + OneShot("b", Address.short(0x2, 1), b"\xFF", at_s=0.01),
    ),
    "four_gated_wakeups": (
        FOUR_GATED,
        OneShot("m", Address.short(0x2, 5), b"\x11\x22")
        + OneShot("m", Address.short(0x4, 5), b"\x33", at_s=0.02)
        + Interrupt("b", at_s=0.04),
    ),
    "six_mixed_anchored_random": (
        SIX_MIXED_ANCHORED,
        RandomTraffic(seed=11, count=10, mean_gap_s=0.005, max_bytes=12),
    ),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_fast_wire_activity_tracks_edge_within_tolerance(case):
    spec, workload = CASES[case]
    edge = run(spec, workload, backend="edge")
    fast = run(spec, workload, backend="fast")
    # Same traffic on both backends, or the comparison is vacuous.
    assert edge.transaction_signatures() == fast.transaction_signatures()
    assert any(edge.wire_activity.values()), "workload drove no wires"
    for node, edge_count in edge.wire_activity.items():
        if edge_count == 0:
            continue
        fast_count = fast.wire_activity[node]
        assert abs(fast_count - edge_count) <= WIRE_ACTIVITY_TOL * edge_count, (
            f"{case}/{node}: edge={edge_count} fast={fast_count} "
            f"(tolerance {WIRE_ACTIVITY_TOL:.0%})"
        )
