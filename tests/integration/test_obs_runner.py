"""Observability integration: traced runs across all three backends.

The PR's acceptance bar lives here:

* two identical traced runs produce **byte-identical** trace JSONL
  once wall-clock fields are stripped — on edge, fast and batch;
* one scenario traced on all three backends yields **structurally
  identical** span trees (``run`` > ``compile`` / ``execute`` /
  ``serialize`` + ``bus-round`` > ``transaction``);
* the per-backend metric families are wired (scheduler, fast path,
  batch executor, campaign executors);
* campaign traces nest ``campaign`` > ``trial`` > ``run``, and the
  ``trace`` / ``stats`` / ``campaign run --progress`` CLI surfaces
  round-trip.
"""

import json

import pytest

from repro.__main__ import main
from repro.campaign import Campaign, Grid
from repro.core import Address
from repro.obs import observe, strip_wall_fields
from repro.obs.tracer import (
    canonical_line,
    span_structure,
    trace_records,
    validate_trace,
)
from repro.scenario import Burst, NodeSpec, SystemSpec, run

BACKENDS = ("edge", "fast", "batch")

SPEC = SystemSpec(
    name="obs-three-chip",
    clock_hz=400_000.0,
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)

WORKLOAD = Burst("m", Address.short(0x2, 5), bytes(range(6)), count=3)


def traced_run(backend):
    with observe() as session:
        report = run(SPEC, WORKLOAD, backend=backend)
    return session, report


def stripped_lines(session, backend):
    """The deterministic core of a session's trace, as JSONL lines."""
    records = trace_records(
        session.tracer,
        meta={"label": "obs-test", "backend": backend},
        metrics=session.metrics.snapshot(),
        profile=session.profiler.to_dict(),
    )
    assert validate_trace(records) == []
    return [canonical_line(strip_wall_fields(r)) for r in records]


class TestTracedRuns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_runs_byte_identical_stripped(self, backend):
        from repro.batch.cache import clear_cache

        # Start both runs with a cold compile cache: cache-warmth
        # counters (batch.compile_cache_*, batch.template_*) are the
        # one legitimate cross-run difference in a shared process.
        clear_cache()
        first, report_a = traced_run(backend)
        clear_cache()
        second, report_b = traced_run(backend)
        assert report_a.n_transactions == report_b.n_transactions
        lines_a = stripped_lines(first, backend)
        lines_b = stripped_lines(second, backend)
        assert lines_a == lines_b
        assert len(lines_a) > 5

    def test_span_structure_identical_across_backends(self):
        structures = {}
        for backend in BACKENDS:
            session, _report = traced_run(backend)
            structures[backend] = span_structure(session.tracer.spans)
        assert structures["edge"] == structures["fast"]
        assert structures["edge"] == structures["batch"]
        ((name, children),) = structures["edge"]
        assert name == "run"
        child_names = [child[0] for child in children]
        for phase in ("compile", "execute", "serialize"):
            assert phase in child_names
        rounds = [c for c in children if c[0] == "bus-round"]
        assert len(rounds) == 3
        assert all(
            kid[0] == "transaction"
            for _name, kids in rounds for kid in kids
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_untraced_run_matches_traced(self, backend):
        _session, traced = traced_run(backend)
        plain = run(SPEC, WORKLOAD, backend=backend)
        assert plain.n_transactions == traced.n_transactions
        assert [t.ok for t in plain.transactions] == [
            t.ok for t in traced.transactions
        ]


class TestBackendMetrics:
    def test_run_calls_labeled_by_backend(self):
        for backend in BACKENDS:
            session, _ = traced_run(backend)
            counters = session.metrics.snapshot()["counters"]
            assert counters[f"run.calls{{backend={backend}}}"] == 1

    def test_edge_scheduler_metrics(self):
        session, report = traced_run("edge")
        snap = session.metrics.snapshot()
        assert snap["counters"]["sim.run_calls"] == 1
        assert snap["gauges"]["sim.events_processed"] > 0
        assert snap["gauges"]["sim.now_ps"] > 0

    def test_fastpath_metrics(self):
        session, _ = traced_run("fast")
        counters = session.metrics.snapshot()["counters"]
        assert counters["fastpath.rounds"] >= 1
        assert counters["tlm.plan_round_calls"] >= 1

    def test_batch_metrics(self):
        session, _ = traced_run("batch")
        snap = session.metrics.snapshot()
        counters = snap["counters"]
        assert counters["batch.run_calls"] == 1
        assert (
            counters.get("batch.template_hits", 0)
            + counters.get("batch.template_misses", 0)
        ) >= 1
        assert snap["gauges"]["batch.rounds"] == 3

    def test_profiler_covers_canonical_phases(self):
        for backend in BACKENDS:
            session, _ = traced_run(backend)
            phases = session.profiler.to_dict()["phases"]
            for name in ("compile", "execute", "serialize"):
                assert phases[name]["calls"] == 1, (backend, name)


class TestCampaignTracing:
    def campaign(self):
        return Campaign(
            spec=SPEC,
            workload=WORKLOAD,
            grid=Grid.product(**{"workload.count": [1, 2]}),
            name="obs-campaign",
        )

    def test_serial_campaign_span_nesting(self, tmp_path):
        campaign = self.campaign()
        with observe() as session:
            results = campaign.run(store=str(tmp_path))
        assert not results.failed
        ((name, trials),) = span_structure(session.tracer.spans)
        assert name == "campaign"
        assert [t[0] for t in trials] == ["trial", "trial"]
        for _trial, kids in trials:
            assert kids[0][0] == "run"
        counters = session.metrics.snapshot()["counters"]
        assert counters["campaign.runs"] == 1
        assert counters["campaign.outcomes{outcome=ok}"] == 2
        gauges = session.metrics.snapshot()["gauges"]
        assert gauges["campaign.trials_planned"] == 2

    def test_rerun_counts_cache_hits(self, tmp_path):
        campaign = self.campaign()
        campaign.run(store=str(tmp_path))
        with observe() as session:
            campaign.run(store=str(tmp_path))
        counters = session.metrics.snapshot()["counters"]
        assert counters["campaign.cache_hits"] == 2

    def test_progress_callback_sees_every_trial(self, tmp_path):
        seen = []
        self.campaign().run(
            store=str(tmp_path),
            progress=lambda done, total, result: seen.append(
                (done, total, result.trial.index)
            ),
        )
        assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
        assert sorted(s[2] for s in seen) == [0, 1]

    def test_status_reports_outcomes(self, tmp_path):
        campaign = self.campaign()
        campaign.run(store=str(tmp_path))
        status = campaign.status(str(tmp_path))
        assert status.outcomes == {
            "ok": 2, "error": 0, "timeout": 0, "crashed": 0,
        }
        assert status.retries == 0
        assert tuple(status.quarantined_trials) == ()
        doc = status.to_dict()
        assert doc["outcomes"]["ok"] == 2
        assert "retries" in doc and "quarantined_trials" in doc


class TestCli:
    SCENARIO = "examples/scenarios/fig14_burst.json"

    def trace_to(self, tmp_path, backend, chrome=False):
        out = tmp_path / f"{backend}.jsonl"
        argv = [
            "trace", self.SCENARIO,
            "--backend", backend,
            "-o", str(out),
        ]
        chrome_path = tmp_path / f"{backend}_chrome.json"
        if chrome:
            argv += ["--chrome", str(chrome_path)]
        assert main(argv) == 0
        return out, chrome_path

    def test_trace_writes_valid_jsonl_and_chrome(self, tmp_path, capsys):
        out, chrome_path = self.trace_to(tmp_path, "fast", chrome=True)
        text = capsys.readouterr().out
        assert "recorded" in text and "span(s)" in text
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert validate_trace(records) == []
        chrome = json.loads(chrome_path.read_text())
        assert chrome["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_stats_single_and_diff(self, tmp_path, capsys):
        fast, _ = self.trace_to(tmp_path, "fast")
        batch, _ = self.trace_to(tmp_path, "batch")
        capsys.readouterr()
        assert main(["stats", str(fast)]) == 0
        single = capsys.readouterr().out
        assert "profile:" in single
        assert main(["stats", str(fast), str(batch)]) == 0
        diff = capsys.readouterr().out
        assert "Phase profile diff" in diff
        assert "execute" in diff

    def test_stats_json(self, tmp_path, capsys):
        fast, _ = self.trace_to(tmp_path, "fast")
        capsys.readouterr()
        assert main(["stats", str(fast), "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1
        assert docs[0]["n_spans"] > 0

    def test_stats_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "missing.jsonl")])

    def test_campaign_run_progress_always(self, tmp_path, capsys):
        code = main([
            "campaign", "run", "examples/scenarios/recovery_campaign.json",
            "--store", str(tmp_path / "store"),
            "--executor", "serial",
            "--progress", "always",
        ])
        assert code == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if "trial(s) complete" in l]
        assert lines, err
        assert lines[-1].endswith("4/4 trial(s) complete")

    def test_campaign_run_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "campaign.jsonl"
        code = main([
            "campaign", "run", "examples/scenarios/recovery_campaign.json",
            "--store", str(tmp_path / "store"),
            "--executor", "serial",
            "--progress", "never",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert validate_trace(records) == []
        spans = [r for r in records if r.get("type") == "span"]
        structure = span_structure(spans)
        assert structure[0][0] == "campaign"
