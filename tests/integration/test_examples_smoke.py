"""Examples smoke test: every ``examples/*.py`` must run headless.

The examples are user-facing API documentation; an API change that
breaks one should fail CI, not rot silently.  Each example is run as
a subprocess (as a user would: ``python examples/<name>.py``) with
the repo's ``src`` on PYTHONPATH, and must exit 0 with no traceback.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
TIMEOUT_S = 120


def test_examples_exist():
    assert EXAMPLES, f"no examples found in {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_headless(example):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(example)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert completed.returncode == 0, (
        f"{example.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert "Traceback" not in completed.stderr
    assert completed.stdout.strip(), f"{example.name} printed nothing"
