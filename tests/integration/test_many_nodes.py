"""Many-node systems (Section 6.4) at the 14-node maximum."""

import pytest

from repro.core import Address, MBusSystem
from repro.core.constants import MBusTiming
from repro.core.errors import ConfigurationError
from repro.core.monitor import ProtocolMonitor


def _full_ring(clock_hz=400_000, node_delay_ps=None):
    """Mediator + 13 members: all 14 short prefixes in use."""
    system = MBusSystem(timing=MBusTiming(clock_hz=clock_hz))
    system.add_mediator_node("n01", short_prefix=0x1, node_delay_ps=node_delay_ps)
    for prefix in range(0x2, 0xF):
        system.add_node(
            f"n{prefix:02x}", short_prefix=prefix, node_delay_ps=node_delay_ps
        )
    system.build()
    return system


class TestFourteenNodeRing:
    def test_maximum_population_builds(self):
        system = _full_ring()
        assert len(system.nodes) == 14

    def test_fifteenth_short_prefix_rejected(self):
        system = _full_ring()
        with pytest.raises(Exception):
            system.add_node("extra", short_prefix=0x5)

    def test_mediator_reaches_every_member(self):
        system = _full_ring()
        for prefix in range(0x2, 0xF):
            result = system.send("n01", Address.short(prefix, 5), bytes([prefix]))
            assert result.ok
            assert system.node(f"n{prefix:02x}").inbox[-1].payload == bytes(
                [prefix]
            )

    def test_farthest_to_farthest(self):
        """Traffic wrapping nearly the whole ring through 12 hops."""
        system = _full_ring()
        result = system.send("n0e", Address.short(0x2, 5), b"\x42")
        assert result.ok
        assert system.node("n02").inbox[-1].payload == b"\x42"

    def test_ring_neighbour_chain(self):
        """Each node messages its successor; all 13 deliveries land."""
        system = _full_ring()
        for prefix in range(0x2, 0xE):
            system.post(
                f"n{prefix:02x}",
                Address.short(prefix + 1, 5),
                bytes([prefix]),
            )
        system.run_until_idle()
        for prefix in range(0x3, 0xF):
            assert system.node(f"n{prefix:02x}").inbox[-1].payload == bytes(
                [prefix - 1]
            )

    def test_all_contend_simultaneously(self):
        """Thirteen simultaneous requesters resolve in ring order."""
        system = _full_ring()
        for prefix in range(0x2, 0xF):
            system.post(f"n{prefix:02x}", Address.short(0x1, 5), bytes([prefix]))
        system.run_until_idle()
        winners = [t.tx_node for t in system.transactions]
        assert winners == [f"n{p:02x}" for p in range(0x2, 0xF)]
        ProtocolMonitor(system).assert_clean()

    def test_at_maximum_clock(self):
        """7.1 MHz — the Figure 9 limit for 14 nodes.

        Figure 9's limit allots one full clock period to a ring lap
        (wave timing); this simulator's two-phase drive/latch model is
        more conservative and requires a lap within a half period, so
        the 14-node/7.1 MHz point is exercised with 65 nm-class 2 ns
        node delays (ring lap 28 ns < 70 ns half period).  See
        EXPERIMENTS.md.
        """
        system = _full_ring(clock_hz=7_100_000, node_delay_ps=2_000)
        result = system.send("n01", Address.short(0xE, 5), b"\xAA")
        assert result.ok

    def test_overclocked_ring_fails_timing(self):
        """Past its timing budget the ring genuinely misbehaves — the
        simulator reproduces why Figure 9's limit exists rather than
        ignoring propagation."""
        system = _full_ring(clock_hz=7_100_000)   # 10 ns nodes: too slow
        try:
            result = system.send(
                "n01", Address.short(0xE, 5), b"\xAA", timeout_s=0.01
            )
            corrupted = (
                not result.ok
                or system.node("n0e").inbox[-1].payload != b"\xAA"
            )
        except Exception:
            corrupted = True
        assert corrupted

    def test_broadcast_hits_thirteen_members(self):
        system = _full_ring()
        result = system.broadcast("n01", 0, b"\x01")
        assert len(result.rx_nodes) == 13

    def test_aggregate_rate_matches_model(self):
        """Section 6.4: what matters is aggregate transaction rate."""
        from repro.timing.throughput import transaction_rate_hz

        system = _full_ring()
        for prefix in range(0x2, 0xF):
            system.post(f"n{prefix:02x}", Address.short(0x1, 5), bytes(8))
        system.run_until_idle()
        elapsed = system.sim.now * 1e-12
        achieved = len(system.transactions) / elapsed
        ceiling = 400_000 / (14 + 64)    # no-interjection bound
        model = transaction_rate_hz(400_000, 8)
        assert 0.5 * model < achieved <= ceiling
