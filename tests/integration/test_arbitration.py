"""Arbitration and priority arbitration (Section 4.3, Figure 5)."""

import pytest

from repro.core import Address, MBusSystem


def _system(n_members=3):
    system = MBusSystem()
    system.add_mediator_node("m", short_prefix=0x1)
    for i in range(n_members):
        system.add_node(f"n{i}", short_prefix=0x2 + i)
    system.build()
    return system


class TestTopologicalPriority:
    def test_closer_to_mediator_wins(self):
        """Arbitration priority follows ring position (Section 4.3)."""
        system = _system()
        system.post("n2", Address.short(0x1, 5), b"\xC2")
        system.post("n0", Address.short(0x1, 5), b"\xC0")
        system.run_until_idle()
        assert [t.tx_node for t in system.transactions] == ["n0", "n2"]

    def test_three_way_contention_fully_ordered(self):
        system = _system()
        for name in ("n2", "n1", "n0"):
            system.post(name, Address.short(0x1, 5), name.encode())
        system.run_until_idle()
        assert [t.tx_node for t in system.transactions] == ["n0", "n1", "n2"]
        assert all(t.ok for t in system.transactions)

    def test_loser_retries_and_delivers(self):
        system = _system()
        system.post("n1", Address.short(0x1, 5), b"\x11")
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.run_until_idle()
        payloads = sorted(m.payload for m in system.node("m").inbox)
        assert payloads == [b"\x00", b"\x11"]

    def test_mediator_member_has_top_priority(self):
        """Section 7: 'the mediator always has top priority'."""
        system = _system()
        system.post("n0", Address.short(0x3, 5), b"\x01")
        system.post("m", Address.short(0x2, 5), b"\x02")
        system.run_until_idle()
        assert system.transactions[0].tx_node == "m"


class TestPriorityArbitration:
    def test_priority_flag_preempts_topological_winner(self):
        """Figure 5: node 3 claims the bus from node 1 via the
        priority arbitration cycle."""
        system = _system()
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n2", Address.short(0x1, 5), b"\x22", priority=True)
        system.run_until_idle()
        assert [t.tx_node for t in system.transactions] == ["n2", "n0"]
        assert system.node("n0").engine.stats.priority_preemptions == 1
        assert system.node("n2").engine.stats.priority_wins == 1

    def test_priority_between_two_priority_requesters(self):
        """Among priority requesters, topology still orders them."""
        system = _system()
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n1", Address.short(0x1, 5), b"\x11", priority=True)
        system.post("n2", Address.short(0x1, 5), b"\x22", priority=True)
        system.run_until_idle()
        assert system.transactions[0].tx_node == "n1"
        assert all(t.ok for t in system.transactions)

    def test_priority_uncontested_behaves_normally(self):
        system = _system()
        result = system.send("n1", Address.short(0x1, 5), b"\x01", priority=True)
        assert result.ok and result.tx_node == "n1"

    def test_preempted_winner_delivers_later(self):
        system = _system()
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n2", Address.short(0x1, 5), b"\x22", priority=True)
        system.run_until_idle()
        payloads = {m.payload for m in system.node("m").inbox}
        assert payloads == {b"\x00", b"\x22"}


class TestArbitrationStats:
    def test_winner_and_loser_counters(self):
        system = _system()
        system.post("n0", Address.short(0x1, 5), b"\x00")
        system.post("n1", Address.short(0x1, 5), b"\x11")
        system.run_until_idle()
        assert system.node("n0").engine.stats.arbitrations_won >= 1
        assert system.node("n1").engine.stats.arbitrations_lost >= 1

    def test_every_node_observes_every_transaction(self):
        system = _system()
        for _ in range(3):
            system.send("m", Address.short(0x2, 5), b"\x01")
        for node in system.nodes:
            assert node.engine.stats.transactions_observed == 3
