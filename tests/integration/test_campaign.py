"""Campaign API integration: compile, execute, memoise, resume, query.

The PR's acceptance bar lives here:

* a 12-trial fault-rate campaign produces an identical ResultSet on
  the serial and process executors, and re-running it is served
  entirely from the on-disk cache;
* a seeded RandomTraffic campaign run serial, process-parallel and
  in shuffled trial order yields byte-identical ResultStore entries;
* interrupted campaigns resume, executing only the missing trials;
* ``sweep()`` call sites migrated here (see
  ``test_scenario_runner.py`` for the deprecation shim itself).
"""

import json

import pytest

from repro.campaign import (
    Campaign,
    Grid,
    ResultStore,
    load_campaign,
)
from repro.core import Address
from repro.core.errors import ConfigurationError
from repro.faults import FaultSpec, RandomGlitches
from repro.scenario import (
    Burst,
    NodeSpec,
    RandomTraffic,
    SystemSpec,
)

THREE_CHIP = SystemSpec(
    name="campaign-three-chip",
    clock_hz=400_000.0,
    nodes=(
        NodeSpec("m", short_prefix=0x1, is_mediator=True),
        NodeSpec("a", short_prefix=0x2),
        NodeSpec("b", short_prefix=0x3),
    ),
)

BURST = Burst("m", Address.short(0x2, 5), bytes(range(8)), count=4)

#: The acceptance study: 12 glitch rates over a fixed burst.
FAULT_RATES = [0.0] + [250.0 * 2 ** i for i in range(11)]


def fault_campaign(name="fault-acceptance"):
    return Campaign(
        spec=THREE_CHIP,
        workload=BURST,
        grid=Grid.product(rate_hz=FAULT_RATES),
        faults=lambda p: FaultSpec(
            (RandomGlitches(seed=7, rate_hz=p["rate_hz"],
                            duration_s=0.002),),
        ),
        name=name,
    )


class TestCompilation:
    def test_spec_field_axis_overrides_spec_document(self):
        trials = Campaign(
            THREE_CHIP, BURST, grid={"clock_hz": [100e3, 400e3]}
        ).trials()
        assert [t.spec_doc["clock_hz"] for t in trials] == [100e3, 400e3]
        assert [t.params for t in trials] == [
            {"clock_hz": 100e3}, {"clock_hz": 400e3},
        ]

    def test_workload_document_patch(self):
        trials = Campaign(
            THREE_CHIP, BURST, grid={"workload.count": [1, 8]}
        ).trials()
        assert [t.workload_doc["count"] for t in trials] == [1, 8]

    def test_system_document_patch_reaches_nodes(self):
        trials = Campaign(
            THREE_CHIP, BURST,
            grid={"system.nodes.1.rx_buffer_bytes": [64, 4096]},
        ).trials()
        assert [
            t.spec_doc["nodes"][1]["rx_buffer_bytes"] for t in trials
        ] == [64, 4096]

    def test_faults_document_patch(self):
        trials = Campaign(
            THREE_CHIP, BURST,
            grid={"faults.faults.0.rate_hz": [0.0, 500.0]},
            faults=FaultSpec((RandomGlitches(seed=1, rate_hz=0.0),)),
        ).trials()
        assert [
            t.faults_doc["faults"][0]["rate_hz"] for t in trials
        ] == [0.0, 500.0]

    def test_faults_patch_without_faults_rejected(self):
        with pytest.raises(ConfigurationError, match="no faults"):
            Campaign(
                THREE_CHIP, BURST, grid={"faults.faults.0.rate_hz": [1.0]}
            ).trials()

    def test_patch_typo_fails_compilation(self):
        with pytest.raises(ConfigurationError, match="no field"):
            Campaign(
                THREE_CHIP, BURST, grid={"workload.cout": [1]}
            ).trials()

    def test_key_hashes_content_not_params(self):
        """Two grids compiling to the same documents share keys."""
        via_spec_field = Campaign(
            THREE_CHIP, BURST, grid={"clock_hz": [100e3]}
        ).trials()[0]
        via_patch = Campaign(
            THREE_CHIP, BURST, grid={"system.clock_hz": [100e3]}
        ).trials()[0]
        assert via_spec_field.params != via_patch.params
        assert via_spec_field.key == via_patch.key

    def test_trial_seed_injection_is_order_independent(self):
        campaign = Campaign(
            THREE_CHIP, BURST, grid={"workload.count": [1, 2]}, seed=99
        )
        seeds = [t.params["trial_seed"] for t in campaign.trials()]
        assert len(set(seeds)) == 2
        # A pure function of (campaign seed, point): recompiling (or
        # compiling on another machine) yields the same seeds.
        assert seeds == [t.params["trial_seed"] for t in campaign.trials()]

    def test_non_workload_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="Workload"):
            Campaign(THREE_CHIP, workload="burst").trials()

    def test_gridless_campaign_is_one_trial(self):
        trials = Campaign(THREE_CHIP, BURST).trials()
        assert len(trials) == 1
        assert trials[0].params == {}


class TestAcceptance:
    """The ISSUE's acceptance bar, asserted exactly."""

    def test_process_matches_serial_and_rerun_is_fully_cached(self, tmp_path):
        campaign = fault_campaign()
        assert len(campaign.trials()) >= 12

        serial_store = ResultStore(tmp_path / "serial")
        process_store = ResultStore(tmp_path / "process")

        serial = campaign.run(executor="serial", store=serial_store)
        parallel = campaign.run(
            executor="process", workers=2, store=process_store
        )
        assert serial.executed == len(FAULT_RATES)
        assert parallel.executed == len(FAULT_RATES)

        # Identical ResultSets: same records, in trial order.
        assert serial.records() == parallel.records()
        # Identical persisted bytes (order-insensitive: the process
        # pool appends in completion order).
        assert sorted(serial_store.entries()) == sorted(
            process_store.entries()
        )

        # Re-running hits the cache for every unchanged trial.
        rerun = campaign.run(
            executor="process", workers=2, store=process_store
        )
        assert rerun.executed == 0
        assert rerun.cached == len(FAULT_RATES)
        assert rerun.records() == parallel.records()

    def test_changed_trial_executes_while_rest_stay_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = fault_campaign()
        campaign.run(store=store)

        grown = Campaign(
            spec=campaign.spec,
            workload=campaign.workload,
            grid=Grid.product(rate_hz=FAULT_RATES + [999_999.0]),
            faults=campaign.faults,
            name=campaign.name,
        )
        second = grown.run(store=store)
        assert second.cached == len(FAULT_RATES)
        assert second.executed == 1
        assert second[-1].params["rate_hz"] == 999_999.0


class TestDeterminism:
    """Satellite: byte-identical store entries across executors and
    trial orders, for a seeded RandomTraffic campaign."""

    @staticmethod
    def _campaign():
        return Campaign(
            spec=THREE_CHIP,
            workload=lambda p: RandomTraffic(
                seed=p["traffic_seed"], count=6, mean_gap_s=0.01
            ),
            grid=Grid.product(traffic_seed=[1, 2], clock_hz=[100e3, 400e3]),
            backend="fast",
            name="determinism",
        )

    def test_serial_process_and_shuffled_runs_are_byte_identical(
        self, tmp_path
    ):
        campaign = self._campaign()
        n = len(campaign.trials())

        stores = {
            label: ResultStore(tmp_path / label)
            for label in ("serial", "process", "shuffled")
        }
        campaign.run(executor="serial", store=stores["serial"])
        campaign.run(executor="process", workers=2, store=stores["process"])
        campaign.run(
            executor="serial",
            store=stores["shuffled"],
            order=list(reversed(range(n))),
        )

        entry_sets = {
            label: sorted(store.entries())
            for label, store in stores.items()
        }
        assert entry_sets["serial"] == entry_sets["process"]
        assert entry_sets["serial"] == entry_sets["shuffled"]
        # And per-key, the stored line is the same bytes everywhere.
        for key in stores["serial"].keys():
            lines = {
                json.dumps(store.get(key), sort_keys=True)
                for store in stores.values()
            }
            assert len(lines) == 1, key

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError, match="permutation"):
            self._campaign().run(order=[0, 0, 1, 2])


class TestResume:
    def test_interrupted_campaign_resumes_missing_trials_only(self, tmp_path):
        campaign = fault_campaign("resume")
        trials = campaign.trials()
        store_dir = tmp_path / "store"

        # Simulate an interrupted run: only the first 5 trials landed.
        partial = Campaign(
            spec=campaign.spec,
            workload=campaign.workload,
            grid=Grid.product(rate_hz=FAULT_RATES[:5]),
            faults=campaign.faults,
            name=campaign.name,
        )
        partial.run(store=ResultStore(store_dir))

        status = campaign.status(str(store_dir))
        assert status.cached == 5
        assert status.pending == len(trials) - 5
        assert not status.complete

        resumed = campaign.run(store=str(store_dir))
        assert resumed.cached == 5
        assert resumed.executed == len(trials) - 5
        assert campaign.status(str(store_dir)).complete

    def test_resume_false_re_executes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = Campaign(
            THREE_CHIP, BURST, grid={"workload.count": [1, 2]}
        )
        campaign.run(store=store)
        again = campaign.run(store=store, resume=False)
        assert again.executed == 2
        assert again.cached == 0


class TestExecutionModes:
    def test_duplicate_trials_execute_once(self):
        results = Campaign(
            THREE_CHIP, BURST, grid={"workload.count": [2, 2]}
        ).run()
        assert results.executed == 1
        assert results.cached == 1
        assert results[0].record == results[1].record

    def test_keep_reports_serial_only(self):
        campaign = Campaign(THREE_CHIP, BURST)
        results = campaign.run(keep_reports=True)
        assert results[0].live is not None
        assert results[0].live.n_ok == BURST.count
        with pytest.raises(ConfigurationError, match="serial"):
            campaign.run(executor="process", keep_reports=True)

    def test_setup_hook_is_serial_only_and_uncached(self, tmp_path):
        seen = []
        store = ResultStore(tmp_path / "store")
        campaign = Campaign(THREE_CHIP, BURST, backend="fast")
        campaign.run(setup=lambda system: seen.append(system.mode),
                     store=store)
        assert seen == ["fast"]
        # Code-bearing runs never touch the store.
        assert len(store) == 0
        with pytest.raises(ConfigurationError, match="serial"):
            campaign.run(executor="process", setup=lambda s: None)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            Campaign(THREE_CHIP, BURST).run(executor="quantum")

    def test_live_report_matches_record(self):
        results = Campaign(THREE_CHIP, BURST).run(keep_reports=True)
        live_doc = results[0].live.to_dict()
        # Wall-clock noise (and anything derived from it) never enters
        # the content-addressed record.
        live_doc.pop("wall_s")
        live_doc.pop("wall_throughput_tps")
        assert live_doc == results[0].report


class TestCampaignDocuments:
    def test_round_trips_through_json(self, tmp_path):
        campaign = Campaign(
            spec=THREE_CHIP,
            workload=BURST,
            grid=Grid.product(**{"workload.count": [1, 2]}),
            faults=FaultSpec((RandomGlitches(seed=3, rate_hz=100.0),)),
            backend="edge",
            name="doc",
            seed=5,
        )
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(campaign.to_dict()))
        loaded = load_campaign(str(path))
        assert loaded.name == "doc"
        assert loaded.backend == "edge"
        assert loaded.seed == 5
        assert [t.key for t in loaded.trials()] == [
            t.key for t in campaign.trials()
        ]

    def test_factory_campaigns_are_code_not_data(self):
        with pytest.raises(ConfigurationError, match="code"):
            fault_campaign().to_dict()

    def test_unknown_key_rejected_strict_tolerated_lenient(self):
        document = Campaign(THREE_CHIP, BURST, name="lenient").to_dict()
        document["future_field"] = True
        with pytest.raises(ConfigurationError, match="unknown"):
            Campaign.from_dict(document)
        loaded = Campaign.from_dict(document, lenient=True)
        assert loaded.name == "lenient"


class TestSchemaTolerance:
    """Satellite: schema_version stamps + lenient loaders mean cached
    records survive future schema growth."""

    def test_reports_carry_schema_version(self):
        from repro.core.schema import REPORT_SCHEMA_VERSION
        from repro.scenario import run

        report = run(THREE_CHIP, BURST, faults=FaultSpec())
        document = report.to_dict()
        assert document["schema_version"] == REPORT_SCHEMA_VERSION
        assert (
            document["reliability"]["schema_version"]
            == REPORT_SCHEMA_VERSION
        )

    def test_records_carry_schema_version(self):
        results = Campaign(THREE_CHIP, BURST).run()
        from repro.core.schema import REPORT_SCHEMA_VERSION

        assert results[0].record["schema_version"] == REPORT_SCHEMA_VERSION

    def test_lenient_spec_loader_drops_unknown_keys(self):
        document = THREE_CHIP.to_dict()
        document["future_field"] = 1
        document["nodes"][0]["future_node_field"] = 2
        with pytest.raises(ConfigurationError, match="unknown"):
            SystemSpec.from_dict(document)
        assert SystemSpec.from_dict(document, lenient=True) == THREE_CHIP

    def test_lenient_workload_loader_drops_unknown_keys(self):
        from repro.scenario import workload_from_dict

        document = BURST.to_dict()
        document["future_knob"] = True
        with pytest.raises(ConfigurationError):
            workload_from_dict(document)
        assert workload_from_dict(document, lenient=True) == BURST

    def test_lenient_fault_loader_drops_unknown_keys(self):
        faults = FaultSpec((RandomGlitches(seed=3, rate_hz=10.0),), name="f")
        document = faults.to_dict()
        document["future_field"] = 1
        document["faults"][0]["future_param"] = 2
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict(document)
        assert FaultSpec.from_dict(document, lenient=True) == faults

    def test_unknown_kind_still_fails_even_lenient(self):
        from repro.scenario import workload_from_dict

        with pytest.raises(ConfigurationError, match="unknown workload"):
            workload_from_dict({"kind": "antigravity"}, lenient=True)
