"""Fast-path vs edge-engine equivalence.

Every scenario below is run on both backends —
``MBusSystem(mode="edge")`` (the golden, edge-accurate reference) and
``MBusSystem(mode="fast")`` (the transaction-level engine) — and the
outcomes are compared:

* **exactly**: the TransactionResult stream (ok / control code /
  transmitter / clock+control cycle counts / general-error reason),
  the receiver set with delivered payloads, node inboxes, and
  power-domain wake counts;
* **within tolerance**: picosecond timings (start/end/duration) and
  power-domain on-times, which the fast path computes in closed form
  and which agree with the edge engine up to propagation-delay slack
  (well under 3 %); and wire-activity estimates (30 %).

The matrix covers arbitration races, priority arbitration, broadcast
fan-out, full addressing, hierarchical power-gated wakeup (RX, TX and
interrupt-only), receiver-buffer interjection aborts, the runaway
watchdog, NAK paths, back-to-back bursts and mutable-priority anchors.
"""

import pytest

from repro.core import Address, MBusSystem, Message
from repro.core.constants import MBusTiming
from repro.core.errors import ConfigurationError, ProtocolError

TIMING_TOL = 0.03          # relative tolerance on ps timings
TIMING_ABS_PS = 300_000    # absolute floor: interjection-detector slack
ON_TIME_TOL = 0.03
ON_TIME_ABS_S = 3e-6
WIRE_TOL = 0.30


def run_both(build, drive, timeout_s=None):
    systems = {}
    for mode in ("edge", "fast"):
        system = MBusSystem(mode=mode)
        build(system)
        system.build()
        drive(system)
        system.run_until_idle(timeout_s=timeout_s)
        systems[mode] = system
    return systems["edge"], systems["fast"]


def assert_equivalent(edge, fast):
    assert len(fast.transactions) == len(edge.transactions)
    for e, f in zip(edge.transactions, fast.transactions):
        assert f.ok == e.ok
        assert f.control == e.control
        assert f.tx_node == e.tx_node
        assert f.clock_cycles == e.clock_cycles
        assert f.control_cycles == e.control_cycles
        assert f.general_error == e.general_error
        assert f.error_reason == e.error_reason
        assert (f.message is None) == (e.message is None)
        if e.message is not None:
            assert f.message.payload == e.message.payload
        assert sorted(
            (name, bytes(m.payload), m.control) for name, m in f.rx_deliveries
        ) == sorted(
            (name, bytes(m.payload), m.control) for name, m in e.rx_deliveries
        )
        for attr in ("start_ps", "end_ps", "duration_ps"):
            ev, fv = getattr(e, attr), getattr(f, attr)
            assert abs(fv - ev) <= max(TIMING_TOL * ev, TIMING_ABS_PS), (
                f"{attr}: edge={ev} fast={fv}"
            )
    edge_power = edge.power_domain_report()
    fast_power = fast.power_domain_report()
    for name, report in edge_power.items():
        assert fast_power[name]["bus_wakeups"] == report["bus_wakeups"], name
        assert fast_power[name]["layer_wakeups"] == report["layer_wakeups"], name
        for key in ("bus_on_s", "layer_on_s"):
            ev, fv = report[key], fast_power[name][key]
            assert abs(fv - ev) <= max(ON_TIME_TOL * ev, ON_TIME_ABS_S), (
                f"{name}.{key}: edge={ev} fast={fv}"
            )
    for name, count in edge.wire_activity().items():
        if count:
            assert abs(fast.wire_activity()[name] - count) <= WIRE_TOL * count
    # Inbox payloads and node-level transmit outcomes line up per
    # node.  bytes_sent matters: the fast path derives it from the
    # analytic edge count, the edge engine from actual driven bits.
    for node in edge.nodes:
        assert [m.payload for m in fast.node(node.name).inbox] == [
            m.payload for m in node.inbox
        ]
        assert [
            (o.success, o.control, o.bytes_sent)
            for o in fast.node(node.name).results
        ] == [
            (o.success, o.control, o.bytes_sent) for o in node.results
        ], node.name


def three_plain(system):
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("a", short_prefix=0x2)
    system.add_node("b", short_prefix=0x3)


def three_gated(system):
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("a", short_prefix=0x2, power_gated=True)
    system.add_node("b", short_prefix=0x3, power_gated=True)


class TestFastPathEquivalence:
    def test_single_short_transaction(self):
        assert_equivalent(*run_both(
            three_plain,
            lambda s: s.post("a", Address.short(0x3, 5), b"\x01\x02\x03"),
        ))

    def test_mediator_member_transmit(self):
        assert_equivalent(*run_both(
            three_plain, lambda s: s.post("m", Address.short(0x2), b"\xAA")
        ))

    def test_full_address(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2, full_prefix=0x12345)
            s.add_node("b", short_prefix=0x3)

        assert_equivalent(*run_both(
            build, lambda s: s.post("b", Address.full(0x12345, 2), b"\x10\x20")
        ))

    def test_broadcast_fanout(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2,
                       broadcast_channels=frozenset({0, 1}))
            s.add_node("b", short_prefix=0x3,
                       broadcast_channels=frozenset({0}))

        assert_equivalent(*run_both(
            build, lambda s: s.post("a", Address.broadcast(0), b"\x55")
        ))

    def test_arbitration_race_topological_priority(self):
        def drive(s):
            s.post("a", Address.short(0x3), b"\x0A")
            s.post("b", Address.short(0x2), b"\x0B")

        edge, fast = run_both(three_plain, drive)
        assert_equivalent(edge, fast)
        # Topological priority: 'a' sits first after the mediator.
        assert [r.tx_node for r in fast.transactions] == ["a", "b"]

    def test_priority_arbitration_beats_topology(self):
        def drive(s):
            s.post("a", Address.short(0x3), b"\x0A")
            s.post("b", Address.short(0x2), b"\x0B", priority=True)

        edge, fast = run_both(three_plain, drive)
        assert_equivalent(edge, fast)
        assert [r.tx_node for r in fast.transactions] == ["b", "a"]

    def test_two_priority_requesters(self):
        def build(s):
            three_plain(s)
            s.add_node("c", short_prefix=0x4)

        def drive(s):
            s.post("a", Address.short(0x1), b"\x0A")
            s.post("b", Address.short(0x1), b"\x0B", priority=True)
            s.post("c", Address.short(0x1), b"\x0C", priority=True)

        edge, fast = run_both(build, drive)
        assert_equivalent(edge, fast)
        assert [r.tx_node for r in fast.transactions] == ["b", "c", "a"]

    def test_power_gated_rx_wakeup(self):
        assert_equivalent(*run_both(
            three_gated, lambda s: s.post("m", Address.short(0x2), b"\x77")
        ))

    def test_power_gated_tx_wakeup_null_transaction(self):
        edge, fast = run_both(
            three_gated, lambda s: s.post("a", Address.short(0x3), b"\x88")
        )
        assert_equivalent(edge, fast)
        # The sleeping transmitter first raises a wakeup (General
        # Error) round, then sends for real.
        assert fast.transactions[0].general_error
        assert fast.transactions[1].ok

    def test_interrupt_only_wakeup(self):
        fired = {"edge": [], "fast": []}

        def drive_for(mode):
            def drive(s):
                s.node("a").on_interrupt = (
                    lambda node: fired[mode].append(node.name)
                )
                s.interrupt("a")
            return drive

        systems = {}
        for mode in ("edge", "fast"):
            system = MBusSystem(mode=mode)
            three_gated(system)
            system.build()
            drive_for(mode)(system)
            system.run_until_idle()
            systems[mode] = system
        assert_equivalent(systems["edge"], systems["fast"])
        assert fired["edge"] == fired["fast"] == ["a"]

    def test_awake_pulser_does_not_arbitrate_its_own_pulse_round(self):
        """interrupt() + post() on an awake node costs a null round.

        Releasing the null pulse at the first clock edge switches the
        pulser back to forwarding, wiping any bus request it drove, so
        the edge engine runs a General Error round before the message
        goes out — the fast path must not merge the two.
        """
        def drive(s):
            s.interrupt("a")
            s.post("a", Address.short(0x3), b"\x5A")

        edge, fast = run_both(three_plain, drive)
        assert_equivalent(edge, fast)
        assert [r.general_error for r in fast.transactions] == [True, False]

    def test_rx_buffer_overrun_abort(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)
            s.add_node("b", short_prefix=0x3, rx_buffer_bytes=4)

        edge, fast = run_both(
            build, lambda s: s.post("a", Address.short(0x3), bytes(range(10)))
        )
        assert_equivalent(edge, fast)
        result = fast.transactions[0]
        assert not result.ok
        assert result.control.name == "RX_ABORT"
        # The receiver keeps the byte-aligned prefix it latched.
        assert fast.node("b").inbox[0].payload == bytes(range(5))

    def test_runaway_watchdog(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)
            s.add_node("b", short_prefix=0x3, rx_buffer_bytes=4096)

        def drive(s):
            s.set_max_message_bytes(1024)
            s.post("a", Address.short(0x3), bytes(1100))

        edge, fast = run_both(build, drive, timeout_s=10)
        assert_equivalent(edge, fast)
        assert fast.transactions[0].error_reason == "runaway-message"

    def test_unmatched_address_naks(self):
        edge, fast = run_both(
            three_plain, lambda s: s.post("a", Address.short(0x9), b"\x01")
        )
        assert_equivalent(edge, fast)
        assert fast.transactions[0].control.name == "EOM_NAK"

    def test_ack_policy_nak(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)
            s.add_node("b", short_prefix=0x3, ack_policy=lambda p: False)

        edge, fast = run_both(
            build, lambda s: s.post("a", Address.short(0x3), b"\x01")
        )
        assert_equivalent(edge, fast)
        assert not fast.transactions[0].ok
        assert fast.node("b").inbox == []

    def test_back_to_back_burst(self):
        def drive(s):
            for i in range(6):
                s.post("m", Address.short(0x2, 5), bytes([i] * 8))

        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)

        edge, fast = run_both(build, drive)
        assert_equivalent(edge, fast)
        assert len(fast.transactions) == 6

    def test_arbitration_anchor(self):
        def drive(s):
            s.set_arbitration_anchor("b")
            s.post("a", Address.short(0x1), b"\x0A")

        assert_equivalent(*run_both(three_plain, drive))

    def test_mediator_added_after_members(self):
        """Ring positions follow insertion order; the mediator may sit
        anywhere on the ring.  Topological priority is measured from
        the mediator, so with the mediator inserted mid-ring the
        contested order flips relative to naive position-0 rooting —
        the fast path rebases its ring on the mediator to match.
        """
        def build(s):
            s.add_node("a", short_prefix=0x2)
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("b", short_prefix=0x3)

        def drive(s):
            s.post("a", Address.short(0x1), b"\x0A")
            s.post("b", Address.short(0x1), b"\x0B")

        edge, fast = run_both(build, drive)
        assert_equivalent(edge, fast)
        # 'b' is first downstream of the mediator in insertion order.
        assert [r.tx_node for r in fast.transactions] == [
            r.tx_node for r in edge.transactions
        ]

    def test_anchor_with_wakeup_round(self):
        """Anchored null rounds are NOT general errors in the report.

        The anchor (not the mediator) raises the no-winner interjection
        and drives the (0, 0) code, so the mediator's report carries
        general_error=False even though the control bits decode to
        GENERAL_ERROR — the fast path must mirror that nuance.
        """
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2, power_gated=True)
            s.add_node("b", short_prefix=0x3)

        def drive(s):
            s.set_arbitration_anchor("b")
            s.post("a", Address.short(0x3), b"\x11")

        edge, fast = run_both(build, drive)
        assert_equivalent(edge, fast)
        wakeup = fast.transactions[0]
        assert wakeup.control.name == "GENERAL_ERROR"
        assert not wakeup.general_error

    def test_anchor_reorders_race(self):
        def drive(s):
            s.set_arbitration_anchor("a")
            s.post("a", Address.short(0x1), b"\x0A")
            s.post("b", Address.short(0x1), b"\x0B")

        edge, fast = run_both(three_plain, drive)
        assert_equivalent(edge, fast)
        assert [r.tx_node for r in fast.transactions] == ["a", "b"]

    def test_sleeping_and_awake_racers(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)
            s.add_node("c", short_prefix=0x4, power_gated=True)

        def drive(s):
            s.post("a", Address.short(0x1), b"\x0A")
            s.post("c", Address.short(0x1), b"\x0C")

        assert_equivalent(*run_both(build, drive))

    def test_two_sleepers_share_one_wakeup_round(self):
        def drive(s):
            s.post("a", Address.short(0x1), b"\x0A")
            s.post("b", Address.short(0x1), b"\x0B")

        edge, fast = run_both(three_gated, drive)
        assert_equivalent(edge, fast)
        kinds = [r.general_error for r in fast.transactions]
        assert kinds == [True, False, False]

    def test_sleeper_to_sleeper_autosleep_suppression(self):
        assert_equivalent(*run_both(
            three_gated, lambda s: s.post("a", Address.short(0x3), b"\xAB")
        ))

    def test_no_autosleep_keeps_domains_on(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2, power_gated=True,
                       auto_sleep=False)

        def drive(s):
            s.send("m", Address.short(0x2), b"\x01")
            s.send("m", Address.short(0x2), b"\x02")

        edge, fast = run_both(build, drive)
        assert_equivalent(edge, fast)
        assert fast.node("a").is_fully_awake

    def test_zero_byte_payload(self):
        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)

        edge, fast = run_both(
            build, lambda s: s.post("m", Address.short(0x2), b"")
        )
        assert_equivalent(edge, fast)
        assert fast.transactions[0].clock_cycles == 11


class TestMidTransactionWakeRegression:
    """Regression for the null-transaction livelock.

    Posting to a power-gated node whose bus domain woke as an observer
    (bus on, layer off) used to raise null transactions forever: the
    layer sequencer only armed on a bus power-on transition.  The node
    shell now arms it directly when pulsing with the bus already up.
    """

    def _drive(self, system):
        system.post("a", Address.short(0x1), b"\x0A" * 8)
        system.sim.schedule(
            30_000_000,
            lambda: system.node("c").post(
                Message(dest=Address.short(0x1), payload=b"\x0C")
            ),
        )
        system.run_until_idle(timeout_s=1.0)

    def _build(self, mode):
        system = MBusSystem(mode=mode)
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("c", short_prefix=0x4, power_gated=True)
        system.build()
        return system

    def test_edge_engine_terminates(self):
        system = self._build("edge")
        self._drive(system)
        assert system.is_idle
        assert [r.general_error for r in system.transactions] == [
            False, True, False,
        ]
        assert system.transactions[-1].tx_node == "c"

    def test_fast_path_matches(self):
        edge = self._build("edge")
        self._drive(edge)
        fast = self._build("fast")
        self._drive(fast)
        assert_equivalent(edge, fast)


class TestFastPathScope:
    """The fast path states its limits instead of silently diverging."""

    def test_tracing_requires_edge_mode(self):
        with pytest.raises(ConfigurationError):
            MBusSystem(mode="fast", trace=True)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            MBusSystem(mode="warp")

    def test_third_party_interjection_requires_edge_mode(self):
        system = MBusSystem(mode="fast")
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.build()
        with pytest.raises(ProtocolError):
            system.node("a").request_interjection()

    def test_sleep_from_on_receive_raises_on_both_backends(self):
        """The bus is still busy while deliveries run (edge engines
        idle only after their control edges), so sleeping from an
        on_receive handler is mid-transaction on both backends."""
        outcomes = {}
        for mode in ("edge", "fast"):
            system = MBusSystem(mode=mode)
            system.add_mediator_node("m", short_prefix=0x1)
            system.add_node("a", short_prefix=0x2, power_gated=True,
                            auto_sleep=False)
            system.build()

            def try_sleep(node, _msg):
                try:
                    node.sleep()
                    outcomes[mode] = "slept"
                except ProtocolError:
                    outcomes[mode] = "raised"

            system.node("a").on_receive = try_sleep
            system.send("m", Address.short(0x2), b"\x01")
        assert outcomes == {"edge": "raised", "fast": "raised"}

    def test_fast_path_uses_far_fewer_events(self):
        def drive(s):
            for i in range(4):
                s.post("m", Address.short(0x2, 5), bytes([i] * 8))

        def build(s):
            s.add_mediator_node("m", short_prefix=0x1)
            s.add_node("a", short_prefix=0x2)

        edge, fast = run_both(build, drive)
        assert fast.sim.events_processed * 20 < edge.sim.events_processed


class TestSystemsOnFastPath:
    """The Section 6.3 workloads run unchanged on the fast backend."""

    def test_temperature_system_round(self):
        from repro.systems.sense_and_send import TemperatureSystem

        results = {}
        for mode in ("edge", "fast"):
            stack = TemperatureSystem(mode=mode)
            rounds = stack.run_round()
            results[mode] = (
                [(r.ok, r.tx_node, r.clock_cycles) for r in rounds],
                stack.radio_packets(),
            )
        assert results["fast"] == results["edge"]

    def test_imager_motion_event(self):
        from repro.systems.monitor_and_alert import ImagerSystem

        results = {}
        for mode in ("edge", "fast"):
            stack = ImagerSystem(rows=3, mode=mode)
            rounds = stack.motion_event()
            results[mode] = (
                [(r.ok, r.tx_node, r.general_error) for r in rounds],
                stack.received_rows(),
            )
        assert results["fast"] == results["edge"]
