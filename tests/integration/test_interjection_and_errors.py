"""Interjection, control codes, fault tolerance (Sections 4.8, 4.9, 7)."""

import pytest

from repro.core import Address, ControlCode, MBusSystem
from repro.core.constants import MBusTiming


class TestEndOfMessage:
    def test_eom_is_ack_on_success(self, three_node_system):
        result = three_node_system.send("cpu", Address.short(0x2, 5), b"\x01")
        assert result.control is ControlCode.EOM_ACK

    def test_receiver_naks_via_ack_policy(self):
        """At the end of a message the receiver ACKs or NAKs the
        entire message (Section 4.8)."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("nak", short_prefix=0x2, ack_policy=lambda p: False)
        result = system.send("m", Address.short(0x2, 5), b"\x01")
        assert result.control is ControlCode.EOM_NAK
        assert not result.ok

    def test_conditional_ack_policy_sees_payload(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node(
            "picky", short_prefix=0x2, ack_policy=lambda p: p[:1] == b"\xA5"
        )
        good = system.send("m", Address.short(0x2, 5), b"\xA5\x01")
        bad = system.send("m", Address.short(0x2, 5), b"\x5A\x01")
        assert good.ok and not bad.ok

    def test_unmatched_address_yields_nak(self, three_node_system):
        """A dead/absent receiver cannot ACK: deterministic NAK."""
        result = three_node_system.send("cpu", Address.short(0x9, 0), b"\x01")
        assert result.control is ControlCode.EOM_NAK


class TestReceiverAbort:
    def test_buffer_overrun_aborts_with_rx_abort(self):
        """The receiver may interject mid-message to indicate error,
        e.g. buffer overrun (Section 4.8)."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=4)
        result = system.send("m", Address.short(0x2, 5), bytes(32))
        assert result.control is ControlCode.RX_ABORT
        assert not result.ok

    def test_truncated_delivery_is_byte_aligned(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=4)
        system.send("m", Address.short(0x2, 5), bytes(range(32)))
        delivered = system.node("tiny").inbox[-1].payload
        assert len(delivered) >= 4
        assert delivered == bytes(range(len(delivered)))

    def test_minimum_progress_policy(self):
        """Section 7: a winner may send at least four bytes before
        being interrupted — even by an overrunning receiver."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=1)
        system.send("m", Address.short(0x2, 5), bytes(16))
        delivered = system.node("tiny").inbox[-1].payload
        assert len(delivered) >= 4


class TestRunawayWatchdog:
    def test_runaway_message_killed_by_mediator(self):
        """Section 7: the mediator imposes a maximum message length."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("big", short_prefix=0x2, rx_buffer_bytes=1 << 20)
        result = system.send("m", Address.short(0x2, 5), bytes(1200))
        assert result.general_error
        assert result.error_reason == "runaway-message"
        assert system.node("m").mediator.stats.runaway_aborts == 1

    def test_minimum_maximum_is_1kb(self):
        """MBus requires a minimum maximum length of 1 kB."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("big", short_prefix=0x2, rx_buffer_bytes=1 << 20)
        system.set_max_message_bytes(16)   # clamped up to 1024
        result = system.send("m", Address.short(0x2, 5), bytes(1000))
        assert result.ok

    def test_raised_limit_allows_long_messages(self):
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("big", short_prefix=0x2, rx_buffer_bytes=1 << 20)
        system.set_max_message_bytes(4096)
        result = system.send("m", Address.short(0x2, 5), bytes(2000))
        assert result.ok
        assert system.node("big").inbox[-1].payload == bytes(2000)


class TestFaultTolerance:
    def test_bus_never_locks_across_mixed_traffic(self):
        """Section 3: it must be impossible to enter a locked-up
        state; every scenario must return the bus to idle."""
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2, power_gated=True)
        system.add_node("b", short_prefix=0x3, rx_buffer_bytes=4)
        system.post("m", Address.short(0x2, 5), b"\x01")
        system.post("a", Address.short(0x3, 5), bytes(16))   # will abort
        system.post("m", Address.short(0x9, 0), b"")          # no receiver
        system.interrupt("a")
        system.run_until_idle()           # raises BusLockedError if hung
        assert system.is_idle

    def test_back_to_back_transactions(self, three_node_system):
        for i in range(10):
            result = three_node_system.send(
                "cpu", Address.short(0x2 + (i % 2), 5), bytes([i])
            )
            assert result.ok
        assert three_node_system.is_idle

    def test_interjection_statistics_recorded(self, three_node_system):
        three_node_system.send("cpu", Address.short(0x2, 5), b"\x01")
        mediator_stats = three_node_system.node("cpu").mediator.stats
        assert mediator_stats.interjection_sequences == 1
        assert three_node_system.node("radio").engine.stats.interjections_seen == 1


class TestClockSpeeds:
    @pytest.mark.parametrize("clock_hz", [10_000, 400_000, 6_670_000])
    def test_implemented_clock_range(self, clock_hz):
        """Section 6.3.2: the implemented clock is tunable from
        10 kHz to 6.67 MHz."""
        system = MBusSystem(timing=MBusTiming(clock_hz=clock_hz))
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        result = system.send("m", Address.short(0x2, 5), b"\xAA\x55")
        assert result.ok
        assert system.node("a").inbox[-1].payload == b"\xAA\x55"
