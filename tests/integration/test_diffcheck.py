"""Differential fuzzing harness: cross-backend agreement end to end.

A bounded, fixed-seed fuzz must come back clean (the CI smoke
contract), error symmetry must not count as divergence, and the
regression that the fuzzer actually caught — the mediator dropping
its own member's back-to-back re-request — must stay fixed.
"""

import json

import pytest

from repro.diffcheck import (
    check_conservation,
    check_fault_free_noop,
    check_replay_determinism,
    examine_scenario,
    fuzz,
    generate_scenario,
    load_repro,
    replay_repro,
)
from repro.diffcheck.checks import _run_scenario


def burst_scenario(n_members=3, source="m0", count=2, gap_s=0.0):
    return {
        "seed": 0,
        "system": {
            "name": "probe",
            "clock_hz": 400000.0,
            "nodes": (
                [{"name": "m0", "short_prefix": 1, "is_mediator": True}]
                + [
                    {"name": f"n{i + 1}", "short_prefix": 2 + i}
                    for i in range(n_members)
                ]
            ),
        },
        "workload": {
            "kind": "burst",
            "source": source,
            "dest": {"short_prefix": 2, "full_prefix": None, "fu_id": 10},
            "payload": "77",
            "count": count,
            "gap_s": gap_s,
        },
        "faults": None,
    }


class TestBoundedFuzz:
    """The smoke contract: fixed seeds, bounded count, zero divergent."""

    def test_seeded_fuzz_is_clean(self, tmp_path):
        report = fuzz(count=8, seed=11, repro_dir=str(tmp_path))
        assert report.n_scenarios == 8
        assert report.ok, report.summary()
        assert report.exit_code == 0
        assert list(tmp_path.iterdir()) == []   # no repros written

    def test_fuzz_report_shape(self, tmp_path):
        report = fuzz(count=3, seed=11, repro_dir=str(tmp_path))
        document = report.to_dict()
        assert document["n_scenarios"] == 3
        assert document["n_divergent"] == 0
        assert "0 divergent" in report.summary()


class TestMediatorWinddownRegression:
    """Fuzz finding: the mediator's member posting back-to-back lost
    its second request during the previous transaction's wind-down on
    systems with >= 3 other members, locking the bus (edge engine
    only — the fast path answered).  Found by the differential
    fuzzer; must stay fixed."""

    @pytest.mark.parametrize("n_members", [2, 3, 4])
    @pytest.mark.parametrize("count", [2, 3])
    def test_mediator_member_back_to_back(self, n_members, count):
        scenario = burst_scenario(n_members=n_members, count=count)
        assert examine_scenario(scenario, invariants=False) == []
        edge = _run_scenario(scenario, "edge")
        assert len(edge.transaction_signatures()) == count

    def test_member_source_still_agrees(self):
        assert examine_scenario(
            burst_scenario(source="n1"), invariants=False
        ) == []


class TestErrorSymmetry:
    def test_consistent_refusal_is_not_divergence(self):
        # A chaos workload raises the same exception on both
        # backends: consistent semantics, not a divergence.
        scenario = burst_scenario()
        scenario["workload"] = {"kind": "chaos", "behavior": "raise"}
        assert examine_scenario(scenario, invariants=False) == []

    def test_replay_determinism_covers_erroring_scenarios(self):
        scenario = burst_scenario()
        scenario["workload"] = {"kind": "chaos", "behavior": "raise"}
        assert check_replay_determinism(scenario, "edge") == []


class TestInvariants:
    def test_fault_free_noop_on_known_good_scenario(self):
        assert check_fault_free_noop(burst_scenario(), "edge") == []

    def test_conservation_on_known_good_scenario(self):
        scenario = burst_scenario()
        report = _run_scenario(scenario, "edge")
        assert check_conservation(scenario, report) == []

    def test_conservation_flags_invented_payloads(self):
        scenario = burst_scenario()
        report = _run_scenario(scenario, "edge")
        report.deliveries.append(("n1", b"\xde\xad"))
        problems = check_conservation(scenario, report)
        assert any("never posted" in p for p in problems)

    def test_faulty_scenarios_replay_deterministically(self):
        # Find a generated faulty scenario and pin its determinism.
        for seed in range(60):
            scenario = generate_scenario(seed, faults_fraction=1.0)
            if scenario["faults"] is not None:
                assert check_replay_determinism(scenario, "edge") == []
                return
        pytest.fail("no faulty scenario generated in 60 seeds")


class TestMinimizedRepros:
    def test_repro_roundtrip_and_replay(self, tmp_path):
        scenario = burst_scenario()
        from repro.diffcheck import write_repro

        path = write_repro(scenario, ["synthetic divergence"], tmp_path)
        document = load_repro(path)
        assert document["divergences"] == ["synthetic divergence"]
        # Replaying the (healthy) scenario reports no divergence --
        # exactly what a repro of a since-fixed bug should say.
        assert replay_repro(document) == []

    def test_fuzz_writes_minimized_repro_for_real_divergence(
        self, tmp_path, monkeypatch
    ):
        # Force a divergence by breaking the fast path's wake counts
        # through the public projection: pretend fast dropped a
        # transaction.  Monkeypatching the projection (not the
        # engines) keeps this deterministic and cheap.
        import repro.diffcheck.checks as checks
        import repro.diffcheck.harness as harness

        real_diff = checks.diff_reports

        def lying_diff(edge, fast):
            return real_diff(edge, fast) + ["synthetic: backends differ"]

        monkeypatch.setattr(harness, "diff_reports", lying_diff)
        scenario = burst_scenario(n_members=3, count=4)
        report = fuzz(
            scenarios=[scenario],
            repro_dir=str(tmp_path),
            invariants=False,
        )
        assert not report.ok
        assert report.exit_code == 1
        [outcome] = report.divergent
        assert outcome.repro_path is not None
        document = load_repro(outcome.repro_path)
        assert document["minimized"] is True
        # The minimizer shrank the burst and dropped spare members
        # (every reduction still "fails" under the lying projection).
        minimized = document["scenario"]
        assert minimized["workload"]["count"] == 1
        assert len(minimized["system"]["nodes"]) == 2
