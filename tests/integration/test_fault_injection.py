"""End-to-end fault injection: determinism, recovery, reliability analytics.

The acceptance bars for the fault subsystem:

* same seed ⇒ identical ``ReliabilityReport``;
* an empty fault set is a perfect no-op — identical transaction
  signatures and delivery sets to a plain ``run()`` on both backends;
* non-empty faults force the edge backend (``auto``) and reject an
  explicit ``fast``;
* each primitive produces its paper-grounded failure mode and the bus
  always recovers (idle again, or recorded as desynchronised).
"""

import pytest

from repro.core import Address, MBusSystem
from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.resumable import ResumableReceiver, ResumableSender
from repro.faults import (
    BitFlip,
    ClockDrift,
    DropEdge,
    FaultInjector,
    FaultSpec,
    NodePowerLoss,
    RandomGlitches,
    StuckAt,
    WireGlitch,
)
from repro.scenario import Burst, NodeSpec, OneShot, SystemSpec, run

PAYLOAD = bytes(range(8))


def three_node_spec(**overrides) -> SystemSpec:
    return SystemSpec(
        name="faults-int",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
            NodeSpec("b", short_prefix=0x3),
        ),
        **overrides,
    )


def one_shot(source="m", prefix=0x2, at_s=0.0):
    return OneShot(source, Address.short(prefix, 5), PAYLOAD, at_s=at_s)


class TestBackendSelection:
    def test_auto_forces_edge_under_faults(self):
        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec((ClockDrift("m", ppm=10.0),)),
        )
        assert report.backend == "edge"

    def test_explicit_fast_with_faults_is_an_error(self):
        with pytest.raises(ConfigurationError, match="edge-accurate"):
            run(
                three_node_spec(),
                one_shot(),
                backend="fast",
                faults=FaultSpec((ClockDrift("m", ppm=10.0),)),
            )

    def test_empty_fault_set_keeps_fast_auto_selection(self):
        report = run(three_node_spec(), one_shot(), faults=FaultSpec())
        assert report.backend == "fast"
        assert report.reliability is not None
        assert report.reliability.recovery_rate == 1.0

    def test_direct_injector_rejects_fast_system(self):
        spec = three_node_spec()
        system = spec.build(mode="fast")
        with pytest.raises(ConfigurationError, match="edge-accurate"):
            FaultInjector(system, FaultSpec((ClockDrift("m", ppm=1.0),)), spec)


class TestNoOpEquivalence:
    """An empty fault set must not perturb either backend."""

    @pytest.mark.parametrize("backend", ["edge", "fast"])
    def test_empty_faults_identical_to_plain_run(self, backend):
        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=4)
        plain = run(spec, workload, backend=backend)
        faulted = run(spec, workload, backend=backend, faults=FaultSpec())
        assert (
            plain.transaction_signatures() == faulted.transaction_signatures()
        )
        assert plain.delivery_set() == faulted.delivery_set()
        assert plain.events_processed == faulted.events_processed

    def test_empty_fault_reports_agree_across_backends(self):
        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=4)
        edge = run(spec, workload, backend="edge", faults=FaultSpec())
        fast = run(spec, workload, backend="fast", faults=FaultSpec())
        assert edge.reliability == fast.reliability


class TestDeterminism:
    def test_same_seed_identical_reliability_report(self):
        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=4)
        faults = FaultSpec(
            (RandomGlitches(seed=3, rate_hz=8_000.0, duration_s=0.002),)
        )
        one = run(spec, workload, faults=faults)
        two = run(spec, workload, faults=faults)
        assert one.reliability == two.reliability
        assert one.reliability.to_dict() == two.reliability.to_dict()
        assert (
            one.transaction_signatures() == two.transaction_signatures()
        )

    def test_different_seed_changes_the_schedule(self):
        spec = three_node_spec()
        a = FaultSpec((RandomGlitches(seed=1, rate_hz=8_000.0),)).compile(spec)
        b = FaultSpec((RandomGlitches(seed=2, rate_hz=8_000.0),)).compile(spec)
        assert a != b


class TestPrimitiveOutcomes:
    def test_bit_flip_corrupts_but_transaction_completes(self):
        # 100 us lands mid-payload of an 8-byte message at 400 kHz.
        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec((BitFlip("m", at_s=100e-6, duration_s=5e-6),)),
        )
        rel = report.reliability
        assert rel.corrupted_deliveries == 1
        assert rel.intact_deliveries == 0
        assert rel.outcomes[0].classification == "corrupted"
        delivered = report.deliveries[0][1]
        assert delivered != PAYLOAD and len(delivered) == len(PAYLOAD)

    def test_glitch_storm_kills_transfer_and_bus_recovers(self):
        """>= threshold spurious DATA toggles mid-transfer saturate the
        interjection detectors; the transfer dies, the mediator's
        machinery cleans up, and a queued message still goes out."""
        spec = three_node_spec()
        workload = one_shot() + OneShot(
            "m", Address.short(0x3, 5), PAYLOAD, at_s=0.025
        )
        report = run(
            spec,
            workload,
            faults=FaultSpec(
                (WireGlitch("a", at_s=100e-6, edges=7, width_s=100e-9),)
            ),
        )
        rel = report.reliability
        assert rel.failed_transactions >= 1
        assert rel.outcomes[0].classification == "killed"
        # The later message is untouched: the bus recovered.
        assert ("b", PAYLOAD) in [
            (name, payload) for name, payload in report.deliveries
        ]
        assert rel.bus_idle

    def test_stuck_data_window_disturbs_then_releases(self):
        spec = three_node_spec()
        workload = one_shot() + OneShot(
            "m", Address.short(0x3, 5), PAYLOAD, at_s=0.025
        )
        report = run(
            spec,
            workload,
            faults=FaultSpec(
                (StuckAt("m", at_s=80e-6, duration_s=40e-6, value=0),)
            ),
        )
        rel = report.reliability
        assert rel.intact_deliveries < rel.expected_deliveries
        # After release the wire follows its driver again.
        assert ("b", PAYLOAD) in report.deliveries

    def test_dropped_clk_edges_recorded_as_desync(self):
        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec(
                (DropEdge("m", at_s=100e-6, count=2, wire="clk"),)
            ),
        )
        rel = report.reliability
        assert rel.edges_dropped == 2
        assert rel.lost_deliveries == 1
        assert not rel.bus_idle   # members resync on the next transaction

    def test_small_clock_drift_is_tolerated(self):
        """Source-synchronous edges absorb oscillator skew: ±2000 ppm
        changes nothing at message granularity."""
        faults = FaultSpec(
            (ClockDrift("m", ppm=2_000.0), ClockDrift("a", ppm=-2_000.0))
        )
        report = run(three_node_spec(), one_shot(), faults=faults)
        rel = report.reliability
        assert rel.recovery_rate == 1.0
        assert [o.classification for o in rel.outcomes] == [
            "ambient", "ambient"
        ]

    def test_rx_power_loss_kills_delivery(self):
        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec((NodePowerLoss("a", at_s=100e-6),)),
        )
        rel = report.reliability
        assert rel.failed_transactions == 1
        assert rel.intact_deliveries == 0
        assert rel.outcomes[0].classification == "killed"

    def test_tx_power_loss_retransmits_after_restore(self):
        """The queued message survives the brown-out (retained layer
        memory) and is retransmitted once the node re-wakes — the
        Section 3 'cannot enter a locked-up state' scenario."""
        report = run(
            three_node_spec(),
            one_shot(source="b", prefix=0x2),
            faults=FaultSpec(
                (NodePowerLoss("b", at_s=150e-6, duration_s=300e-6),)
            ),
        )
        rel = report.reliability
        assert rel.failed_transactions >= 1
        assert rel.intact_deliveries == rel.expected_deliveries == 1
        assert rel.bus_idle

    def test_idle_glitch_causes_spurious_wakeup(self):
        """A falling edge on an idle DATA ring self-starts the mediator
        with no requester: a null transaction / general error."""
        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec(
                (WireGlitch("a", at_s=0.02, edges=1),)
            ),
        )
        rel = report.reliability
        assert rel.general_errors == 1
        assert rel.outcomes[0].classification == "spurious_wakeup"
        assert rel.intact_deliveries == 1   # the real message was earlier

    def test_power_loss_requires_edge_backend_and_member_node(self):
        spec = three_node_spec()
        fast = spec.build(mode="fast")
        with pytest.raises(ProtocolError, match="edge"):
            fast.node("a").power_loss()
        edge = spec.build(mode="edge")
        with pytest.raises(ProtocolError, match="mediator"):
            edge.node("m").power_loss()


class TestNetRestoration:
    def test_faulted_nets_restored_after_run(self):
        """finalize() must undo the class swap so a report's retained
        system keeps simulating on the plain hot path."""
        from repro.sim.signals import Net

        report = run(
            three_node_spec(),
            one_shot(),
            faults=FaultSpec(
                (StuckAt("m", at_s=80e-6, duration_s=40e-6, value=0),)
            ),
        )
        system = report.system
        for node in system.nodes:
            assert type(node.dout) is Net
            assert type(node.clkout) is Net
        # The retained system still runs clean traffic.
        result = system.send("m", Address.short(0x3, 5), PAYLOAD)
        assert result.ok


class TestReportSerialization:
    def test_run_report_records_workload_and_faults(self):
        """Satellite: a report dict is reproducible from itself —
        spec, workload (with its seed) and faults all round-trip."""
        from repro.faults import load_faults
        from repro.scenario import workload_from_dict

        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=2)
        faults = FaultSpec((RandomGlitches(seed=42, rate_hz=1_000.0),))
        report = run(spec, workload, faults=faults)
        document = report.to_dict()
        assert SystemSpec.from_dict(document["spec"]) == spec
        assert workload_from_dict(document["workload"]) == workload
        assert load_faults(document["faults"]) == faults
        assert document["workload"]["kind"] == "burst"
        assert document["faults"]["faults"][0]["seed"] == 42
        assert (
            document["reliability"]["recovery_rate"]
            == report.reliability.recovery_rate
        )

    def test_plain_run_serializes_workload_without_faults(self):
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=2)
        document = run(three_node_spec(), workload).to_dict()
        assert document["workload"]["count"] == 2
        assert document["faults"] is None
        assert document["reliability"] is None


class TestFaultCampaign:
    def test_grid_over_fault_rates(self):
        from repro.campaign import Campaign

        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=4)
        results = Campaign(
            spec,
            workload,
            grid={"rate_hz": [0.0, 8_000.0]},
            faults=lambda p: FaultSpec(
                (RandomGlitches(seed=5, rate_hz=p["rate_hz"],
                                duration_s=0.001),)
            ),
        ).run()
        assert len(results) == 2
        clean, noisy = results
        assert clean.reliability["recovery_rate"] == 1.0
        assert clean.reliability["performed_injections"] == 0
        assert noisy.reliability["performed_injections"] > 0

    def test_unknown_key_without_any_factory_is_an_error(self):
        from repro.campaign import Campaign

        spec = three_node_spec()
        workload = Burst("m", Address.short(0x2, 5), PAYLOAD, count=1)
        with pytest.raises(ConfigurationError, match="factory"):
            Campaign(
                spec,
                workload,
                grid={"rate_hz": [1.0]},
                faults=FaultSpec(),
            ).trials()


class TestResumableRecovery:
    def test_interjection_storm_recovered_by_resumable_transfer(self):
        """Satellite: an injected fault triggers interjection-based
        recovery on a resumable stream (Sections 4.9 + 7): the killed
        chunk is resent from the conservative progress estimate and
        the receiver reassembles the full payload."""
        spec = SystemSpec(
            name="resumable-faults",
            clock_hz=400_000.0,
            nodes=(
                NodeSpec("m", short_prefix=0x1, is_mediator=True),
                NodeSpec("a", short_prefix=0x2, rx_buffer_bytes=4096),
                NodeSpec("b", short_prefix=0x3, rx_buffer_bytes=4096),
            ),
        )
        system = spec.build(mode="edge")
        receiver = ResumableReceiver(system.node("a"))
        sender = ResumableSender(system, "b")
        # A detector-saturating storm on the transmitter's output,
        # landing mid-payload of the first chunk.
        storm = FaultSpec(
            (WireGlitch("b", at_s=600e-6, edges=8, width_s=100e-9),)
        )
        injector = FaultInjector(system, storm, spec)
        injector.arm()
        payload = bytes(range(256)) * 2          # 512 B, several chunks
        outcomes_before = len(system.node("b").results)
        stream_id = sender.send(0x2, payload, chunk_bytes=132)
        injector.finalize()
        assert receiver.finish(stream_id) == payload
        outcomes = system.node("b").results[outcomes_before:]
        assert any(not o.success for o in outcomes), (
            "the storm must have killed at least one chunk"
        )
        assert len(outcomes) > 4                  # 4 clean chunks + retries
        detector = system.node("a").detector
        assert detector.detections > 0
        assert system.is_idle
