"""Systematic cross-validation: edge simulator vs analytic model.

Sweeps payload lengths, address forms, clock speeds, and node counts,
asserting that the edge-accurate simulator's clocked cycle counts and
durations agree with the paper's closed forms everywhere.
"""

import pytest

from repro.core import Address, MBusSystem, TransactionModel
from repro.core.constants import INTERJECTION_CYCLES, MBusTiming
from repro.core.monitor import ProtocolMonitor


def _roundtrip(n_bytes, full=False, clock_hz=400_000, n_members=2):
    system = MBusSystem(timing=MBusTiming(clock_hz=clock_hz))
    system.add_mediator_node("m", short_prefix=0x1)
    for i in range(n_members):
        system.add_node(
            f"n{i}", short_prefix=0x2 + i, full_prefix=0x10000 + i,
            rx_buffer_bytes=8192,
        )
    if full:
        dest = Address.full(0x10000, 5)
    else:
        dest = Address.short(0x2, 5)
    if n_bytes > 1000:
        system.set_max_message_bytes(n_bytes + 64)
    result = system.send("m", dest, bytes(n_bytes))
    return system, result


class TestCycleAgreement:
    @pytest.mark.parametrize("n_bytes", [0, 1, 3, 7, 16, 64, 180])
    def test_short_address_sweep(self, n_bytes):
        model = TransactionModel()
        system, result = _roundtrip(n_bytes)
        clocked = result.clock_cycles + result.control_cycles
        assert clocked + INTERJECTION_CYCLES == model.total_cycles(n_bytes)
        assert system.node("n0").inbox[-1].payload == bytes(n_bytes)

    @pytest.mark.parametrize("n_bytes", [0, 8, 32])
    def test_full_address_sweep(self, n_bytes):
        model = TransactionModel()
        system, result = _roundtrip(n_bytes, full=True)
        clocked = result.clock_cycles + result.control_cycles
        assert clocked + INTERJECTION_CYCLES == model.total_cycles(
            n_bytes, full_address=True
        )

    @pytest.mark.parametrize("clock_hz", [100_000, 400_000, 1_000_000])
    def test_duration_tracks_clock(self, clock_hz):
        """Data-phase wall time scales exactly with the clock period."""
        _, result = _roundtrip(16, clock_hz=clock_hz)
        period_s = 1.0 / clock_hz
        clocked_s = (result.clock_cycles + result.control_cycles) * period_s
        # Total duration = clocked time + mediator wakeup + the
        # (fast, ring-delay-scaled) interjection sequence.
        assert clocked_s < result.duration_ps * 1e-12 < clocked_s + 3 * period_s

    @pytest.mark.parametrize("n_members", [1, 3, 6])
    def test_population_does_not_change_cycles(self, n_members):
        """Cycle counts are population independent; only propagation
        (wall time) grows with the ring."""
        results = [_roundtrip(8, n_members=n)[1] for n in (1, n_members)]
        assert results[0].clock_cycles == results[1].clock_cycles

    def test_kilobyte_message_cycles(self):
        """Length-independent overhead at the 1 kB scale."""
        model = TransactionModel()
        system, result = _roundtrip(1000)
        clocked = result.clock_cycles + result.control_cycles
        assert clocked + INTERJECTION_CYCLES == model.total_cycles(1000)
        ProtocolMonitor(system).assert_clean()


class TestEnergyAgreement:
    def test_edge_sim_energy_matches_formula(self):
        """Feeding the edge sim's cycle count into the Section 6.2
        formula reproduces the analytic message energy exactly."""
        from repro.power import SimulatedEnergyModel

        model = TransactionModel()
        sim_model = SimulatedEnergyModel()
        system, result = _roundtrip(8, n_members=2)
        n_chips = len(system.nodes)
        cycles = result.clock_cycles + result.control_cycles + INTERJECTION_CYCLES
        edge_energy = cycles * sim_model.pj_per_bit_per_chip * n_chips
        assert edge_energy == pytest.approx(
            model.message_energy_pj(8, n_chips)
        )

    def test_activity_scales_with_payload(self):
        """CV^2 wire activity grows linearly with message length."""
        small = _roundtrip(4)[0].wire_activity()
        large = _roundtrip(64)[0].wire_activity()
        assert sum(large.values()) > 2 * sum(small.values())
