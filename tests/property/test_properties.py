"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.addresses import Address
from repro.core.messages import bits_to_bytes, bytes_to_bits, pad_to_byte
from repro.core.transaction import TransactionModel
from repro.timing.overhead import OVERHEAD_CURVES, overhead_bits
from repro.timing.throughput import (
    parallel_goodput_bps,
    transaction_cycles,
    transaction_rate_hz,
)


class TestBitPackingProperties:
    @given(st.binary(max_size=512))
    def test_bits_roundtrip(self, payload):
        assert bits_to_bytes(bytes_to_bits(payload)) == payload

    @given(st.binary(min_size=1, max_size=256), st.integers(1, 7))
    def test_trailing_bits_always_discarded(self, payload, extra):
        bits = bytes_to_bits(payload) + (1,) * extra
        assert bits_to_bytes(bits) == payload

    @given(st.lists(st.integers(0, 1), max_size=200).map(tuple))
    def test_padding_is_byte_aligned_and_bounded(self, bits):
        padded = pad_to_byte(bits)
        assert len(padded) % 8 == 0
        assert 0 <= len(padded) - len(bits) <= 7
        assert padded[: len(bits)] == bits


class TestAddressProperties:
    @given(st.integers(0, 0xE), st.integers(0, 0xF))
    def test_short_address_roundtrip(self, prefix, fu_id):
        address = Address.short(prefix, fu_id)
        assert Address.decode(address.encode(), 8) == address

    @given(st.integers(0, (1 << 20) - 1), st.integers(0, 0xF))
    def test_full_address_roundtrip(self, prefix, fu_id):
        address = Address.full(prefix, fu_id)
        assert Address.decode(address.encode(), 32) == address

    @given(st.integers(0, (1 << 20) - 1), st.integers(0, 0xF))
    def test_full_address_bits_carry_marker(self, prefix, fu_id):
        bits = Address.full(prefix, fu_id).bits()
        assert len(bits) == 32
        assert bits[:4] == (1, 1, 1, 1)

    @given(st.integers(0, 0xE), st.integers(0, 0xF))
    def test_short_and_full_never_collide(self, prefix, fu_id):
        """A short address's first nibble is never 0xF, so receivers
        can always distinguish the two forms after 4 bits."""
        bits = Address.short(prefix, fu_id).bits()
        assert bits[:4] != (1, 1, 1, 1)


class TestTransactionModelProperties:
    @given(st.integers(0, 100_000), st.booleans())
    def test_overhead_constant_in_length(self, n_bytes, full):
        model = TransactionModel()
        overhead = model.total_cycles(n_bytes, full) - 8 * n_bytes
        assert overhead == (43 if full else 19)

    @given(
        st.integers(0, 10_000),
        st.integers(2, 14),
        st.booleans(),
    )
    def test_energy_positive_and_linear_in_chips(self, n_bytes, chips, full):
        model = TransactionModel()
        energy = model.message_energy_pj(n_bytes, chips, full)
        per_chip = model.message_energy_pj(n_bytes, 2, full) / 2
        assert energy > 0
        assert energy == chips * per_chip

    @given(st.integers(1, 2_000))
    def test_goodput_energy_monotone_decreasing(self, n_bytes):
        model = TransactionModel()
        a = model.cost(n_bytes).energy_per_goodput_bit_pj
        b = model.cost(n_bytes + 1).energy_per_goodput_bit_pj
        assert b <= a


class TestOverheadProperties:
    @given(
        st.sampled_from(sorted(OVERHEAD_CURVES)),
        st.integers(0, 4_000),
    )
    def test_overhead_non_negative_and_monotone(self, bus, n):
        assert overhead_bits(bus, n) >= 0
        assert overhead_bits(bus, n + 1) >= overhead_bits(bus, n)

    @given(st.integers(10, 100_000))
    def test_mbus_beats_i2c_beyond_crossover(self, n):
        assert overhead_bits("MBus (short)", n) < overhead_bits("I2C", n)

    @given(st.integers(0, 9))
    def test_i2c_wins_or_ties_below_crossover(self, n):
        assert overhead_bits("I2C", n) <= overhead_bits("MBus (short)", n)


class TestThroughputProperties:
    @given(st.integers(0, 1_000), st.integers(1, 8))
    def test_more_wires_never_slower(self, n_bytes, wires):
        assert transaction_cycles(n_bytes, data_wires=wires + 1) <= (
            transaction_cycles(n_bytes, data_wires=wires)
        )

    @given(st.integers(1, 1_000), st.integers(1, 8))
    def test_speedup_bounded_by_wire_count(self, n_bytes, wires):
        serial = parallel_goodput_bps(n_bytes, 1)
        striped = parallel_goodput_bps(n_bytes, wires)
        assert striped <= wires * serial + 1e-9

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_rate_ordering_follows_length(self, a, b):
        ra = transaction_rate_hz(400_000, a)
        rb = transaction_rate_hz(400_000, b)
        if a < b:
            assert ra > rb


class TestEndToEndDeliveryProperty:
    """The big one: arbitrary payloads cross the edge-accurate ring
    bit-exactly.  Kept small per-example for speed."""

    @settings(max_examples=12, deadline=None)
    @given(st.binary(min_size=0, max_size=24), st.integers(0, 15))
    def test_any_payload_any_fu_delivered(self, payload, fu_id):
        from repro.core import MBusSystem

        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        result = system.send("m", Address.short(0x2, fu_id), payload)
        assert result.ok
        received = system.node("a").inbox[-1]
        assert received.payload == payload
        assert received.dest.fu_id == fu_id

    @settings(max_examples=8, deadline=None)
    @given(st.binary(min_size=1, max_size=16))
    def test_gated_receiver_equivalent_to_awake(self, payload):
        """Power-oblivious: the delivered bytes are identical whether
        the receiver was gated or awake."""
        from repro.core import MBusSystem

        results = {}
        for gated in (False, True):
            system = MBusSystem()
            system.add_mediator_node("m", short_prefix=0x1)
            system.add_node("a", short_prefix=0x2, power_gated=gated)
            result = system.send("m", Address.short(0x2, 5), payload)
            assert result.ok
            results[gated] = system.node("a").inbox[-1].payload
        assert results[False] == results[True] == payload
