"""Property-based tests of arbitration on the edge-accurate ring.

The strongest invariant in the paper's design: for ANY subset of
requesters, any anchor position, and any mix of priority flags,
arbitration elects exactly one winner, everyone eventually transmits,
and every payload arrives intact.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Address, MBusSystem
from repro.core.monitor import ProtocolMonitor


def _system(n_members):
    system = MBusSystem()
    system.add_mediator_node("m", short_prefix=0x1)
    for i in range(n_members):
        system.add_node(f"n{i}", short_prefix=0x2 + i)
    system.build()
    return system


class TestArbitrationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_members=st.integers(2, 5),
        requesters=st.sets(st.integers(0, 4), min_size=1, max_size=5),
        priorities=st.sets(st.integers(0, 4)),
    )
    def test_any_contention_resolves_completely(
        self, n_members, requesters, priorities
    ):
        requesters = {r for r in requesters if r < n_members}
        if not requesters:
            requesters = {0}
        system = _system(n_members)
        for r in sorted(requesters):
            system.post(
                f"n{r}",
                Address.short(0x1, 5),
                bytes([r]),
                priority=(r in priorities),
            )
        system.run_until_idle()
        # Exactly one transaction per requester; all succeed.
        winners = [t.tx_node for t in system.transactions]
        assert sorted(winners) == sorted(f"n{r}" for r in requesters)
        assert all(t.ok for t in system.transactions)
        # Every payload landed at the mediator intact.
        payloads = sorted(m.payload for m in system.node("m").inbox)
        assert payloads == sorted(bytes([r]) for r in requesters)
        ProtocolMonitor(system).assert_clean()

    @settings(max_examples=10, deadline=None)
    @given(
        anchor=st.integers(0, 3),
        requesters=st.sets(st.integers(0, 3), min_size=1, max_size=4),
    )
    def test_anchored_arbitration_still_total(self, anchor, requesters):
        """Mutable priority never breaks completeness."""
        system = _system(4)
        system.set_arbitration_anchor(f"n{anchor}")
        for r in sorted(requesters):
            system.post(f"n{r}", Address.short(0x1, 5), bytes([0x40 + r]))
        system.run_until_idle()
        winners = sorted(t.tx_node for t in system.transactions)
        assert winners == sorted(f"n{r}" for r in requesters)
        assert all(t.ok for t in system.transactions)
        ProtocolMonitor(system).assert_clean()

    @settings(max_examples=10, deadline=None)
    @given(
        anchor=st.integers(0, 3),
        first=st.integers(0, 3),
        second=st.integers(0, 3),
    )
    def test_anchor_defines_win_order(self, anchor, first, second):
        """The first requester downstream of the anchor wins."""
        if first == second:
            return
        system = _system(4)
        system.set_arbitration_anchor(f"n{anchor}")
        system.post(f"n{first}", Address.short(0x1, 5), b"\x01")
        system.post(f"n{second}", Address.short(0x1, 5), b"\x02")
        system.run_until_idle()
        winner = system.transactions[0].tx_node

        def distance(node_index):
            # Ring order: m, n0, n1, n2, n3; distance downstream of
            # the anchor (anchor itself = 0, then increasing).
            return (node_index - anchor) % 4

        expected = f"n{min((first, second), key=distance)}"
        assert winner == expected
