"""Section 6.6: bitbanging MBus on an MSP430.

Worst-case edge-service path of 20 instructions / 65 cycles including
interrupt entry and exit; at 8 MHz that supports a 120 kHz MBus
clock.  Wikipedia's I2C bitbang has a comparable longest path
(21 instructions).
"""

import pytest

from repro.analysis import render_check
from repro.bitbang import (
    analyze_i2c_bitbang,
    analyze_mbus_bitbang,
    mbus_edge_isr,
)


def test_sec66_mbus_bitbang(benchmark, report):
    analysis = benchmark(analyze_mbus_bitbang)
    i2c = analyze_i2c_bitbang()
    checks = [
        ("worst path (instructions)", 20, analysis.worst_path_instructions, 0),
        ("worst path (cycles)", 65, analysis.worst_path_cycles, 0),
        ("supported MBus clock (kHz)", 120, analysis.supported_bus_clock_hz / 1e3, 0),
        ("I2C bitbang longest path (instr)", 21, i2c.worst_path_instructions, 0),
    ]
    report(
        "\n".join(
            render_check(name, paper, ours, ours == paper)
            for name, paper, ours in [(n, p, o) for n, p, o, _ in checks]
        )
    )
    for name, paper, ours, tol in checks:
        assert ours == pytest.approx(paper, abs=tol), name
    # Response time: 65 cycles at 8 MHz ~= 8.1 us.
    assert analysis.response_time_us == pytest.approx(8.125, abs=0.01)
    # Four GPIO pins, two with edge interrupts: encoded in the model's
    # single edge ISR servicing both CLK and DATA events.
    isr = mbus_edge_isr()
    mnemonics = [i.mnemonic for i in isr.flatten_worst_path()]
    assert any("P1" in m for m in mnemonics)   # MMIO port accesses


def test_sec66_scaling_with_cpu_clock(benchmark, report):
    """The achievable bus clock scales with the MCU clock."""

    def run():
        return {
            mhz: analyze_mbus_bitbang(cpu_clock_hz=mhz * 1e6).supported_bus_clock_hz
            for mhz in (1, 8, 16, 25)
        }

    rates = benchmark(run)
    report(
        "\n".join(
            f"  {mhz:>2} MHz MCU -> {khz / 1e3:.0f} kHz MBus clock"
            for mhz, khz in sorted(rates.items())
        )
    )
    assert rates[8] == 120_000
    assert rates[16] == pytest.approx(240_000, abs=10_000)
    values = [rates[m] for m in sorted(rates)]
    assert values == sorted(values)
