"""Table 1: feature comparison matrix.

Regenerates the feature matrix and asserts the table's conclusion:
only MBus satisfies every critical requirement of a micro-scale
interconnect.
"""

from repro.analysis import format_table
from repro.baselines.features import (
    FEATURE_MATRIX,
    buses_satisfying_all_critical,
)


def _build_table():
    rows = []
    for name, f in FEATURE_MATRIX.items():
        rows.append(
            (
                name,
                f"{f.io_pads(2)}/{f.io_pads(14)}",
                f.standby_power.value,
                f.active_power.value,
                "Yes" if f.synthesizable else "No",
                f.global_unique_addresses or "-",
                "Yes" if f.multi_master else "No",
                "Yes" if f.broadcast else "No",
                "Yes" if f.power_aware else "No",
                "Yes" if f.hardware_acks else "No",
                f.overhead_note,
            )
        )
    return rows


def test_table1_feature_matrix(benchmark, report):
    rows = benchmark(_build_table)
    report(
        format_table(
            [
                "Bus", "Pads(2/14)", "Standby", "Active", "Synth",
                "Addresses", "MultiMaster", "Bcast", "PowerAware",
                "HW ACKs", "Overhead",
            ],
            rows,
            title="Table 1 - Feature Comparison Matrix (reproduced)",
        )
    )
    # The table's conclusion: only MBus satisfies all critical features.
    assert buses_satisfying_all_critical() == ["MBus"]
    # Spot checks against the published table.
    mbus = FEATURE_MATRIX["MBus"]
    assert mbus.io_pads(14) == 4
    assert mbus.global_unique_addresses == 2 ** 24
    assert FEATURE_MATRIX["I2C"].global_unique_addresses == 128
    assert FEATURE_MATRIX["SPI"].io_pads(11) == 14
