"""Figure 14: saturating transaction rate.

rate = clock / (19 + 8n) across the four plotted clock speeds
(100 kHz, 400 kHz, 1 MHz, 7.1 MHz).  Shape claims: the rate falls
with payload length, scales linearly with clock speed, and what
matters is aggregate transaction rate, not node count (two nodes at
1 Hz equal one node at 2 Hz).
"""

import pytest

from repro.analysis import Series, ascii_chart
from repro.timing.throughput import (
    FIGURE14_CLOCKS_HZ,
    transaction_rate_hz,
    transaction_rate_series,
)


def test_fig14_transaction_rate(benchmark, report):
    series = benchmark(transaction_rate_series)
    report(
        ascii_chart(
            [
                Series.of(f"{clock/1e3:.0f} kHz", pts)
                for clock, pts in sorted(series.items())
            ],
            x_label="payload (bytes)",
            y_label="transactions per second",
            log_y=True,
            title="Figure 14 - Saturating Transaction Rate (reproduced; "
            "see EXPERIMENTS.md on the paper's y-axis scale)",
        )
    )
    assert set(series) == set(FIGURE14_CLOCKS_HZ)
    # Monotone decreasing in payload for every clock.
    for clock, points in series.items():
        rates = [r for _, r in points]
        assert rates == sorted(rates, reverse=True)
    # Linear in clock speed at fixed length.
    assert transaction_rate_hz(7_100_000, 8) == pytest.approx(
        71 * transaction_rate_hz(100_000, 8)
    )
    # The paper's utilisation equivalence: "two nodes sending at 1 Hz
    # yields the same utilization as one node sending at 2 Hz."
    one_at_2hz = 2 * (19 + 64) / 400_000
    two_at_1hz = 2 * (1 * (19 + 64) / 400_000)
    assert one_at_2hz == pytest.approx(two_at_1hz)


def test_fig14_burst_saturation_on_edge_sim(benchmark, report):
    """Cross-check on the edge-accurate simulator: back-to-back
    transactions approach (but cannot exceed) the model rate."""
    from repro.core import Address, MBusSystem
    from repro.core.constants import MBusTiming

    def run():
        system = MBusSystem(timing=MBusTiming(clock_hz=400_000))
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        for i in range(6):
            system.post("m", Address.short(0x2, 5), bytes([i] * 8))
        system.run_until_idle()
        elapsed_s = system.sim.now * 1e-12
        return len(system.transactions) / elapsed_s

    achieved = benchmark(run)
    model = transaction_rate_hz(400_000, 8)
    report(
        f"burst rate on edge sim: {achieved:.0f} trans/s vs model "
        f"{model:.0f} trans/s (19 + 8n cycles)"
    )
    # The analytic model books the interjection as 5 bus cycles; on a
    # small ring the real DATA-toggle sequence completes faster than
    # that, so the edge simulator may slightly exceed the closed form
    # but must stay within the no-interjection ceiling (14 + 8n).
    ceiling = 400_000 / (14 + 64)
    assert 0.5 * model < achieved <= ceiling
