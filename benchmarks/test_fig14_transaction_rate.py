"""Figure 14: saturating transaction rate.

rate = clock / (19 + 8n) across the four plotted clock speeds
(100 kHz, 400 kHz, 1 MHz, 7.1 MHz).  Shape claims: the rate falls
with payload length, scales linearly with clock speed, and what
matters is aggregate transaction rate, not node count (two nodes at
1 Hz equal one node at 2 Hz).
"""

import pytest

from repro.analysis import Series, ascii_chart
from repro.timing.throughput import (
    FIGURE14_CLOCKS_HZ,
    transaction_rate_hz,
    transaction_rate_series,
)


def test_fig14_transaction_rate(benchmark, report):
    series = benchmark(transaction_rate_series)
    report(
        ascii_chart(
            [
                Series.of(f"{clock/1e3:.0f} kHz", pts)
                for clock, pts in sorted(series.items())
            ],
            x_label="payload (bytes)",
            y_label="transactions per second",
            log_y=True,
            title="Figure 14 - Saturating Transaction Rate (reproduced; "
            "see EXPERIMENTS.md on the paper's y-axis scale)",
        )
    )
    assert set(series) == set(FIGURE14_CLOCKS_HZ)
    # Monotone decreasing in payload for every clock.
    for clock, points in series.items():
        rates = [r for _, r in points]
        assert rates == sorted(rates, reverse=True)
    # Linear in clock speed at fixed length.
    assert transaction_rate_hz(7_100_000, 8) == pytest.approx(
        71 * transaction_rate_hz(100_000, 8)
    )
    # The paper's utilisation equivalence: "two nodes sending at 1 Hz
    # yields the same utilization as one node sending at 2 Hz."
    one_at_2hz = 2 * (19 + 64) / 400_000
    two_at_1hz = 2 * (1 * (19 + 64) / 400_000)
    assert one_at_2hz == pytest.approx(two_at_1hz)


def test_fig14_burst_saturation_on_edge_sim(benchmark, report, burst_runner):
    """Cross-check on the edge-accurate simulator: back-to-back
    transactions approach (but cannot exceed) the model rate.

    Uses the burst workload shared with the engine perf benchmark and
    the fast-path smoke guard (conftest.run_burst), so all three
    always measure the same traffic.
    """

    def run():
        _, _, txns, sim_s = burst_runner["run"]("edge")
        return txns / sim_s

    achieved = benchmark(run)
    clock_hz = burst_runner["clock_hz"]
    model = transaction_rate_hz(clock_hz, burst_runner["payload_bytes"])
    report(
        f"burst rate on edge sim: {achieved:.0f} trans/s vs model "
        f"{model:.0f} trans/s (19 + 8n cycles)"
    )
    # The analytic model books the interjection as 5 bus cycles; on a
    # small ring the real DATA-toggle sequence completes faster than
    # that, so the edge simulator may slightly exceed the closed form
    # but must stay within the no-interjection ceiling (14 + 8n).
    ceiling = clock_hz / (14 + 8 * burst_runner["payload_bytes"])
    assert 0.5 * model < achieved <= ceiling


def test_fig14_payload_clock_grid_as_campaign(report, burst_runner):
    """The Figure 14 grid — payload length x clock speed — as a
    campaign: the figure's series become ResultSet queries, and the
    simulated rates must track the 19 + 8n closed form.
    """
    from repro.campaign import Campaign, Grid
    from repro.core import Address
    from repro.scenario import Burst

    spec = burst_runner["spec"]()
    results = Campaign(
        spec,
        lambda p: Burst(
            "m",
            Address.short(0x2, 5),
            bytes(range(256))[: p["payload_bytes"]],
            count=6,
        ),
        grid=(
            Grid.product(payload_bytes=[2, 8, 32])
            * Grid.product(clock_hz=[100e3, 400e3])
        ),
        backend="fast",
        name="fig14-grid",
    ).run()
    assert len(results) == 6

    report(results.to_table(columns=[
        ("bytes", "payload_bytes"),
        ("clock", "clock_hz"),
        ("txn/s", "report.throughput_tps"),
    ], title="Figure 14 grid (campaign over the fast backend)"))

    for clock_hz, group in results.group_by("clock_hz").items():
        series = group.series("payload_bytes", "report.throughput_tps")
        rates = [rate for _, rate in series]
        # Rate falls with payload length at every clock...
        assert rates == sorted(rates, reverse=True), clock_hz
        # ...and stays within the saturated closed form's ceiling.
        for payload_bytes, rate in series:
            model = transaction_rate_hz(clock_hz, payload_bytes)
            assert 0.5 * model < rate <= 1.5 * model
    # Linear in clock at fixed length, on the simulator too.
    by_clock = results.filter(payload_bytes=8).aggregate(
        "report.throughput_tps", agg="mean", by=("clock_hz",)
    )
    assert by_clock[400e3] == pytest.approx(4 * by_clock[100e3], rel=0.05)


def test_fig14_same_workload_on_both_backends(report, burst_runner):
    """One Burst workload object, both simulation engines.

    The scenario runner drives the identical compiled schedule through
    ``backend="edge"`` and ``backend="fast"``; the transaction streams
    must be indistinguishable (timing aside) and the achieved
    saturation rates must agree to within the fast path's closed-form
    timing slack.
    """
    from repro.scenario import run

    spec = burst_runner["spec"]()
    workload = burst_runner["workload"]()
    edge = run(spec, workload, backend="edge")
    fast = run(spec, workload, backend="fast")

    assert edge.transaction_signatures() == fast.transaction_signatures()
    assert edge.delivery_set() == fast.delivery_set()
    assert fast.throughput_tps == pytest.approx(
        edge.throughput_tps, rel=0.03
    )
    report(
        f"fig14 burst via scenario API: edge {edge.throughput_tps:.0f} "
        f"txn/s ({edge.events_processed} events) vs fast "
        f"{fast.throughput_tps:.0f} txn/s ({fast.events_processed} events)"
    )
