"""Figure 15: parallel MBus goodput at a 400 kHz clock.

Striping payload bits over 1-4 DATA wires leaves protocol elements
serial: goodput is overhead-dominated for short messages and tends
to w-fold for long ones, reaching ~1.5 Mbit/s at 128 bytes with
4 wires.
"""

import pytest

from repro.analysis import Series, ascii_chart
from repro.timing.throughput import (
    FIGURE15_WIRE_COUNTS,
    parallel_goodput_bps,
    parallel_goodput_series,
    speedup_vs_serial,
)


def test_fig15_parallel_goodput(benchmark, report):
    series = benchmark(parallel_goodput_series)
    report(
        ascii_chart(
            [
                Series.of(f"{w} DATA wire{'s' if w > 1 else ''}", pts)
                for w, pts in sorted(series.items())
            ],
            x_label="payload (bytes)",
            y_label="goodput (kbit/s) @ 400 kHz",
            title="Figure 15 - Parallel MBus Goodput (reproduced; y in "
            "kbit/s, see EXPERIMENTS.md on the paper's axis label)",
        )
    )
    assert set(series) == set(FIGURE15_WIRE_COUNTS)

    # Goodput grows with message length for every wire count.
    for w, points in series.items():
        values = [v for _, v in points]
        assert values == sorted(values)

    # "each additional DATA line doubles the MBus payload throughput"
    # — asymptotically, for long messages.
    assert speedup_vs_serial(128, 2) == pytest.approx(2.0, rel=0.03)
    assert speedup_vs_serial(128, 4) == pytest.approx(4.0, rel=0.07)

    # Overhead dominates very short messages: wires barely help.
    assert speedup_vs_serial(2, 4) < 1.7

    # Magnitude anchor: ~1.5 Mbit/s top-right of the figure.
    assert parallel_goodput_bps(128, 4, 400_000) == pytest.approx(
        1.49e6, rel=0.02
    )

    # Serial MBus at 128 B approaches the 400 kHz line rate.
    assert parallel_goodput_bps(128, 1, 400_000) == pytest.approx(
        393e3, rel=0.02
    )


def test_fig15_serial_goodput_cross_checked_on_both_backends(report):
    """Anchor the w=1 goodput curve on the simulators.

    The same 128-byte Burst workload runs through the scenario runner
    on both engines; each achieved goodput must approach (and never
    exceed) the closed-form serial goodput, and the two backends must
    report the same transaction stream.
    """
    from repro.core import Address
    from repro.scenario import Burst, NodeSpec, SystemSpec, run

    clock_hz = 400_000.0
    payload_bytes = 128
    spec = SystemSpec(
        name="fig15-serial",
        clock_hz=clock_hz,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
        ),
    )
    workload = Burst(
        source="m",
        dest=Address.short(0x2, 5),
        payload=bytes(range(256))[:payload_bytes],
        count=4,
    )
    model = parallel_goodput_bps(payload_bytes, 1, clock_hz)
    reports = {
        backend: run(spec, workload, backend=backend)
        for backend in ("edge", "fast")
    }
    assert (
        reports["edge"].transaction_signatures()
        == reports["fast"].transaction_signatures()
    )
    for backend, result in reports.items():
        # Inter-transaction gaps (mediator wakeup, request settling)
        # keep the simulators below the saturated closed form.
        assert 0.9 * model < result.goodput_bps <= 1.01 * model, backend
    report(
        f"fig15 serial anchor: model {model / 1e3:.1f} kbit/s; "
        f"edge {reports['edge'].goodput_bps / 1e3:.1f} kbit/s; "
        f"fast {reports['fast'].goodput_bps / 1e3:.1f} kbit/s"
    )
