"""Engine performance: transaction-level fast path vs edge-accurate.

Runs the Figure 14 burst-saturation workload (defined once in
``conftest.py`` and shared with the session smoke guard via the
``burst_runner`` fixture) on both simulation backends, measuring
wall-clock time, simulator events and achieved transaction
throughput, and emits ``BENCH_PR1.json`` at the repo root so the perf
trajectory across PRs stays machine-readable.

Acceptance: the fast path must clear a 10x wall-clock speedup on this
workload (it typically lands well above that); the cheaper 5x smoke
guard in ``conftest.py`` runs for every benchmark session.
"""

import json
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
REPEATS = 5
REQUIRED_SPEEDUP = 10.0


def test_perf_engine_speedup(report, burst_runner):
    measure_burst = burst_runner["measure"]
    edge_wall, edge_events, txns, sim_s = measure_burst("edge", REPEATS)
    fast_wall, fast_events, _, _ = measure_burst("fast", REPEATS)

    speedup = edge_wall / fast_wall
    payload = {
        "benchmark": "fig14_burst_saturation",
        "workload": {
            "messages": burst_runner["messages"],
            "payload_bytes": burst_runner["payload_bytes"],
            "clock_hz": burst_runner["clock_hz"],
        },
        "edge": {
            "wall_s": edge_wall,
            "events": edge_events,
            "events_per_s": edge_events / edge_wall,
            "transactions_per_wall_s": txns / edge_wall,
        },
        "fast": {
            "wall_s": fast_wall,
            "events": fast_events,
            "events_per_s": fast_events / fast_wall if fast_wall else None,
            "transactions_per_wall_s": txns / fast_wall,
        },
        "speedup": speedup,
        "event_reduction": edge_events / fast_events,
        "simulated_bus_seconds": sim_s,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "engine perf (burst of "
        f"{burst_runner['messages']}x{burst_runner['payload_bytes']}B @ "
        f"{burst_runner['clock_hz'] / 1e3:.0f} kHz):\n"
        f"  edge: {edge_wall * 1e3:8.2f} ms  {edge_events:>6} events  "
        f"{txns / edge_wall:10.0f} txn/s (wall)\n"
        f"  fast: {fast_wall * 1e3:8.2f} ms  {fast_events:>6} events  "
        f"{txns / fast_wall:10.0f} txn/s (wall)\n"
        f"  speedup: {speedup:.0f}x wall-clock, "
        f"{edge_events / fast_events:.0f}x fewer events "
        f"(written to {BENCH_PATH.name})"
    )
    assert fast_events * 20 < edge_events
    assert speedup >= REQUIRED_SPEEDUP, (
        f"fast path speedup {speedup:.1f}x below required "
        f"{REQUIRED_SPEEDUP:.0f}x"
    )


def test_fast_path_scales_with_queue_depth(report, burst_runner):
    """Event cost per transaction stays flat as the burst grows."""
    _, events_small, txns_small, _ = burst_runner["measure"]("fast")
    big = 10 * burst_runner["messages"]
    start = time.perf_counter()
    _, events_big, txns_big, _ = burst_runner["run"]("fast", n_messages=big)
    wall_big = time.perf_counter() - start
    per_txn_small = events_small / txns_small
    per_txn_big = events_big / txns_big
    report(
        f"fast-path event cost: {per_txn_small:.1f} events/txn at "
        f"{txns_small} msgs, {per_txn_big:.1f} at {big} msgs "
        f"({wall_big * 1e3:.2f} ms)"
    )
    # O(1) events per transaction, independent of queue depth.
    assert per_txn_big <= per_txn_small + 1
