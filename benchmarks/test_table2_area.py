"""Table 2: size of MBus components at 180 nm.

Regenerates the published SLOC/gates/flops/area rows, fits the
two-parameter gate-equivalent area model, and asserts the table's
claims: non-power-gated designs need only the Bus Controller, the
optional always-on modules are small, and MBus's total area is a
modest premium over the OpenCores masters.
"""

import pytest

from repro.analysis import format_table
from repro.synthesis import (
    MBUS_MODULES,
    MBUS_TOTAL,
    OTHER_BUSES,
    fit_area_library,
)
from repro.synthesis.area_model import (
    integration_overhead_um2,
    mbus_required_only_area_um2,
    table2_rows,
)


def test_table2_component_sizes(benchmark, report):
    lib = fit_area_library()
    rows = benchmark(table2_rows, lib)
    report(
        format_table(
            ["Module", "SLOC", "Gates", "Flops", "Area um2 (paper)",
             "Area um2 (fit model)"],
            rows,
            title=(
                "Table 2 - Size of MBus Components (reproduced; fit: "
                f"{lib.um2_per_gate:.1f} um2/gate, "
                f"{lib.um2_per_flip_flop:.1f} um2/flop)"
            ),
        )
    )
    # Published values reproduced from the database.
    assert MBUS_MODULES["bus_controller"].area_um2 == 27_376
    assert MBUS_TOTAL.area_um2 == 37_200

    # Claim: non-power-gated designs require only the Bus Controller.
    assert mbus_required_only_area_um2() == pytest.approx(27_376)

    # Claim: the three optional always-on modules are small next to
    # the Bus Controller (together < 25 % of it).
    optional = sum(m.area_um2 for m in MBUS_MODULES.values() if m.optional)
    assert optional < 0.25 * MBUS_MODULES["bus_controller"].area_um2

    # Claim: "a small amount of additional integration overhead area".
    assert 0 < integration_overhead_um2() < 4_000

    # Claim: modest premium over I2C, comparable to the SPI master.
    assert MBUS_TOTAL.area_um2 < 2 * OTHER_BUSES["i2c_master"].area_um2
    assert MBUS_TOTAL.area_um2 == pytest.approx(
        OTHER_BUSES["spi_master"].area_um2, rel=0.05
    )

    # The fitted model explains the big designs to within 50 %.
    lib = fit_area_library()
    for module in (MBUS_MODULES["bus_controller"], *OTHER_BUSES.values()):
        assert abs(module.area_error_fraction(lib)) < 0.5
