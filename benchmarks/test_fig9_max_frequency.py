"""Figure 9: maximum MBus clock frequency vs node count.

f_max = 1 / (n x 10 ns): 50 MHz at 2 nodes, 7.1 MHz at the 14-node
maximum — between I2C (0.1-5 MHz) and special-purpose SPI.
"""

import pytest

from repro.analysis import Series, ascii_chart, render_check
from repro.timing import max_clock_hz, max_clock_mhz_series


def test_fig9_max_frequency(benchmark, report):
    series = benchmark(max_clock_mhz_series)
    chart = ascii_chart(
        [Series.of("MBus max clock", [(n, f) for n, f in series])],
        x_label="number of nodes",
        y_label="max clock (MHz)",
        title="Figure 9 - Maximum Frequency (reproduced)",
    )
    checks = [
        render_check("f_max @ 14 nodes (MHz)", 7.1, max_clock_hz(14) / 1e6, True),
        render_check("f_max @ 2 nodes (MHz)", 50.0, max_clock_hz(2) / 1e6, True),
    ]
    report(chart + "\n" + "\n".join(checks))

    # Paper anchors.
    assert max_clock_hz(14) / 1e6 == pytest.approx(7.14, abs=0.05)
    assert max_clock_hz(2) / 1e6 == pytest.approx(50.0)

    # Monotone inverse-proportional shape.
    mhz = [f for _, f in series]
    assert mhz == sorted(mhz, reverse=True)
    assert max_clock_hz(7) == pytest.approx(2 * max_clock_hz(14))

    # Context claims: above Ultra-Fast I2C (5 MHz) even at 14 nodes,
    # below special-purpose 100 MHz SPI even at 2 nodes.
    assert max_clock_hz(14) > 5e6
    assert max_clock_hz(2) < 100e6
