"""Figure 10: protocol overhead vs message length.

MBus's 19/43-bit length-independent overhead crosses below 2-stop
UART after 7 bytes and below I2C / 1-stop UART after 9 bytes; SPI's
2 bits are never beaten; the overhead anchors 2 / 19 / 43 appear as
in the figure's margin.
"""

import pytest

from repro.analysis import Series, ascii_chart, render_check
from repro.timing.overhead import (
    crossover_payload_bytes,
    overhead_bits,
    overhead_series,
)


def test_fig10_overhead_curves(benchmark, report):
    series = benchmark(overhead_series, None, tuple(range(0, 41, 2)))
    chart = ascii_chart(
        [Series.of(name, pts) for name, pts in series.items()],
        x_label="message length (bytes)",
        y_label="bits of overhead",
        title="Figure 10 - Bus Overhead (reproduced)",
    )
    checks = [
        render_check("SPI anchor", 2, overhead_bits("SPI", 20), True),
        render_check("MBus short anchor", 19, overhead_bits("MBus (short)", 20), True),
        render_check("MBus full anchor", 43, overhead_bits("MBus (full)", 20), True),
        render_check(
            "crossover vs 2-stop UART (bytes)",
            7,
            crossover_payload_bytes("MBus (short)", "UART (2-bit stop)"),
            True,
        ),
        render_check(
            "beats I2C after (bytes)",
            9,
            crossover_payload_bytes("MBus (short)", "I2C") - 1,
            True,
        ),
    ]
    report(chart + "\n" + "\n".join(checks))

    # Paper claims.
    assert crossover_payload_bytes("MBus (short)", "UART (2-bit stop)") == 7
    assert crossover_payload_bytes("MBus (short)", "I2C") == 10
    assert crossover_payload_bytes("MBus (short)", "UART (1-bit stop)") == 10
    assert crossover_payload_bytes("MBus (short)", "SPI") is None
    # Section 6.1: 'without incurring significantly greater overhead
    # for shorter messages' — at 1 byte MBus pays 19 vs I2C's 11.
    assert overhead_bits("MBus (short)", 1) - overhead_bits("I2C", 1) <= 8
    # Scales efficiently to a 28.8 kB image (Section 6.3.2).
    assert overhead_bits("MBus (short)", 28_800) == 19


def test_fig10_edge_sim_agrees(benchmark, report):
    """The edge-accurate simulator's cycle counts embody the same
    overheads the analytic curves plot."""
    from repro.core import Address, MBusSystem

    def run():
        results = {}
        for n_bytes in (0, 8, 16):
            system = MBusSystem()
            system.add_mediator_node("m", short_prefix=0x1)
            system.add_node("a", short_prefix=0x2)
            r = system.send("m", Address.short(0x2, 5), bytes(n_bytes))
            # Clocked cycles + the 5-cycle interjection allowance.
            results[n_bytes] = r.clock_cycles + r.control_cycles + 5
        return results

    totals = benchmark(run)
    lines = [
        render_check(f"total cycles, {n} B", 19 + 8 * n, got, got == 19 + 8 * n)
        for n, got in sorted(totals.items())
    ]
    report("\n".join(lines))
    for n_bytes, total in totals.items():
        assert total == 19 + 8 * n_bytes
