"""Tier-3 batch backend performance: compiled replay vs fast path.

Two guards, both against the transaction-level fast path (itself
already ~20x over the edge engine, see ``test_perf_engine.py``):

* the Figure 14 burst grid — the saturating two-node burst at three
  queue depths, interleaved best-of-N so both tiers see the same
  machine noise; and
* a fleet campaign — 100 nodes, >10k transactions, the scale the
  batch tier exists for (one compiled system, a handful of round
  templates, tens of thousands of replayed rounds).

The batch tier must clear a 10x wall-clock speedup on every grid
point and on the fleet; the full trajectory lands in
``BENCH_PR7.json`` at the repo root so the perf record across PRs
stays machine-readable.
"""

import json
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
GRID = (60, 240, 960)
GRID_REPEATS = 7
REQUIRED_SPEEDUP = 10.0

FLEET_NODES = 100
FLEET_BURST = 102      # 99 members x 102 posts = 10098 transactions
FLEET_REPEATS = 3      # batch only; one fast run is ~10 s of wall


def _merge(key, value):
    """Read-modify-write one section of the bench record, so the grid
    and fleet tests stay independently runnable."""
    doc = {"benchmark": "tier3_batch_backend",
           "required_speedup": REQUIRED_SPEEDUP}
    if BENCH_PATH.exists():
        doc.update(json.loads(BENCH_PATH.read_text()))
    doc[key] = value
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def fleet_spec():
    from repro.scenario import NodeSpec, SystemSpec

    members = tuple(
        NodeSpec(f"n{i}", full_prefix=0x10000 + i)
        for i in range(FLEET_NODES - 1)
    )
    return SystemSpec(
        name="fleet",
        clock_hz=400_000,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
        ) + members,
    )


def fleet_workload():
    from repro.core import Address
    from repro.scenario import Burst

    workload = None
    for i in range(FLEET_NODES - 1):
        burst = Burst(
            source="m",
            dest=Address.full(0x10000 + i, 5),
            payload=bytes([i % 256, 1]),
            count=FLEET_BURST,
            at_s=i * 1e-6,
        )
        workload = burst if workload is None else workload + burst
    return workload


def test_batch_fig14_grid(report, burst_runner):
    from repro.scenario import run

    spec = burst_runner["spec"]()
    rows = []
    lines = []
    for n in GRID:
        workload = burst_runner["workload"](n)
        run(spec, workload, backend="fast")       # warm both tiers
        run(spec, workload, backend="batch")
        best = {"fast": None, "batch": None}
        for _ in range(GRID_REPEATS):
            for mode in ("fast", "batch"):
                sample = run(spec, workload, backend=mode)
                assert sample.n_ok == n
                if best[mode] is None or sample.wall_s < best[mode].wall_s:
                    best[mode] = sample
        fast, batch = best["fast"], best["batch"]
        assert batch.events_processed == fast.events_processed
        speedup = fast.wall_s / batch.wall_s
        rows.append({
            "messages": n,
            "fast_wall_s": fast.wall_s,
            "batch_wall_s": batch.wall_s,
            "batch_txn_per_wall_s": n / batch.wall_s,
            "speedup": speedup,
        })
        lines.append(
            f"  n={n:4d}: fast {fast.wall_s * 1e3:7.2f} ms, "
            f"batch {batch.wall_s * 1e3:6.2f} ms — {speedup:5.1f}x"
        )
    _merge("fig14_grid", rows)
    report(
        "batch vs fast on the fig14 burst grid "
        f"(best of {GRID_REPEATS}, interleaved):\n" + "\n".join(lines)
    )
    for row in rows:
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"batch speedup {row['speedup']:.1f}x at "
            f"{row['messages']} messages is below the required "
            f"{REQUIRED_SPEEDUP:.0f}x"
        )


def test_batch_fleet_campaign(report):
    from repro.scenario import run

    spec = fleet_spec()
    workload = fleet_workload()
    n_txns = (FLEET_NODES - 1) * FLEET_BURST

    fast = run(spec, workload, backend="fast")
    assert fast.n_ok == n_txns
    batch_best = None
    for _ in range(FLEET_REPEATS):
        batch = run(spec, workload, backend="batch")
        if batch_best is None or batch.wall_s < batch_best.wall_s:
            batch_best = batch
    batch = batch_best
    # The speedup only counts if the answer is the same answer.
    assert batch.transaction_signatures() == fast.transaction_signatures()
    assert batch.power == fast.power

    speedup = fast.wall_s / batch.wall_s
    _merge("fleet", {
        "nodes": FLEET_NODES,
        "transactions": n_txns,
        "fast_wall_s": fast.wall_s,
        "batch_wall_s": batch.wall_s,
        "fast_txn_per_wall_s": n_txns / fast.wall_s,
        "batch_txn_per_wall_s": n_txns / batch.wall_s,
        "speedup": speedup,
    })
    report(
        f"fleet campaign ({FLEET_NODES} nodes, {n_txns} transactions):\n"
        f"  fast:  {fast.wall_s:6.2f} s  "
        f"{n_txns / fast.wall_s:10.0f} txn/s (wall)\n"
        f"  batch: {batch.wall_s:6.2f} s  "
        f"{n_txns / batch.wall_s:10.0f} txn/s (wall)\n"
        f"  speedup: {speedup:.0f}x (written to {BENCH_PATH.name})"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch fleet speedup {speedup:.1f}x below required "
        f"{REQUIRED_SPEEDUP:.0f}x"
    )
