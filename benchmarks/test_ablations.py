"""Ablation benches for design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* the design parameters
are what they are, using the edge-accurate simulator:

* interjection-detector threshold (the saturating counter's depth);
* the minimum-progress policy (Section 7's >= 4 bytes);
* mediator self-start latency's effect on transaction wall time;
* event-simulator performance (events per simulated transaction).
"""

import pytest

from repro.analysis import format_table
from repro.core import Address, MBusSystem
from repro.core.constants import MBusTiming


def _roundtrip(threshold=None, wakeup_ps=None, n_bytes=8):
    defaults = MBusTiming()
    timing = MBusTiming(
        mediator_wakeup_ps=wakeup_ps or defaults.mediator_wakeup_ps,
        interjection_threshold=threshold or defaults.interjection_threshold,
    )
    try:
        system = MBusSystem(timing=timing)
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        result = system.send("m", Address.short(0x2, 5), bytes(n_bytes))
        payload_ok = system.node("a").inbox and (
            system.node("a").inbox[-1].payload == bytes(n_bytes)
        )
        return result.ok and bool(payload_ok), result.duration_ps
    except Exception:
        return False, 0


def test_ablation_interjection_threshold(benchmark, report):
    """Thresholds 2-5 all function in nominal timing; the shipped
    value (3) matches the spec's noise margin without stretching the
    interjection sequence."""

    def run():
        return {t: _roundtrip(threshold=t) for t in (2, 3, 4, 5)}

    outcomes = benchmark(run)
    report(
        format_table(
            ["threshold", "delivers", "duration (us)"],
            [(t, ok, d / 1e6) for t, (ok, d) in sorted(outcomes.items())],
            title="Ablation - interjection detector threshold",
        )
    )
    for t, (ok, _) in outcomes.items():
        assert ok, f"threshold {t} broke delivery"
    # Deeper counters need more mediator toggles: wall time never
    # decreases with threshold.
    durations = [outcomes[t][1] for t in (2, 3, 4, 5)]
    assert durations == sorted(durations)


def test_ablation_minimum_progress(benchmark, report):
    """Without the >= 4-byte policy an overrunning receiver could
    abort before any useful payload moved; with it, every abort still
    delivers at least 4 bytes."""

    def run():
        deliveries = {}
        for buffer_bytes in (1, 2, 4):
            system = MBusSystem()
            system.add_mediator_node("m", short_prefix=0x1)
            system.add_node("tiny", short_prefix=0x2, rx_buffer_bytes=buffer_bytes)
            system.send("m", Address.short(0x2, 5), bytes(range(32)))
            deliveries[buffer_bytes] = len(system.node("tiny").inbox[-1].payload)
        return deliveries

    deliveries = benchmark(run)
    report(
        format_table(
            ["rx buffer (B)", "delivered before abort (B)"],
            sorted(deliveries.items()),
            title="Ablation - minimum-progress policy (Section 7)",
        )
    )
    for buffer_bytes, delivered in deliveries.items():
        assert delivered >= 4


def test_ablation_mediator_wakeup_latency(benchmark, report):
    """Self-start latency adds directly to transaction wall time but
    never affects correctness or cycle counts."""

    def run():
        return {
            us: _roundtrip(wakeup_ps=us * 1_000_000) for us in (1, 2, 10, 50)
        }

    outcomes = benchmark(run)
    report(
        format_table(
            ["wakeup (us)", "delivers", "duration (us)"],
            [(us, ok, d / 1e6) for us, (ok, d) in sorted(outcomes.items())],
            title="Ablation - mediator self-start latency",
        )
    )
    assert all(ok for ok, _ in outcomes.values())
    durations = [outcomes[us][1] for us in (1, 2, 10, 50)]
    assert durations == sorted(durations)


def test_simulator_event_cost(benchmark, report):
    """Performance: events consumed per simulated transaction — the
    cost model for scaling edge-accurate experiments."""

    def run():
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        for i in range(10):
            system.post("m", Address.short(0x2 + (i % 2), 5), bytes(16))
        system.run_until_idle()
        return system.sim.events_processed / len(system.transactions)

    events_per_txn = benchmark(run)
    report(f"~{events_per_txn:.0f} simulator events per 16 B transaction "
           f"on a 3-node ring")
    assert events_per_txn < 5_000
