"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation, printing the reproduced rows/series (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserting the
paper's qualitative claims (orderings, crossovers, magnitudes).

The session-scoped perf smoke guard below keeps the two-tier engine
honest: every benchmark session re-times the Figure 14 burst on both
backends and fails outright if the transaction-level fast path drops
below a 5x wall-clock advantage over the edge-accurate engine (the
full 10x acceptance bar lives in ``test_perf_engine.py``).
"""

import sys

import pytest

SMOKE_SPEEDUP_FLOOR = 5.0

#: The Figure 14 burst-saturation workload, shared by the smoke guard
#: below and by benchmarks/test_perf_engine.py (via the burst_runner
#: fixture) so both always time the same thing.
BURST_MESSAGES = 6
BURST_PAYLOAD_BYTES = 8
BURST_CLOCK_HZ = 400_000


@pytest.fixture
def report(capsys):
    """Print a reproduction artifact, bypassing capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _report


def burst_spec():
    """The two-node fig14 topology as a declarative spec."""
    from repro.scenario import NodeSpec, SystemSpec

    return SystemSpec(
        name="fig14-burst",
        clock_hz=BURST_CLOCK_HZ,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
        ),
    )


def burst_workload(n_messages: int = BURST_MESSAGES):
    """The saturating burst as a backend-agnostic workload object."""
    from repro.core import Address
    from repro.scenario import Burst

    return Burst(
        source="m",
        dest=Address.short(0x2, 5),
        payload=bytes(range(BURST_PAYLOAD_BYTES)),
        count=n_messages,
    )


def run_burst(mode: str, n_messages: int = BURST_MESSAGES):
    """One fig14 burst; returns (wall_s, events, txns, sim_seconds).

    The same Burst workload object drives both backends through the
    scenario runner, so edge/fast timings always measure identical
    traffic (``report.wall_s`` times only ``run_until_idle``).
    """
    from repro.scenario import run

    report = run(burst_spec(), burst_workload(n_messages), backend=mode)
    assert report.n_transactions == n_messages
    assert report.n_ok == n_messages
    return (
        report.wall_s,
        report.events_processed,
        n_messages,
        report.sim_time_s,
    )


def measure_burst(mode: str, repeats: int = 3):
    """Best-of-N run of the burst to shed scheduler noise."""
    best = None
    for _ in range(repeats):
        sample = run_burst(mode)
        if best is None or sample[0] < best[0]:
            best = sample
    return best


@pytest.fixture(scope="session")
def burst_runner():
    """Expose the shared burst workload to benchmark modules.

    A fixture (rather than a cross-module import) because conftest
    modules are not import-safe by name when several live in one
    test tree.
    """
    return {
        "run": run_burst,
        "measure": measure_burst,
        "spec": burst_spec,
        "workload": burst_workload,
        "messages": BURST_MESSAGES,
        "payload_bytes": BURST_PAYLOAD_BYTES,
        "clock_hz": BURST_CLOCK_HZ,
    }


@pytest.fixture(scope="session", autouse=True)
def fastpath_perf_guard():
    """Fail the benchmark session if the fast path regresses below 5x.

    A real regression sits an order of magnitude below the measured
    ~20x headroom, so one re-measurement with more repeats filters a
    noisy first sample (loaded runner, cold caches) before failing the
    whole session.
    """
    for repeats in (3, 10):
        edge_wall = measure_burst("edge", repeats)[0]
        fast_wall = measure_burst("fast", repeats)[0]
        speedup = edge_wall / fast_wall
        if speedup >= SMOKE_SPEEDUP_FLOOR:
            break
    else:
        pytest.fail(
            f"perf smoke guard: fast path is only {speedup:.1f}x faster "
            f"than the edge engine on the burst benchmark "
            f"(floor {SMOKE_SPEEDUP_FLOOR:.0f}x) — the transaction-level "
            "backend has regressed",
            pytrace=False,
        )
    yield
