"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation, printing the reproduced rows/series (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserting the
paper's qualitative claims (orderings, crossovers, magnitudes).
"""

import sys

import pytest


@pytest.fixture
def report(capsys):
    """Print a reproduction artifact, bypassing capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _report
