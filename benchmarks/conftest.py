"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation, printing the reproduced rows/series (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserting the
paper's qualitative claims (orderings, crossovers, magnitudes).

The session-scoped perf smoke guard below keeps the two-tier engine
honest: every benchmark session re-times the Figure 14 burst on both
backends and fails outright if the transaction-level fast path drops
below a 5x wall-clock advantage over the edge-accurate engine (the
full 10x acceptance bar lives in ``test_perf_engine.py``).
"""

import sys
import time

import pytest

SMOKE_SPEEDUP_FLOOR = 5.0

#: The Figure 14 burst-saturation workload, shared by the smoke guard
#: below and by benchmarks/test_perf_engine.py (via the burst_runner
#: fixture) so both always time the same thing.
BURST_MESSAGES = 6
BURST_PAYLOAD_BYTES = 8
BURST_CLOCK_HZ = 400_000


@pytest.fixture
def report(capsys):
    """Print a reproduction artifact, bypassing capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            sys.stdout.write("\n" + text + "\n")

    return _report


def run_burst(mode: str, n_messages: int = BURST_MESSAGES):
    """One fig14 burst; returns (wall_s, events, txns, sim_seconds)."""
    from repro.core import Address, MBusSystem
    from repro.core.constants import MBusTiming

    system = MBusSystem(
        timing=MBusTiming(clock_hz=BURST_CLOCK_HZ), mode=mode
    )
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("a", short_prefix=0x2)
    system.build()
    for i in range(n_messages):
        system.post(
            "m", Address.short(0x2, 5),
            bytes([i % 256] * BURST_PAYLOAD_BYTES),
        )
    start = time.perf_counter()
    system.run_until_idle()
    wall_s = time.perf_counter() - start
    assert len(system.transactions) == n_messages
    assert all(r.ok for r in system.transactions)
    return wall_s, system.sim.events_processed, n_messages, system.sim.now / 1e12


def measure_burst(mode: str, repeats: int = 3):
    """Best-of-N run of the burst to shed scheduler noise."""
    best = None
    for _ in range(repeats):
        sample = run_burst(mode)
        if best is None or sample[0] < best[0]:
            best = sample
    return best


@pytest.fixture(scope="session")
def burst_runner():
    """Expose the shared burst workload to benchmark modules.

    A fixture (rather than a cross-module import) because conftest
    modules are not import-safe by name when several live in one
    test tree.
    """
    return {
        "run": run_burst,
        "measure": measure_burst,
        "messages": BURST_MESSAGES,
        "payload_bytes": BURST_PAYLOAD_BYTES,
        "clock_hz": BURST_CLOCK_HZ,
    }


@pytest.fixture(scope="session", autouse=True)
def fastpath_perf_guard():
    """Fail the benchmark session if the fast path regresses below 5x.

    A real regression sits an order of magnitude below the measured
    ~20x headroom, so one re-measurement with more repeats filters a
    noisy first sample (loaded runner, cold caches) before failing the
    whole session.
    """
    for repeats in (3, 10):
        edge_wall = measure_burst("edge", repeats)[0]
        fast_wall = measure_burst("fast", repeats)[0]
        speedup = edge_wall / fast_wall
        if speedup >= SMOKE_SPEEDUP_FLOOR:
            break
    else:
        pytest.fail(
            f"perf smoke guard: fast path is only {speedup:.1f}x faster "
            f"than the edge engine on the burst benchmark "
            f"(floor {SMOKE_SPEEDUP_FLOOR:.0f}x) — the transaction-level "
            "backend has regressed",
            pytrace=False,
        )
    yield
