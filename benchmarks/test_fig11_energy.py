"""Figure 11: energy comparisons against Oracle and standard I2C.

(a) total bus power vs clock frequency for standard I2C (50 pF),
Oracle I2C and MBus (measured and simulated) at 2 and 14 nodes;
(b) energy per goodput bit vs payload length.

Claims reproduced: simulated MBus < Oracle I2C < standard I2C for
all configurations; simulated MBus wins at every payload length;
measured MBus suffers at short (1-2 byte) messages, so systems
should coalesce messages.
"""

import pytest

from repro.analysis import Series, ascii_chart
from repro.baselines import OracleI2C, StandardI2C
from repro.power import MeasuredEnergyModel, SimulatedEnergyModel

CLOCKS_HZ = [f * 1e6 for f in (0.5, 1, 2, 4, 6, 8)]
LENGTHS = range(1, 13)


def _figure11a():
    standard = StandardI2C()
    series = {
        "Standard I2C at 50 pF": [
            (f / 1e6, standard.power_uw(f)) for f in CLOCKS_HZ
        ],
    }
    for n in (14, 2):
        oracle = OracleI2C.simulation_grade(n)
        measured = MeasuredEnergyModel()
        simulated = SimulatedEnergyModel()
        series[f"{n} Node Oracle I2C"] = [
            (f / 1e6, oracle.power_uw(f)) for f in CLOCKS_HZ
        ]
        series[f"{n} Node MBus Measured"] = [
            (f / 1e6, measured.power_uw(f, n)) for f in CLOCKS_HZ
        ]
        series[f"{n} Node MBus Simulated"] = [
            (f / 1e6, simulated.power_uw(f, n)) for f in CLOCKS_HZ
        ]
    return series


def _figure11b():
    series = {}
    for n in (14, 2):
        oracle = OracleI2C.simulation_grade(n)
        series[f"{n} Node Oracle I2C"] = [
            (b, oracle.energy_per_goodput_bit_pj(b)) for b in LENGTHS
        ]
        series[f"{n} Node MBus Simulated"] = [
            (b, SimulatedEnergyModel().energy_per_goodput_bit_pj(b, n))
            for b in LENGTHS
        ]
        series[f"{n} Node MBus Measured"] = [
            (b, MeasuredEnergyModel().energy_per_goodput_bit_pj(b, n))
            for b in LENGTHS
        ]
    series["Standard I2C at 50 pF"] = [
        (b, StandardI2C().energy_per_goodput_bit_pj(b)) for b in LENGTHS
    ]
    return series


def test_fig11a_total_power(benchmark, report):
    series = benchmark(_figure11a)
    report(
        ascii_chart(
            [Series.of(n, p) for n, p in series.items()],
            x_label="clock (MHz)",
            y_label="total bus power (uW)",
            title="Figure 11a - Total Power Draw (reproduced)",
        )
    )
    standard = StandardI2C()
    for f in CLOCKS_HZ:
        for n in (2, 14):
            oracle = OracleI2C.simulation_grade(n)
            simulated = SimulatedEnergyModel()
            # Simulated MBus < Oracle I2C < Standard I2C.
            assert simulated.power_uw(f, n) < oracle.power_uw(f)
            assert oracle.power_uw(f) < standard.power_uw(f)
    # Standard I2C's 400 kHz clock power is the Section 2.1 69.6 uW
    # (clock line only).
    assert standard.electrical.clock_power_uw == pytest.approx(69.6, abs=0.5)


def test_fig11b_goodput_energy(benchmark, report):
    series = benchmark(_figure11b)
    report(
        ascii_chart(
            [Series.of(n, p) for n, p in series.items()],
            x_label="payload (bytes)",
            y_label="energy per goodput bit (pJ)",
            title="Figure 11b - Energy of Goodput Bits (reproduced)",
        )
    )
    # Simulated MBus outperforms Oracle I2C at every payload length.
    for n in (2, 14):
        oracle = OracleI2C.simulation_grade(n)
        simulated = SimulatedEnergyModel()
        for b in LENGTHS:
            assert (
                simulated.energy_per_goodput_bit_pj(b, n)
                < oracle.energy_per_goodput_bit_pj(b)
            )
    # Measured MBus is steeply penalised at 1-2 bytes: coalesce.
    measured = MeasuredEnergyModel()
    assert (
        measured.energy_per_goodput_bit_pj(1, 2)
        > 2.5 * measured.energy_per_goodput_bit_pj(12, 2)
    )
    # Against a measured-grade oracle, measured MBus wins at length.
    assert (
        measured.energy_per_goodput_bit_pj(12, 14)
        < OracleI2C.measured_grade(14).energy_per_goodput_bit_pj(12)
    )
