"""Campaign-server overhead: what the HTTP/scheduler front door
costs relative to running the same campaign in-process.

Two measurements, both through a real :class:`CampaignServer` on an
ephemeral port (the production topology, minus the process
boundary):

* **cold** — a submit/watch/stream cycle that executes every trial;
  compared against a direct ``Campaign.run`` of the same document,
  the delta is the total service overhead (HTTP framing, scheduler
  queueing, journal writes, status polling).
* **cached** — resubmitting the identical document; every trial is
  a dedupe hit against the shared :class:`ResultStore`, so this arm
  times the service floor: request handling plus O(1) index lookups
  with no simulation at all.

Assertions are deliberately coarse (service overhead under a
generous multiple of the in-process run; the cached arm strictly
cheaper than the cold arm) — this is a regression tripwire for
accidental per-trial rescans or busy-wait loops, not a latency SLO.
"""

import asyncio
import threading
import time

from repro.campaign import Campaign, Grid, canonical_json
from repro.core import Address
from repro.scenario import Burst, NodeSpec, SystemSpec
from repro.serve import CampaignServer, Scheduler, ServeClient

N_TRIALS = 8

#: Cold serve wall time may be at most this multiple of the direct
#: in-process run.  The per-trial service cost is dominated by the
#: watch poll interval, so the bound is generous: it catches
#: pathological regressions (per-request store rescans, busy waits),
#: not millisecond drift.
OVERHEAD_CEILING = 5.0


def campaign_doc():
    spec = SystemSpec(
        name="serve-bench",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
        ),
    )
    workload = Burst("m", Address.short(0x2, 5), bytes(range(8)), count=4)
    return Campaign(
        spec=spec,
        workload=workload,
        grid=Grid.product(
            **{"workload.count": list(range(1, N_TRIALS + 1))}
        ),
        name="serve-bench",
    ).to_dict()


class ServerThread:
    def __init__(self, root):
        self.server = CampaignServer(Scheduler(root=root), port=0)
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10)
        return self

    def __exit__(self, *_exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def serve_cycle(client, doc):
    """One submit/watch/stream round trip; returns (wall_s, status,
    streamed lines)."""
    start = time.perf_counter()
    status, _ = client.submit(doc)
    final = client.watch(status.job_id, poll_s=0.01, timeout_s=120)
    lines = [
        canonical_json(record)
        for record in client.results(status.job_id)
    ]
    return time.perf_counter() - start, final, lines


def test_serve_overhead_bounded(tmp_path, report):
    doc = campaign_doc()

    start = time.perf_counter()
    direct = Campaign.from_dict(doc, lenient=True).run(executor="serial")
    direct_s = time.perf_counter() - start
    expected = [canonical_json(r.record) for r in direct]

    with ServerThread(tmp_path / "serve") as live:
        client = ServeClient(port=live.server.port)
        cold_s, cold, cold_lines = serve_cycle(client, doc)
        cached_s, cached, cached_lines = serve_cycle(client, doc)

    assert cold.ok and cold.executed == N_TRIALS
    assert cached.ok and cached.cached == N_TRIALS
    assert cold_lines == cached_lines == expected

    assert cold_s <= OVERHEAD_CEILING * direct_s + 1.0, (
        f"serving the campaign took {cold_s:.3f}s vs {direct_s:.3f}s "
        f"in-process — service overhead beyond the "
        f"{OVERHEAD_CEILING:.0f}x + 1s envelope"
    )
    assert cached_s <= cold_s, (
        f"the all-cache resubmit ({cached_s:.3f}s) was slower than "
        f"the cold run ({cold_s:.3f}s): dedupe is not saving work"
    )

    report(
        "Campaign-server overhead "
        f"({N_TRIALS} trials)\n"
        f"  direct in-process run   {direct_s * 1e3:8.1f} ms\n"
        f"  cold serve round trip   {cold_s * 1e3:8.1f} ms "
        f"({cold_s / direct_s:4.1f}x)\n"
        f"  cached serve round trip {cached_s * 1e3:8.1f} ms "
        f"({cached_s / direct_s:4.1f}x)"
    )
