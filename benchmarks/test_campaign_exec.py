"""Campaign executor performance: process pool vs. serial, plus cache.

Runs the PR 5 acceptance study — a 12-trial fault-rate campaign on
the edge-accurate engine — three ways:

* serial executor (the baseline the old ``sweep()`` loop matched);
* process executor on 2+ workers (results must be identical);
* process executor again against the warm store (must execute
  nothing).

and emits ``BENCH_PR5.json`` at the repo root so the scaling
trajectory stays machine-readable next to ``BENCH_PR1.json``.  The
speedup is *recorded*, not asserted — process pools on a loaded CI
box can land anywhere — but identity and caching are hard failures.
"""

import json
import os
from pathlib import Path

from repro.campaign import Campaign, Grid, ResultStore
from repro.core import Address
from repro.faults import FaultSpec, RandomGlitches
from repro.scenario import Burst, NodeSpec, SystemSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
WORKERS = min(4, max(2, os.cpu_count() or 2))

#: 12 glitch rates, ~doubling: a realistic robustness-figure grid.
RATES = [0.0] + [500.0 * 2 ** i for i in range(11)]


def build_campaign() -> Campaign:
    spec = SystemSpec(
        name="campaign-bench",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
            NodeSpec("b", short_prefix=0x3),
        ),
    )
    workload = Burst(
        "m", Address.short(0x2, 5), bytes(range(8)), count=8
    )
    return Campaign(
        spec=spec,
        workload=workload,
        grid=Grid.product(rate_hz=RATES),
        faults=lambda p: FaultSpec(
            (RandomGlitches(seed=7, rate_hz=p["rate_hz"],
                            duration_s=0.002),),
        ),
        name="fault-rate-bench",
    )


def test_campaign_process_speedup_and_cache(report, tmp_path):
    campaign = build_campaign()
    n_trials = len(campaign.trials())
    assert n_trials >= 12

    serial_store = ResultStore(tmp_path / "serial")
    process_store = ResultStore(tmp_path / "process")

    serial = campaign.run(executor="serial", store=serial_store)
    parallel = campaign.run(
        executor="process", workers=WORKERS, store=process_store
    )

    # Acceptance: the executors agree record for record, byte for byte.
    assert serial.records() == parallel.records()
    assert sorted(serial_store.entries()) == sorted(process_store.entries())

    # Acceptance: the warm store serves every unchanged trial.
    cached = campaign.run(
        executor="process", workers=WORKERS, store=process_store
    )
    assert cached.executed == 0
    assert cached.cached == n_trials
    assert cached.records() == parallel.records()

    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    cache_speedup = (
        serial.wall_s / cached.wall_s if cached.wall_s else float("inf")
    )
    payload = {
        "benchmark": "fault_rate_campaign",
        "n_trials": n_trials,
        "workers": WORKERS,
        # Process-pool wall speedup is bounded by the host's cores; a
        # 1-CPU box honestly reports ~1.0x while the cached-rerun
        # speedup (the point of the store) stays enormous anywhere.
        "cpus": os.cpu_count(),
        "serial": {"wall_s": serial.wall_s, "executed": serial.executed},
        "process": {
            "wall_s": parallel.wall_s,
            "executed": parallel.executed,
            "speedup_vs_serial": speedup,
        },
        "cached_rerun": {
            "wall_s": cached.wall_s,
            "executed": cached.executed,
            "cache_hit_rate": cached.cache_hit_rate,
            "speedup_vs_serial": cache_speedup,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        f"campaign exec ({n_trials} fault-rate trials, edge engine, "
        f"{os.cpu_count()} cpu(s)):\n"
        f"  serial:       {serial.wall_s * 1e3:8.1f} ms\n"
        f"  process(x{WORKERS}): {parallel.wall_s * 1e3:8.1f} ms  "
        f"({speedup:.2f}x)\n"
        f"  cached rerun: {cached.wall_s * 1e3:8.1f} ms  "
        f"({cached.cached}/{n_trials} from store; written to "
        f"{BENCH_PATH.name})"
    )

    # The cached rerun must crush the serial run regardless of
    # machine load — it executes nothing.
    assert cached.wall_s < serial.wall_s
