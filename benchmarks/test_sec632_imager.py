"""Section 6.3.2: the motion-activated imaging system.

Reproduces the image-transfer overhead arithmetic (MBus row-by-row
1.31 % vs I2C 12.5 % / 13.2 %; 90-99 % ACK-overhead reduction) and
runs a scaled-down frame through the edge-accurate simulator.
"""

import pytest

from repro.analysis import render_check
from repro.systems import ImagerSystem, ImageTransferAnalysis


def test_sec632_transfer_overheads(benchmark, report):
    analysis = ImageTransferAnalysis()

    def run():
        return {
            "extra_bits": analysis.mbus_extra_bits_for_rows,
            "mbus_rows_pct": analysis.mbus_rows_overhead_fraction * 100,
            "i2c_single_bits": analysis.i2c_single_overhead_bits,
            "i2c_single_pct": analysis.i2c_single_overhead_fraction * 100,
            "i2c_rows_bits": analysis.i2c_rows_overhead_bits,
            "i2c_rows_pct": analysis.i2c_rows_overhead_fraction * 100,
            "ack_cut_rows": analysis.ack_overhead_reduction(True) * 100,
            "ack_cut_single": analysis.ack_overhead_reduction(False) * 100,
        }

    values = benchmark(run)
    checks = [
        ("row-by-row extra bits", 3_021, values["extra_bits"], 0),
        ("MBus row overhead (%)", 1.31, values["mbus_rows_pct"], 0.02),
        ("I2C whole-image bits", 28_810, values["i2c_single_bits"], 0),
        ("I2C whole-image (%)", 12.5, values["i2c_single_pct"], 0.05),
        ("I2C row-by-row bits", 30_400, values["i2c_rows_bits"], 0),
        ("I2C row-by-row (%)", 13.2, values["i2c_rows_pct"], 0.05),
    ]
    report(
        "\n".join(
            render_check(name, paper, ours, abs(ours - paper) <= tol)
            for name, paper, ours, tol in checks
        )
        + "\n"
        + render_check(
            "ACK overhead cut (%)",
            "90-99",
            f"{values['ack_cut_rows']:.1f}/{values['ack_cut_single']:.2f}",
            True,
        )
    )
    for name, paper, ours, tol in checks:
        assert ours == pytest.approx(paper, abs=tol), name
    assert 90 <= values["ack_cut_rows"] <= 99
    assert values["ack_cut_single"] > 99


def test_sec632_frame_rates(benchmark, report):
    analysis = ImageTransferAnalysis()

    def run():
        return {
            "paper_fast_ms": analysis.paper_quoted_frame_time_s(6.67e6) * 1e3,
            "paper_slow_s": analysis.paper_quoted_frame_time_s(10e3),
            "serial_400k_s": analysis.frame_time_s(400e3),
            "serial_rows_400k_s": analysis.frame_time_s(400e3, row_by_row=True),
        }

    values = benchmark(run)
    report(
        "\n".join(
            [
                render_check("paper frame time @6.67 MHz (ms)", 4.2,
                             values["paper_fast_ms"], 0.2),
                render_check("paper frame time @10 kHz (s)", 2.9,
                             values["paper_slow_s"], 0.05),
                render_check("bit-serial @400 kHz (s)", 0.576,
                             values["serial_400k_s"], 0.01),
            ]
        )
    )
    assert values["paper_fast_ms"] == pytest.approx(4.3, abs=0.2)
    assert values["paper_slow_s"] == pytest.approx(2.88, abs=0.05)
    # Row-by-row adds only ~1.3 % time over a single message.
    assert values["serial_rows_400k_s"] / values["serial_400k_s"] < 1.014


def test_sec632_motion_event_on_edge_sim(benchmark, report):
    """Motion -> interrupt -> wake -> stream rows, on a scaled frame."""

    def run():
        system = ImagerSystem(rows=4)
        transactions = system.motion_event()
        return system, transactions

    system, transactions = benchmark(run)
    nulls = [t for t in transactions if t.general_error]
    rows = [t for t in transactions if t.ok]
    report(
        f"motion event: {len(nulls)} wakeup null transaction, "
        f"{len(rows)} row messages, radio holds "
        f"{len(system.received_rows())} rows"
    )
    assert len(nulls) == 1
    assert len(rows) == 4
    assert len(system.received_rows()) == 4
    # The imager power-gated itself again after streaming.
    assert not system.system.node("imager").layer_domain.is_on
