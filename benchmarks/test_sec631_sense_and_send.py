"""Section 6.3.1: the sense-and-send temperature system.

Reproduces the complete energy/lifetime arithmetic and runs the
system end-to-end on the edge-accurate simulator.
"""

import pytest

from repro.analysis import render_check
from repro.systems import SenseAndSendAnalysis, TemperatureSystem


def test_sec631_energy_and_lifetime(benchmark, report):
    analysis = SenseAndSendAnalysis()

    def run():
        return {
            "response_nj": analysis.response_energy_nj(),
            "relay_penalty_nj": analysis.relay_penalty_nj(),
            "event_direct_nj": analysis.event_energy_nj(True),
            "event_relay_nj": analysis.event_energy_nj(False),
            "life_direct_d": analysis.lifetime_days(True),
            "life_relay_d": analysis.lifetime_days(False),
            "gain_h": analysis.lifetime_gain_hours(),
            "util": analysis.bus_utilization(),
            "util_cut": analysis.utilization_reduction_from_direct(),
        }

    values = benchmark(run)
    checks = [
        ("8 B response energy (nJ)", 5.6, values["response_nj"], 0.05),
        ("double-send cost (nJ)", 11.2, 2 * values["response_nj"], 0.1),
        ("direct-routing saving (nJ)", 6.6, values["relay_penalty_nj"], 0.05),
        ("event energy (nJ)", 100.0, values["event_direct_nj"], 0.1),
        ("lifetime, direct (days)", 47.5, values["life_direct_d"], 0.5),
        ("lifetime, relayed (days)", 44.5, values["life_relay_d"], 0.6),
        ("lifetime gain (hours)", 71.0, values["gain_h"], 2.0),
        ("bus utilization (%)", 0.0022, values["util"] * 100, 0.0002),
        ("utilization cut (%)", 40.0, values["util_cut"] * 100, 3.0),
    ]
    report(
        "\n".join(
            render_check(name, paper, ours, abs(ours - paper) <= tol)
            for name, paper, ours, tol in checks
        )
        + "\n\n"
        + analysis.event_ledger(direct=False).summary()
    )
    for name, paper, ours, tol in checks:
        assert ours == pytest.approx(paper, abs=tol), name
    # ~7 % saving headline.
    saving = values["relay_penalty_nj"] / values["event_relay_nj"]
    assert 0.05 < saving < 0.08


def test_sec631_edge_sim_round(benchmark, report):
    """The full sense-and-send round on the edge-accurate ring."""

    def run():
        system = TemperatureSystem(direct_to_radio=True)
        transactions = system.run_round()
        return system, transactions

    system, transactions = benchmark(run)
    report(
        "round transactions: "
        + ", ".join(f"{t.tx_node}->{'/'.join(t.rx_nodes)}" for t in transactions)
    )
    # The response goes straight to the radio, never the processor.
    assert [t.tx_node for t in transactions] == ["cpu", "sensor"]
    assert transactions[1].rx_nodes == ["radio"]
    assert system.system.node("cpu").inbox == []
    # Request is 4 bytes, response 8 bytes (cycle counts prove it).
    assert transactions[0].clock_cycles == 3 + 8 + 32
    assert transactions[1].clock_cycles == 3 + 8 + 64
