"""Section 2.1: the idealized I2C energy decomposition.

A 1.2 V, 50 pF bus with the rise relaxed to a full half cycle needs a
pull-up of at most 15.5 kOhm; the clock line then costs 23 pJ
(capacitance dump) + 116 pJ (hold-low dissipation) + 35 pJ (rise
dissipation) per cycle — 69.6 uW at 400 kHz — of which the 151 pJ/bit
lost in the resistor is what MBus eliminates.
"""

import pytest

from repro.analysis import render_check
from repro.baselines import I2CElectrical


def test_sec21_pullup_decomposition(benchmark, report):
    electrical = benchmark(I2CElectrical)
    checks = [
        ("max pull-up (kOhm)", 15.5, electrical.max_pullup_ohms / 1e3, 0.1),
        ("cap dump (pJ)", 23.0, electrical.cap_dump_pj, 0.5),
        ("resistor, held low (pJ)", 116.0, electrical.resistor_low_pj, 1.0),
        ("resistor, rise (pJ)", 35.0, electrical.resistor_rise_pj, 0.5),
        ("clock power @400 kHz (uW)", 69.6, electrical.clock_power_uw, 0.5),
        ("pull-up loss (pJ/bit)", 151.0, electrical.pullup_loss_per_bit_pj, 1.0),
    ]
    report(
        "\n".join(
            render_check(name, paper, ours, abs(ours - paper) <= tol)
            for name, paper, ours, tol in checks
        )
    )
    for name, paper, ours, tol in checks:
        assert ours == pytest.approx(paper, abs=tol), name


def test_sec21_relaxations_behave(benchmark, report):
    """Tightening the paper's relaxations only makes I2C worse: a
    400 pF-rated bus or a 300 ns rise demands a smaller resistor and
    burns more in it."""

    def run():
        relaxed = I2CElectrical()                      # 50 pF, full half cycle
        heavy = I2CElectrical(bus_capacitance_pf=400)  # spec-rated loading
        return relaxed, heavy

    relaxed, heavy = benchmark(run)
    report(
        render_check(
            "50 pF vs 400 pF pull-up ratio",
            8.0,
            relaxed.max_pullup_ohms / heavy.max_pullup_ohms,
            True,
        )
    )
    assert heavy.max_pullup_ohms < relaxed.max_pullup_ohms
    assert heavy.clock_cycle_energy_pj > relaxed.clock_cycle_energy_pj
    # Energy scales linearly with bus capacitance.
    assert heavy.clock_cycle_energy_pj == pytest.approx(
        8 * relaxed.clock_cycle_energy_pj, rel=0.01
    )
