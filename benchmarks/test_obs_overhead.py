"""Disabled-observability overhead guard: the strict-no-op contract.

Every instrumentation site this PR added to a hot path hides behind a
single ``if OBS.enabled`` attribute check.  The only *per-round* site
is the :func:`repro.core.tlm_engine.plan_round` wrapper — the fast
path calls it once per bus round, so a 60-message fig14 burst
executes it 60+ times inside ~3 ms of wall time.  This guard measures
what that wrapper costs when observability is off (the default, and
the only state benchmarks and campaigns run in):

* **guarded arm** — the shipped code, ``OBS`` disabled;
* **bypassed arm** — ``plan_round`` monkeypatched back to
  ``_plan_round_impl`` in every module that imported it by name
  (``tlm_engine`` itself, the fast path, the batch executor),
  emulating the pre-observability build.

Both arms are interleaved best-of-N on the Figure 14 burst so they
see the same machine noise, with a repeat ladder to shed noisy
sessions before failing; the guarded arm must stay within
``OVERHEAD_CEILING`` (2 %) on the **fast** backend.

The batch and edge rows are recorded but not asserted: the batch
merge loop has *no* per-round guard (its counters fire once per run,
and ``plan_round`` only runs on template misses), and the edge
scheduler guards once per ``run()`` call — on both, the paired
difference is dominated by per-process code-layout noise (observed
swinging ±7 % in either direction between sessions at best-of-80),
not by guard cost.  The edge row is the cleanest control: both arms
execute byte-identical code there, so its |overhead| is the session's
measurement noise floor.  Results land in ``BENCH_PR9.json`` at the
repo root next to the recorded pre-PR seed baselines.
"""

import json
from contextlib import contextmanager
from pathlib import Path

from conftest import run_burst

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

OVERHEAD_CEILING = 0.02

#: Pre-PR fig14 burst wall times (best-of-N, report.wall_s) recorded
#: on this runner immediately before the observability layer landed.
SEED_BASELINES = {
    "fast_60msg_wall_s": 0.0032936280003923457,
    "edge_6msg_wall_s": 0.008778913999776705,
    "batch_60msg_wall_s": 0.0001710540000203764,
}

#: (backend, burst size, asserted) measurement points.  Only the fast
#: point is asserted — see the module docstring for why the batch and
#: edge rows are diagnostics.
POINTS = (
    ("fast", 60, True),
    ("batch", 960, False),
    ("edge", 6, False),
)

#: Repeat ladder: retry at higher best-of-N before failing, exactly
#: like the session perf smoke guard in conftest.py.
REPEAT_LADDER = (7, 25, 80)


@contextmanager
def bypassed_plan_round():
    """Re-link ``plan_round`` to its unwrapped implementation in every
    importer, emulating the pre-observability build."""
    import repro.batch.executor as batch_executor
    import repro.core.tlm_engine as tlm_engine
    import repro.sim.fastpath as fastpath

    saved = (
        tlm_engine.plan_round,
        fastpath.plan_round,
        batch_executor.plan_round,
    )
    tlm_engine.plan_round = tlm_engine._plan_round_impl
    fastpath.plan_round = tlm_engine._plan_round_impl
    batch_executor.plan_round = tlm_engine._plan_round_impl
    try:
        yield
    finally:
        (
            tlm_engine.plan_round,
            fastpath.plan_round,
            batch_executor.plan_round,
        ) = saved


def measure_pair(mode: str, n_messages: int, repeats: int):
    """Interleaved best-of-N of the guarded and bypassed arms."""
    guarded = bypassed = float("inf")
    for _ in range(repeats):
        with bypassed_plan_round():
            bypassed = min(bypassed, run_burst(mode, n_messages)[0])
        guarded = min(guarded, run_burst(mode, n_messages)[0])
    return guarded, bypassed


def test_disabled_obs_overhead_under_ceiling(report):
    from repro.obs.state import OBS

    assert OBS.enabled is False, (
        "benchmark must run with observability disabled"
    )
    rows = {}
    for mode, n_messages, asserted in POINTS:
        for repeats in REPEAT_LADDER:
            guarded, bypassed = measure_pair(mode, n_messages, repeats)
            overhead = guarded / bypassed - 1.0
            if not asserted or overhead <= OVERHEAD_CEILING:
                break
        rows[mode] = {
            "messages": n_messages,
            "repeats": repeats,
            "asserted": asserted,
            "guarded_wall_s": guarded,
            "bypassed_wall_s": bypassed,
            "overhead": overhead,
        }
        if asserted:
            assert overhead <= OVERHEAD_CEILING, (
                f"disabled-obs overhead on the {mode} backend is "
                f"{overhead:+.2%} (ceiling {OVERHEAD_CEILING:.0%}, "
                f"best-of-{repeats}): the OBS guard is no longer a "
                "strict no-op on the hot path"
            )
    doc = {
        "benchmark": "obs_disabled_overhead",
        "overhead_ceiling": OVERHEAD_CEILING,
        "seed_baselines": SEED_BASELINES,
        "points": rows,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    lines = ["Disabled-observability overhead (guarded vs bypassed)"]
    for mode, row in rows.items():
        tag = "guard" if row["asserted"] else "info "
        lines.append(
            f"  [{tag}] {mode:<6} {row['messages']:>4} msg  "
            f"guarded {row['guarded_wall_s'] * 1e3:8.4f} ms  "
            f"bypassed {row['bypassed_wall_s'] * 1e3:8.4f} ms  "
            f"overhead {row['overhead']:+7.2%}"
        )
    lines.append(f"  written to {BENCH_PATH.name}")
    report("\n".join(lines))


def test_enabled_metrics_only_run_still_correct():
    """Sanity: flipping OBS on must not change simulation outcomes
    (the overhead guard only times the disabled state)."""
    from repro.obs.state import observe

    baseline = run_burst("fast", 12)
    with observe(trace=False, profile=False):
        observed = run_burst("fast", 12)
    assert observed[1] == baseline[1]   # events
    assert observed[2] == baseline[2]   # transactions
    assert observed[3] == baseline[3]   # sim seconds
