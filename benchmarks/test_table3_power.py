"""Table 3: measured MBus power draw.

Regenerates the per-role energy table (sending member+mediator,
receiving member, forwarding member, average) and cross-checks it
against the edge-accurate simulator's activity counts.
"""

import pytest

from repro.analysis import format_table, render_check
from repro.core import Address, MBusSystem
from repro.power import ActivityEnergyModel, MeasuredEnergyModel


def _table3_rows(model):
    return [
        ("Member+Mediator Node sending", model.roles.tx),
        ("Member Node receiving", model.roles.rx),
        ("Member Node forwarding", model.roles.fwd),
        ("Average", model.average_pj_per_bit()),
    ]


def test_table3_measured_power(benchmark, report):
    model = MeasuredEnergyModel()
    rows = benchmark(_table3_rows, model)
    lines = [
        format_table(
            ["Role", "Energy per bit (pJ)"],
            rows,
            title="Table 3 - Measured MBus Power Draw (reproduced)",
        ),
        render_check("average pJ/bit", 22.6, model.average_pj_per_bit(), True),
    ]
    report("\n".join(lines))
    # Published values.
    assert model.roles.tx == pytest.approx(27.45)
    assert model.roles.rx == pytest.approx(22.71)
    assert model.roles.fwd == pytest.approx(17.55)
    assert model.average_pj_per_bit() == pytest.approx(22.6, abs=0.05)
    # Claim: forwarding nodes are cheapest ("reduce switching activity
    # by not clocking flops in their receive buffer").
    assert model.roles.fwd < model.roles.rx < model.roles.tx


def test_table3_activity_cross_check(benchmark, report):
    """The edge simulator's activity supports the role ordering: the
    transmitter's pads toggle at least as often as a forwarder's."""

    def run():
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("tx", short_prefix=0x2)
        system.add_node("fwd", short_prefix=0x3)
        system.send("tx", Address.short(0x1, 5), bytes(32))
        return system.wire_activity()

    activity = benchmark(run)
    model = ActivityEnergyModel()
    total_pj = model.system_energy_pj(activity)
    report(
        format_table(
            ["Node", "Pad transitions"],
            sorted(activity.items()),
            title=(
                "Table 3 cross-check - wire activity for one 32 B message "
                f"(CV^2 total: {total_pj:.0f} pJ at "
                f"{model.energy_per_transition_pj():.2f} pJ/transition)"
            ),
        )
    )
    assert activity["tx"] >= activity["fwd"]
    assert total_pj > 0
