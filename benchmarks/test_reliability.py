"""Robustness figure: recovery rate vs. glitch rate.

Reproduces the paper's *qualitative* reliability story (Sections 3,
4.8, 4.9): a clean bus delivers everything; under seeded EMI the
protocol degrades gracefully — disturbed transactions fail loudly
(general errors, NAKs, interjections) rather than silently, retries
recover what arbitration-phase kills would have lost, and the bus
itself keeps completing transactions at every rate (no lock-up).
"""

from repro.analysis import Series, ascii_chart, format_table
from repro.analysis.reliability import DEFAULT_RATES, recovery_vs_glitch_rate


def test_recovery_vs_glitch_rate_story(report):
    rows = recovery_vs_glitch_rate(rates=DEFAULT_RATES, seed=7)

    report(format_table(
        ["glitch/s", "recovery", "intact", "corrupt", "lost", "failed",
         "txns", "interject"],
        [
            (
                f"{row['glitch_rate_hz']:g}",
                f"{row['recovery_rate']:.1%}",
                row["intact_deliveries"],
                row["corrupted_deliveries"],
                row["lost_deliveries"],
                row["failed_transactions"],
                row["n_transactions"],
                row["interjections"],
            )
            for row in rows
        ],
        title="Recovery rate vs. glitch rate (seeded EMI, edge backend)",
    ) + "\n\n" + ascii_chart(
        [Series.of(
            "recovery rate",
            [(row["glitch_rate_hz"], row["recovery_rate"]) for row in rows],
        )],
        x_label="glitches/s", y_label="recovered fraction",
        title="Robustness under seeded wire glitches",
    ))

    clean, *noisy = rows
    # A fault-free bus delivers everything.
    assert clean["glitch_rate_hz"] == 0.0
    assert clean["recovery_rate"] == 1.0
    assert clean["failed_transactions"] == 0
    assert clean["corrupted_deliveries"] == 0

    # Disturbance grows with the glitch rate: failed transactions are
    # monotonically non-decreasing along the (seeded) rate grid, and
    # the heaviest EMI visibly damages deliveries.
    failed = [row["failed_transactions"] for row in rows]
    assert failed == sorted(failed)
    assert noisy[-1]["recovery_rate"] < 1.0
    assert noisy[-1]["failed_transactions"] > 0

    for row in rows:
        # No lock-up: the bus keeps completing transactions (at least
        # one per expected message — failures spawn retries, never
        # silence), and every transaction ends through exactly one
        # interjection sequence.
        assert row["n_transactions"] >= row["expected_deliveries"]
        assert row["interjections"] == row["n_transactions"]
        # Failures are loud: every lost delivery is accounted for by a
        # failed or corrupted transaction, never silently dropped.
        assert row["lost_deliveries"] <= (
            row["failed_transactions"] + row["corrupted_deliveries"]
        )


def test_reliability_reports_are_seed_deterministic(report):
    one = recovery_vs_glitch_rate(rates=(4_000.0,), seed=7)
    two = recovery_vs_glitch_rate(rates=(4_000.0,), seed=7)
    other = recovery_vs_glitch_rate(rates=(4_000.0,), seed=8)
    assert one == two
    # A different seed moves the glitches; the study is a pure
    # function of (seed, spec, workload, grid).
    assert one[0]["edges_injected"] != other[0]["edges_injected"] or (
        one != other
    )
    report(
        "reliability determinism: seed 7 twice -> identical rows; "
        f"seed 8 -> {other[0]['recovery_rate']:.1%} recovery "
        f"(vs {one[0]['recovery_rate']:.1%})"
    )
