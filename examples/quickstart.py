#!/usr/bin/env python3
"""Quickstart: build an MBus system, move messages, inspect costs.

Run:  python examples/quickstart.py
"""

from repro import (
    Address,
    Burst,
    MBusSystem,
    NodeSpec,
    SystemSpec,
    TransactionModel,
    run,
)
from repro.power import MeasuredEnergyModel


def main() -> None:
    # -- 1. Assemble a three-chip stack (Figure 4 topology). -----------
    # The mediator generates the bus clock and resolves arbitration;
    # members are power-gated and sleep until spoken to.
    system = MBusSystem()
    system.add_mediator_node("cpu", short_prefix=0x1)
    system.add_node("sensor", short_prefix=0x2, power_gated=True)
    system.add_node("radio", short_prefix=0x3, power_gated=True)

    # -- 2. Send a message to a sleeping chip. --------------------------
    # Power-oblivious communication: the sender needs no idea of the
    # receiver's power state; MBus wakes exactly the addressed node.
    result = system.send("cpu", Address.short(0x2, fu_id=5), b"\x12\x34\x56")
    print(f"cpu -> sensor: ok={result.ok} control={result.control.name}")
    print(f"  clock cycles: {result.clock_cycles} (+{result.control_cycles} control)")
    print(f"  sensor received: {system.node('sensor').inbox[-1].payload.hex()}")
    print(f"  sensor back asleep: {not system.node('sensor').is_fully_awake}")

    # -- 3. Members talk to each other without the processor. -----------
    result = system.send("sensor", Address.short(0x3, fu_id=5), b"\xAA\xBB")
    print(f"\nsensor -> radio directly: ok={result.ok} rx={result.rx_nodes}")

    # -- 4. Broadcast on a channel (Section 4.6). -------------------------
    result = system.broadcast("cpu", channel=0, payload=b"\x01")
    print(f"broadcast channel 0 reached: {result.rx_nodes}")

    # -- 5. Cost any message analytically (Sections 6.1 / 6.2). -----------
    model = TransactionModel(clock_hz=400_000)
    cost = model.cost(n_bytes=8, n_chips=3)
    measured = MeasuredEnergyModel()
    print(f"\n8-byte message: {cost.total_cycles} cycles, "
          f"{cost.duration_s * 1e6:.0f} us at 400 kHz")
    print(f"  simulated energy: {cost.energy_pj / 1e3:.2f} nJ")
    print(f"  measured-silicon energy: "
          f"{measured.message_energy_pj(8, 3) / 1e3:.2f} nJ "
          f"(the paper's 5.6 nJ)")

    # -- 6. The same experiment, declaratively. -------------------------
    # A SystemSpec + Workload pair is pure data (JSON round-trippable);
    # run() picks a backend and returns a structured report.  See
    # examples/scenario_sweep.py and `python -m repro run` for more.
    spec = SystemSpec(
        name="quickstart",
        nodes=(
            NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
            NodeSpec("sensor", short_prefix=0x2, power_gated=True),
            NodeSpec("radio", short_prefix=0x3, power_gated=True),
        ),
    )
    workload = Burst("cpu", Address.short(0x2, 5), b"\x12\x34" * 4, count=5)
    report = run(spec, workload, backend="auto")
    print(f"\ndeclarative run [{report.backend} backend]: "
          f"{report.n_ok}/{report.n_transactions} ok, "
          f"{report.throughput_tps:,.0f} txn/s, "
          f"{report.goodput_bps / 1e3:.1f} kbit/s")


if __name__ == "__main__":
    main()
