#!/usr/bin/env python3
"""Fault injection end to end: breaking the bus and watching it recover.

The paper's robustness claims — interjection as a universal
error/recovery signal (4.9), tolerance of member power loss
mid-transaction (Section 3), glitch-resilient edge semantics
(Figure 5) — become runnable experiments with ``repro.faults``:

1. a clean baseline (an *empty* fault set still yields a
   ReliabilityReport — the 100%-recovery control row);
2. a bit-flip window corrupting a payload in flight;
3. a mid-transaction receiver power loss, recovered by NAK;
4. seeded random EMI gridded over glitch rates with a
   :class:`repro.campaign.Campaign` (the robustness curve);
5. the JSON forms used by ``python -m repro run --faults ...``.

Run:  python examples/fault_injection.py
"""

import json

from repro import Address
from repro.faults import (
    BitFlip,
    FaultSpec,
    NodePowerLoss,
    RandomGlitches,
    load_faults,
)
from repro.campaign import Campaign, Grid
from repro.scenario import Burst, NodeSpec, OneShot, SystemSpec, run


def build_spec() -> SystemSpec:
    return SystemSpec(
        name="fault-demo",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
            NodeSpec("sensor", short_prefix=0x2),
            NodeSpec("radio", short_prefix=0x3),
        ),
    )


def clean_baseline(spec: SystemSpec) -> None:
    print("=== 1. clean baseline (empty fault set) ===")
    workload = Burst("cpu", Address.short(0x2, 5), bytes(range(8)), count=4)
    report = run(spec, workload, faults=FaultSpec())
    assert report.reliability.recovery_rate == 1.0
    print(report.reliability.summary())
    print()


def corrupted_payload(spec: SystemSpec) -> None:
    print("=== 2. bit-flip window mid-message ===")
    workload = OneShot("cpu", Address.short(0x2, 5), bytes(range(8)))
    faults = FaultSpec(
        (BitFlip("cpu", at_s=100e-6, duration_s=5e-6),), name="flip"
    )
    report = run(spec, workload, faults=faults)
    rel = report.reliability
    print(rel.summary())
    delivered = report.deliveries[0][1] if report.deliveries else b""
    print(f"sent {bytes(range(8)).hex()}, delivered {delivered.hex()}")
    print()


def receiver_brownout(spec: SystemSpec) -> None:
    print("=== 3. receiver power loss mid-transaction ===")
    workload = OneShot("cpu", Address.short(0x2, 5), bytes(range(8)))
    faults = FaultSpec(
        (NodePowerLoss("sensor", at_s=100e-6, duration_s=200e-6),),
        name="brownout",
    )
    report = run(spec, workload, faults=faults)
    print(report.reliability.summary())
    print()


def emi_campaign(spec: SystemSpec) -> None:
    print("=== 4. recovery rate vs. glitch rate (as a campaign) ===")
    workload = Burst("cpu", Address.short(0x2, 5), bytes(range(8)), count=6)
    results = Campaign(
        spec,
        workload,
        grid=Grid.product(rate_hz=[0.0, 2_000.0, 8_000.0]),
        faults=lambda p: FaultSpec(
            (RandomGlitches(seed=11, rate_hz=p["rate_hz"],
                            duration_s=0.0015, edges=1),)
        ),
        name="emi-demo",
    ).run()
    for result in results:
        rel = result.reliability
        print(
            f"  rate {result.params['rate_hz']:>7,.0f}/s: "
            f"recovery {rel['recovery_rate']:6.1%}, "
            f"{rel['failed_transactions']}/{rel['n_transactions']} "
            f"txns failed, {rel['retransmissions']} retransmissions"
        )
    print()


def json_round_trip() -> None:
    print("=== 5. faults are data ===")
    faults = FaultSpec(
        (
            RandomGlitches(seed=7, rate_hz=4_000.0, duration_s=0.002),
            NodePowerLoss("radio", at_s=0.001, duration_s=0.0005),
        ),
        name="emi-plus-brownout",
    )
    payload = json.dumps(faults.to_dict())
    assert load_faults(json.loads(payload)) == faults
    print(f"round-tripped {len(payload)} bytes of fault JSON; try:")
    print("  python -m repro run examples/scenarios/glitch_storm.json \\")
    print("      --faults examples/scenarios/glitch_storm.faults.json")


def main() -> None:
    spec = build_spec()
    clean_baseline(spec)
    corrupted_payload(spec)
    receiver_brownout(spec)
    emi_campaign(spec)
    json_round_trip()


if __name__ == "__main__":
    main()
