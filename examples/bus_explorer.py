#!/usr/bin/env python3
"""Bus explorer: arbitration waveforms, priority, and enumeration.

Recreates the paper's Figure 5 scenario — two nodes requesting the
bus nearly simultaneously, with the topological loser stealing the
bus through the priority arbitration cycle — and dumps the actual
CLK/DATA waveforms from the edge-accurate simulator.  Then runs the
Section 4.7 enumeration protocol on a system with two copies of the
same chip design.

Run:  python examples/bus_explorer.py
"""

from repro.core import Address, MBusSystem
from repro.core.constants import MBusTiming
from repro.core.enumeration import Enumerator


def arbitration_waveforms() -> None:
    print("=== Figure 5 scenario: arbitration + priority arbitration ===")
    system = MBusSystem(trace=True, timing=MBusTiming(clock_hz=400_000))
    system.add_mediator_node("med", short_prefix=0x1)
    system.add_node("n1", short_prefix=0x2)
    system.add_node("n2", short_prefix=0x3)
    system.add_node("n3", short_prefix=0x4)
    system.build()

    # n1 and n3 request at nearly the same time; n3 carries the
    # priority flag and claims the bus despite losing arbitration.
    system.post("n3", Address.short(0x1, 5), b"\x33", priority=True)
    system.post("n1", Address.short(0x1, 5), b"\x11")
    system.run_until_idle()

    order = [t.tx_node for t in system.transactions]
    print(f"  transmission order: {order} (n3 wins via priority)")
    print(f"  n1 preempted {system.node('n1').engine.stats.priority_preemptions} time(s)")

    print("\n  waveforms (first 60 us, '#'=high '_'=low):")
    art = system.tracer.ascii_waveform(
        ["med.dout.clk", "med.dout.data", "n1.dout.data", "n3.dout.data"],
        step=1_000_000,  # 1 us per character
    )
    for line in art.splitlines():
        print("  " + line[:100])


def enumeration_demo() -> None:
    print("\n=== Section 4.7: run-time enumeration ===")
    system = MBusSystem()
    system.add_mediator_node("ctl", short_prefix=0x1)
    # Two copies of the same memory chip: identical full prefixes —
    # the configuration that *requires* enumeration.
    system.add_node("mem0", full_prefix=0xBEEF0)
    system.add_node("mem1", full_prefix=0xBEEF0)
    system.add_node("sensor", full_prefix=0x12345)
    system.build()

    assignments = Enumerator(system, "ctl").enumerate()
    for name, prefix in assignments.items():
        print(f"  {name:<7s} -> short prefix {prefix:#x}")
    print("  (prefix order follows ring position: topological priority)")

    # The enumerated duplicates are now individually addressable.
    result = system.send("ctl", Address.short(assignments["mem1"], 5), b"\x42")
    print(f"  message to mem1 via its new prefix: ok={result.ok}, "
          f"delivered={system.node('mem1').inbox[-1].payload.hex()}")


def main() -> None:
    arbitration_waveforms()
    enumeration_demo()


if __name__ == "__main__":
    main()
