#!/usr/bin/env python3
"""The Campaign API end to end: the robustness figure as a cached study.

The paper's figures are parameter studies; ``repro.campaign`` makes
each one a first-class object that compiles to content-addressed
trials, executes through pluggable executors, memoises results on
disk and answers queries.  This example reproduces the
recovery-rate-vs-glitch-rate figure (the PR 4 reliability study) as a
campaign and shows the full lifecycle:

1. compile — the grid becomes an explicit trial list with stable
   SHA-256 keys (hash of the spec/workload/faults/backend documents);
2. first run — every trial executes (process pool, 2 workers) and
   lands in an on-disk ResultStore (append-only JSONL);
3. second run — nothing executes; every trial is served from cache;
4. query — the figure is a ResultSet query, not a loop;
5. the JSON document form used by
   ``python -m repro campaign run/status/results``.

Run:  python examples/campaign_study.py
"""

import tempfile

from repro.analysis import Series, ascii_chart
from repro.analysis.reliability import recovery_campaign
from repro.campaign import ResultStore


def main() -> None:
    campaign = recovery_campaign(rates=(0.0, 1_000.0, 4_000.0, 16_000.0))

    print("=== 1. campaigns compile to content-addressed trials ===")
    trials = campaign.trials()
    for trial in trials:
        rate = trial.params["glitch_rate_hz"]
        print(f"  trial {trial.index}: glitch_rate_hz={rate:>7g}  "
              f"key={trial.key[:16]}…")

    with tempfile.TemporaryDirectory() as store_dir:
        store = ResultStore(store_dir)

        print("\n=== 2. first run: everything executes (2 workers) ===")
        first = campaign.run(executor="process", workers=2, store=store)
        print(f"  {first.summary()}")

        print("\n=== 3. second run: everything is served from cache ===")
        second = campaign.run(executor="process", workers=2, store=store)
        print(f"  {second.summary()}")
        assert second.executed == 0, "unchanged trials must hit the cache"
        assert first.records() == second.records(), "cache must be exact"

        print("\n=== 4. the figure is a query ===")
        points = second.series(
            "glitch_rate_hz", "report.reliability.recovery_rate"
        )
        print(second.to_table(columns=[
            ("glitch/s", "glitch_rate_hz"),
            ("recovery", "report.reliability.recovery_rate"),
            ("failed", "report.reliability.failed_transactions"),
            ("txns", "report.reliability.n_transactions"),
            ("cached", lambda r: "yes" if r.cached else "no"),
        ]))
        print()
        print(ascii_chart(
            [Series.of("recovery rate", points)],
            x_label="glitches/s", y_label="recovered fraction",
            title="Robustness under seeded wire glitches (cached campaign)",
        ))

    print("\n=== 5. the CLI document form ===")
    print("  the same study as JSON lives at "
          "examples/scenarios/recovery_campaign.json; drive it with")
    print("    python -m repro campaign run "
          "examples/scenarios/recovery_campaign.json \\")
    print("        --store out/recovery --executor process --workers 2")
    print("    python -m repro campaign status "
          "examples/scenarios/recovery_campaign.json --store out/recovery")
    print("    python -m repro campaign results "
          "examples/scenarios/recovery_campaign.json --store out/recovery "
          "--where faults.faults.0.rate_hz=4000.0")


if __name__ == "__main__":
    main()
