#!/usr/bin/env python3
"""Declarative scenarios end to end: specs, workloads, runs, sweeps.

Everything the paper's evaluation does to the bus — single
transactions, saturating bursts, periodic sensing, random traffic,
interrupt wakeups — is expressible as a (SystemSpec, Workload) pair:
plain data that runs identically on the edge-accurate engine and the
transaction-level fast path.  This example:

1. builds a spec and round-trips it through JSON;
2. runs one workload on BOTH backends and shows the results agree;
3. runs a clock-rate Campaign over a Figure 14-style saturating
   burst and queries the ResultSet (see examples/campaign_study.py
   for caching and parallel execution);
4. shows the scenario-file form used by ``python -m repro run/sweep``
   (see examples/scenarios/fig14_burst.json).

Run:  python examples/scenario_sweep.py
"""

import json

from repro import Address
from repro.campaign import Campaign, Grid
from repro.scenario import (
    Burst,
    Interrupt,
    NodeSpec,
    Periodic,
    RandomTraffic,
    SystemSpec,
    run,
)


def build_spec() -> SystemSpec:
    return SystemSpec(
        name="sweep-demo",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("cpu", short_prefix=0x1, is_mediator=True),
            NodeSpec("sensor", short_prefix=0x2, power_gated=True),
            NodeSpec("radio", short_prefix=0x3, power_gated=True),
            NodeSpec("logger", short_prefix=0x4),
        ),
    )


def json_round_trip(spec: SystemSpec) -> None:
    print("=== 1. specs are data ===")
    payload = json.dumps(spec.to_dict())
    assert SystemSpec.from_dict(json.loads(payload)) == spec
    print(f"  {spec.name!r}: {len(spec.nodes)} nodes, "
          f"{len(payload)} bytes of JSON, round-trips exactly")


def both_backends(spec: SystemSpec) -> None:
    print("\n=== 2. one workload, two engines, one answer ===")
    workload = (
        Periodic("cpu", Address.short(0x2, 5), b"\x01\x02\x03\x04",
                 period_s=0.02, count=3)
        + RandomTraffic(seed=7, count=6, mean_gap_s=0.01)
        + Interrupt("radio", at_s=0.05)
    )
    edge = run(spec, workload, backend="edge")
    fast = run(spec, workload, backend="fast")
    assert edge.transaction_signatures() == fast.transaction_signatures()
    assert edge.delivery_set() == fast.delivery_set()
    print(f"  edge: {edge.n_ok}/{edge.n_transactions} ok in "
          f"{edge.events_processed} events, {edge.wall_s * 1e3:.1f} ms wall")
    print(f"  fast: {fast.n_ok}/{fast.n_transactions} ok in "
          f"{fast.events_processed} events, {fast.wall_s * 1e3:.1f} ms wall")
    print("  transaction streams and delivery sets: identical")


def clock_campaign(spec: SystemSpec) -> None:
    print("\n=== 3. Figure 14-style campaign (saturating 8-byte burst) ===")
    workload = Burst("cpu", Address.short(0x4, 5), bytes(range(8)), count=8)
    results = Campaign(
        spec,
        workload,
        grid=Grid.product(clock_hz=[100e3, 400e3, 1e6, 7.1e6]),
        backend="fast",
        name="fig14-clock-sweep",
    ).run()
    print("      clock    txn/s    kbit/s")
    for clock_hz, tps in results.series("clock_hz", "report.throughput_tps"):
        kbps = results.filter(clock_hz=clock_hz).aggregate(
            lambda r: r.report["goodput_bps"] / 1e3, agg="mean"
        )
        print(f"  {clock_hz / 1e3:>7.0f}k  {tps:>8,.0f}  {kbps:>8.1f}")
    print(f"  ({results.summary()})")


def scenario_file_form(spec: SystemSpec) -> None:
    print("\n=== 4. the CLI scenario-file form ===")
    document = {
        "system": spec.to_dict(),
        "workload": Burst("cpu", Address.short(0x2, 5), b"\xAB" * 8,
                          count=4).to_dict(),
        "sweep": {"clock_hz": [100e3, 400e3]},
    }
    print(f"  a scenario document has keys {sorted(document)}; feed it to")
    print("    python -m repro run   SCENARIO.json [--backend edge|fast]")
    print("    python -m repro sweep SCENARIO.json")
    print("  (a ready-made one lives at examples/scenarios/fig14_burst.json)")


def main() -> None:
    spec = build_spec()
    json_round_trip(spec)
    both_backends(spec)
    clock_campaign(spec)
    scenario_file_form(spec)


if __name__ == "__main__":
    main()
