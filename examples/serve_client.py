#!/usr/bin/env python3
"""Simulation as a service: the campaign server end to end.

``repro.serve`` turns the campaign layer into a multi-tenant HTTP
service: clients POST campaign documents, the server executes them
through the shared content-addressed ResultStore (so identical work
— across requests, clients and restarts — is deduped to near-free
cache hits), and results stream back as JSONL while trials are still
running.  This example hosts a server in-process (a background
thread holding its own asyncio loop — the same topology the tests
use) and walks the client lifecycle:

1. submit — a campaign JSON document becomes a job with a stable,
   content-hashed id;
2. stream — ``GET /v1/campaigns/{id}/results`` delivers each record
   the moment its trial resolves;
3. watch — poll the status document to a terminal state;
4. resubmit — the same document again is served entirely from the
   dedupe cache (0 executed);
5. metrics — the ``repro.obs`` counters the server kept.

Against a real server the client half is just:

    python -m repro serve --root /tmp/serve-state &
    python -m repro campaign submit CAMPAIGN.json --watch \\
        --executor process --workers 2

Run:  python examples/serve_client.py
"""

import asyncio
import json
import os
import tempfile
import threading

from repro import obs
from repro.serve import CampaignServer, Scheduler, ServeClient

SCENARIO = os.path.join(
    os.path.dirname(__file__), "scenarios", "recovery_campaign.json"
)


class BackgroundServer:
    """A live campaign server on an ephemeral port."""

    def __init__(self, root: str) -> None:
        self.server = CampaignServer(Scheduler(root=root), port=0)
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(10)
        return self

    def __exit__(self, *_exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def main() -> None:
    with open(SCENARIO) as handle:
        document = json.load(handle)

    with obs.observe(trace=False, profile=False) as session, \
            tempfile.TemporaryDirectory() as root, \
            BackgroundServer(root) as live:
        client = ServeClient(port=live.server.port)
        print(f"=== server up at {live.server.address} ===")
        print(f"  healthz: {client.healthz()}")

        print("\n=== 1. submit a campaign document ===")
        status, created = client.submit(document, client="alice")
        print(f"  job {status.job_id} (created={created}, "
              f"{status.n_trials} trials)")

        print("\n=== 2. results stream as trials resolve ===")
        for record in client.results(status.job_id):
            rate = record["params"]["faults.faults.0.rate_hz"]
            recovery = record["report"]["reliability"]["recovery_rate"]
            print(f"  glitch_rate_hz={rate:>7g}  "
                  f"recovery={recovery:.1%}  key={record['key'][:12]}…")

        print("\n=== 3. watch to the terminal state ===")
        final = client.watch(status.job_id, poll_s=0.05, timeout_s=120)
        print(f"  {final.summary()}")
        assert final.ok

        print("\n=== 4. resubmit: served from the dedupe cache ===")
        again, _ = client.submit(document, client="alice")
        refinal = client.watch(again.job_id, poll_s=0.05, timeout_s=120)
        print(f"  {refinal.summary()}")
        assert refinal.executed == 0, "resubmission must be cache-served"
        assert refinal.cached == refinal.n_trials

        print("\n=== 5. the server's own metrics ===")
        counters = session.metrics.to_dict()["counters"]
        for name in sorted(counters):
            if name.startswith("serve."):
                print(f"  {name} = {counters[name]}")
        dedupe = counters.get("serve.dedupe_hits{client=alice}", 0)
        assert dedupe >= refinal.n_trials

    print("\nserver stopped; state journaled for restart survival")


if __name__ == "__main__":
    main()
