#!/usr/bin/env python3
"""The sense-and-send temperature system of Section 6.3.1 (Figure 12).

Runs the 2.2 mm^3 stack — ARM Cortex-M0 + mediator, temperature
sensor, 900 MHz radio — through measurement rounds on the
edge-accurate simulator, then prints the paper's energy/lifetime
arithmetic: the 5.6 nJ response, the 6.6 nJ direct-routing saving,
and the 71-hour battery-life improvement.

Run:  python examples/temperature_sensor.py
"""

import json

from repro.scenario import run
from repro.systems import (
    SenseAndSendAnalysis,
    TemperatureSystem,
    sample_request_workload,
    sense_and_send_spec,
)
from repro.systems.chips import RadioChip, TemperatureSensorChip


def run_rounds(direct: bool, rounds: int = 3) -> None:
    mode = "direct-to-radio" if direct else "relay-via-cpu"
    print(f"\n=== {mode} ===")
    system = TemperatureSystem(direct_to_radio=direct)
    for i in range(rounds):
        transactions = system.run_round()
        hops = ", ".join(
            f"{t.tx_node}->{'/'.join(t.rx_nodes)}" for t in transactions
        )
        print(f"  round {i}: {hops}")
    packets = system.radio_packets()
    print(f"  radio transmitted {len(packets)} packets; "
          f"latest reading: {int.from_bytes(packets[-1][2:6], 'big') / 100:.2f} K")
    sensor = system.system.node("sensor")
    print(f"  sensor layer wakeups: {sensor.layer_domain.wake_count}, "
          f"asleep again: {not sensor.layer_domain.is_on}")


def print_paper_arithmetic() -> None:
    analysis = SenseAndSendAnalysis()
    print("\n=== Section 6.3.1 arithmetic ===")
    print(f"  8 B response energy:   {analysis.response_energy_nj():.2f} nJ "
          f"(paper: 5.6)")
    print(f"  direct-routing saving: {analysis.relay_penalty_nj():.2f} nJ "
          f"(paper: 6.6)")
    print(f"  bus utilization:       "
          f"{analysis.bus_utilization() * 100:.4f} % (paper: 0.0022 %)")
    print(f"  lifetime direct:       {analysis.lifetime_days(True):.1f} days "
          f"(paper: ~47.5)")
    print(f"  lifetime relayed:      {analysis.lifetime_days(False):.1f} days "
          f"(paper: ~44.5)")
    print(f"  improvement:           {analysis.lifetime_gain_hours():.0f} hours "
          f"(paper: 71)")
    print("\n  relay-mode event breakdown:")
    for line in analysis.event_ledger(direct=False).summary().splitlines():
        print(f"    {line}")


def declarative_scenario() -> None:
    """The same system as data: spec + workload through the runner.

    The topology is a JSON-able :class:`SystemSpec`; the CPU's
    request stream is a :class:`Periodic` workload; the behavioural
    sensor/radio chips (code, not data) attach via the runner's
    ``setup`` hook.  ``backend="fast"`` makes long-horizon lifetime
    studies cheap.
    """
    print("\n=== the same system, declaratively (repro.scenario) ===")
    spec = sense_and_send_spec()
    workload = sample_request_workload(rounds=3, interval_s=0.1)
    report = run(
        spec,
        workload,
        backend="fast",
        setup=lambda system: (
            TemperatureSensorChip(system.node("sensor")),
            RadioChip(system.node("radio")),
        ),
    )
    for line in report.summary().splitlines():
        print(f"  {line}")
    print(f"  spec JSON: {len(json.dumps(spec.to_dict()))} bytes, "
          f"round-trips exactly (see `python -m repro run --help`)")


def main() -> None:
    run_rounds(direct=True)
    run_rounds(direct=False)
    print_paper_arithmetic()
    declarative_scenario()


if __name__ == "__main__":
    main()
