#!/usr/bin/env python3
"""Section 7 in action: rotating priority, preemption, resumability.

The paper's discussion section sketches three extensions this
reproduction implements in full:

* **mutable / rotating priority** — move the arbitration break point
  off the mediator and rotate it for fairness;
* **third-party interjection** — a latency-sensitive node killing a
  long transfer (after the 4-byte minimum-progress guarantee);
* **resumable messages** — a well-known functional unit on which
  interrupted transfers resume instead of restarting.

Run:  python examples/advanced_features.py
"""

from repro.core import Address, MBusSystem
from repro.core.fairness import RotatingPriority, fairness_index
from repro.core.monitor import ProtocolMonitor
from repro.core.resumable import ResumableReceiver, ResumableSender


def fairness_demo() -> None:
    print("=== rotating priority (Section 7) ===")

    def contend(rotate: bool) -> dict:
        system = MBusSystem()
        system.add_mediator_node("m", short_prefix=0x1)
        system.add_node("a", short_prefix=0x2)
        system.add_node("b", short_prefix=0x3)
        system.add_node("c", short_prefix=0x4)
        system.build()
        wins: dict = {}
        system.on_transaction_complete.append(
            lambda r: wins.__setitem__(r.tx_node, wins.get(r.tx_node, 0) + 1)
        )
        policy = RotatingPriority(system, ["a", "b", "c"]) if rotate else None
        for i in range(5):
            for name in ("a", "b", "c"):
                system.post(name, Address.short(0x1, 5), bytes([i]))
        system.run_until_idle()
        order = [t.tx_node for t in system.transactions[:6]]
        print(f"  {'rotating' if rotate else 'fixed   '}: first six winners "
              f"{order}, fairness index "
              f"{fairness_index(wins):.2f}")
        return wins

    contend(rotate=False)
    contend(rotate=True)


def preemption_and_resume_demo() -> None:
    print("\n=== third-party interjection + resumable transfer ===")
    system = MBusSystem()
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("rx", short_prefix=0x2, rx_buffer_bytes=4096)
    system.add_node("urgent", short_prefix=0x3)
    system.build()

    receiver = ResumableReceiver(system.node("rx"))
    sender = ResumableSender(system, "m")
    payload = bytes((i * 13) & 0xFF for i in range(900))

    # An urgent node kills whatever is on the bus 80 cycles in.
    kills = []

    def preempt():
        try:
            system.node("urgent").request_interjection("urgent-telemetry")
            kills.append(system.sim.now)
        except Exception:
            pass

    system.sim.schedule(int(80 * 2.5e-6 * 1e12) + 3_000_000, preempt)

    stream = sender.send(0x2, payload, chunk_bytes=512)
    received = receiver.finish(stream)
    chunks = sum(
        1 for t in system.transactions
        if t.message is not None and t.message.dest.fu_id == 15
    )
    print(f"  900 B stream delivered intact: {received == payload}")
    print(f"  transfer used {chunks} chunk transactions "
          f"({len(kills)} killed and resumed)")

    ProtocolMonitor(system).assert_clean()
    print("  protocol monitor: all invariants hold")


def main() -> None:
    fairness_demo()
    preemption_and_resume_demo()


if __name__ == "__main__":
    main()
