#!/usr/bin/env python3
"""The motion-activated imaging system of Section 6.3.2 (Figure 13).

The imager power-gates nearly everything; its always-on motion
detector asserts one wire, MBus wakes the chip via a null
transaction, and a frame streams to the radio row by row.  A scaled
frame runs on the edge-accurate simulator; the full 28.8 kB overhead
arithmetic is printed alongside.

Run:  python examples/motion_camera.py
"""

from repro.scenario import run
from repro.systems import (
    ImagerSystem,
    ImageTransferAnalysis,
    imager_spec,
    motion_event_workload,
)
from repro.systems.chips import ImagerChip, RadioChip


def run_motion_event() -> None:
    print("=== motion event on the edge-accurate simulator (8-row frame) ===")
    system = ImagerSystem(rows=8)
    imager = system.system.node("imager")
    print(f"  imager asleep: bus={imager.bus_domain.is_on} "
          f"layer={imager.layer_domain.is_on}")

    transactions = system.motion_event()
    nulls = sum(1 for t in transactions if t.general_error)
    rows = sum(1 for t in transactions if t.ok)
    print(f"  motion! -> {nulls} wakeup null transaction, {rows} row messages")
    print(f"  radio buffered {len(system.received_rows())} rows of "
          f"{len(system.received_rows()[0])} bytes")
    print(f"  imager returned to sleep: layer={not imager.layer_domain.is_on}")
    print(f"  imager wakeup log: "
          + ", ".join(e.action for e in imager.bus_domain.log[:4]))


def print_transfer_analysis() -> None:
    analysis = ImageTransferAnalysis()
    print("\n=== full-frame (28.8 kB) transfer arithmetic ===")
    print(f"  MBus single message overhead:  "
          f"{analysis.mbus_single_overhead_bits} bits")
    print(f"  MBus 160 row messages:         "
          f"{analysis.mbus_rows_overhead_bits} bits "
          f"({analysis.mbus_rows_overhead_fraction * 100:.2f} % — paper: 1.31 %)")
    print(f"  extra cost of cooperating:     "
          f"{analysis.mbus_extra_bits_for_rows} bits (paper: 3,021)")
    print(f"  I2C whole image:               "
          f"{analysis.i2c_single_overhead_bits} bits "
          f"({analysis.i2c_single_overhead_fraction * 100:.1f} % — paper: 12.5 %)")
    print(f"  I2C row by row:                "
          f"{analysis.i2c_rows_overhead_bits} bits "
          f"({analysis.i2c_rows_overhead_fraction * 100:.1f} % — paper: 13.2 %)")
    print(f"  ACK overhead cut (rows):       "
          f"{analysis.ack_overhead_reduction(True) * 100:.1f} % "
          f"(paper: 90-99 %)")
    print("\n=== frame timing across the implemented clock range ===")
    for clock in (10e3, 400e3, 6.67e6):
        serial = analysis.frame_time_s(clock)
        paper = analysis.paper_quoted_frame_time_s(clock)
        print(f"  {clock / 1e3:>7.0f} kHz: bit-serial {serial:8.3f} s "
              f"({1 / serial:6.2f} fps); paper's byte-rate figure {paper:8.3f} s")


def declarative_scenario() -> None:
    """The same motion event as data: spec + Interrupt workload.

    The Figure 13 topology is a :class:`SystemSpec`; the motion
    detector's wake pulse is an :class:`Interrupt` workload; the
    imager/radio behaviour attaches via the runner's ``setup`` hook.
    The fast backend streams the frame at transaction granularity.
    """
    print("\n=== the same motion event, declaratively (repro.scenario) ===")
    report = run(
        imager_spec(),
        motion_event_workload(),
        backend="fast",
        setup=lambda system: (
            ImagerChip(system.node("imager"), radio_prefix=0x3, rows=8),
            RadioChip(system.node("radio")),
        ),
    )
    nulls = sum(1 for t in report.transactions if t.general_error)
    print(f"  {nulls} wakeup null transaction + "
          f"{report.n_ok} row messages on the {report.backend} backend")
    print(f"  goodput during the event: {report.goodput_bps / 1e3:.1f} kbit/s; "
          f"bus energy {report.energy_pj() / 1e3:.1f} nJ")


def main() -> None:
    run_motion_event()
    print_transfer_analysis()
    declarative_scenario()


if __name__ == "__main__":
    main()
