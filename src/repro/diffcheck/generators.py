"""Seeded scenario generation over topology × workload × fault space.

A *scenario* is one plain-JSON document::

    {
      "seed":     <int>,           # the generator seed it came from
      "system":   SystemSpec.to_dict(),
      "workload": Workload.to_dict(),
      "faults":   FaultSpec.to_dict() | None,
    }

Every scenario is a pure function of its seed: the generator draws
from a private :class:`random.Random`, so ``generate_scenario(7)`` is
the same document on every host, forever — the property that makes a
fuzz finding a *repro* instead of an anecdote.

Fault-free scenarios (the default ``faults_fraction`` leaves most of
the space clean) are the cross-backend differential surface: they run
on both the edge-accurate and the fast transaction-level engine.
Faulty scenarios force the edge engine (the fast path has no wires to
disturb) and feed the replay-determinism invariant instead.

The generated space deliberately mirrors the paper's experiments:
2–5 node systems (one mediator), bus clocks spanning the supported
range, one-shot / burst / periodic / seeded-random / broadcast
traffic with contending sources, and the fault primitives from
:mod:`repro.faults.primitives` at bounded rates.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from repro.campaign.trial import canonical_json
from repro.core.addresses import Address
from repro.faults.primitives import (
    BitFlip,
    DropEdge,
    FaultSpec,
    NodePowerLoss,
    RandomGlitches,
)
from repro.scenario.spec import NodeSpec, SystemSpec
from repro.scenario.workload import (
    Broadcast,
    Burst,
    Interrupt,
    OneShot,
    Periodic,
    RandomTraffic,
    Workload,
)

#: Bus clocks the generator draws from (Hz) — brackets the paper's
#: 400 kHz operating point and the software-bitbang ceiling.
CLOCK_CHOICES = (100_000, 120_000, 200_000, 400_000, 600_000, 1_000_000)

WORKLOAD_SHAPES = (
    "one_shot",
    "burst",
    "periodic",
    "random",
    "broadcast",
    "contending",
)


def _derive(seed: int, label: str) -> random.Random:
    """An independent, stable stream per (seed, label)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _random_payload(rng: random.Random, max_bytes: int = 8) -> bytes:
    return bytes(
        rng.randrange(256) for _ in range(rng.randint(1, max_bytes))
    )


def generate_system(seed: int) -> SystemSpec:
    """A 2–5 node topology: one short-addressed mediator plus members
    with randomised power gating."""
    rng = _derive(seed, "system")
    n_members = rng.randint(1, 4)
    nodes = [NodeSpec("m0", short_prefix=0x1, is_mediator=True)]
    for i in range(n_members):
        nodes.append(
            NodeSpec(
                f"n{i + 1}",
                short_prefix=0x2 + i,
                power_gated=rng.random() < 0.5,
            )
        )
    return SystemSpec(
        name=f"fuzz-{seed}",
        nodes=tuple(nodes),
        clock_hz=rng.choice(CLOCK_CHOICES),
    )


def generate_workload(seed: int, spec: SystemSpec) -> Workload:
    """Traffic over ``spec``, shaped by the seed."""
    rng = _derive(seed, "workload")
    names = [node.name for node in spec.nodes]
    prefixes = {
        node.name: node.short_prefix
        for node in spec.nodes
        if node.short_prefix is not None
    }

    def pick_dest(source: str) -> Address:
        target = rng.choice([n for n in names if n != source])
        return Address.short(prefixes[target], rng.randint(0, 15))

    shape = rng.choice(WORKLOAD_SHAPES)
    if shape == "one_shot":
        source = rng.choice(names)
        return OneShot(
            source,
            pick_dest(source),
            _random_payload(rng),
            priority=rng.random() < 0.3,
        )
    if shape == "burst":
        source = rng.choice(names)
        return Burst(
            source,
            pick_dest(source),
            _random_payload(rng),
            count=rng.randint(2, 6),
            gap_s=rng.choice([0.0, 0.001, 0.01]),
        )
    if shape == "periodic":
        source = rng.choice(names)
        return Periodic(
            source,
            pick_dest(source),
            _random_payload(rng),
            period_s=rng.choice([0.01, 0.02, 0.05]),
            count=rng.randint(2, 5),
        )
    if shape == "random":
        return RandomTraffic(
            seed=rng.randrange(2**31),
            count=rng.randint(4, 12),
            mean_gap_s=rng.choice([0.005, 0.01, 0.02]),
            min_bytes=1,
            max_bytes=rng.randint(2, 8),
            priority_fraction=rng.choice([0.0, 0.25, 0.5]),
        )
    if shape == "broadcast":
        source = rng.choice(names)
        workload = Broadcast(
            source,
            channel=0,
            payload=_random_payload(rng, max_bytes=4),
            priority=rng.random() < 0.5,
        )
        if rng.random() < 0.5 and len(names) > 1:
            waker = rng.choice([n for n in names if n != source])
            workload = workload + Interrupt(waker, at_s=0.02)
            workload = workload + OneShot(
                waker, pick_dest(waker), _random_payload(rng), at_s=0.03
            )
        return workload
    # "contending": several sources posting overlapping bursts.
    sources = rng.sample(names, min(len(names), rng.randint(2, 3)))
    workload: Optional[Workload] = None
    for source in sources:
        piece = Burst(
            source,
            pick_dest(source),
            _random_payload(rng, max_bytes=4),
            count=rng.randint(1, 3),
            at_s=rng.choice([0.0, 0.0005, 0.001]),
        )
        workload = piece if workload is None else workload + piece
    return workload


def generate_faults(seed: int, spec: SystemSpec) -> Optional[FaultSpec]:
    """A bounded fault set over ``spec`` (None for the clean draw)."""
    rng = _derive(seed, "faults")
    members = [
        node.name for node in spec.nodes if not node.is_mediator
    ]
    if not members:
        return None
    kind = rng.choice(("glitches", "drop_edge", "power_loss", "bit_flip"))
    if kind == "glitches":
        fault = RandomGlitches(
            seed=rng.randrange(2**31),
            rate_hz=rng.choice([50.0, 200.0, 1000.0]),
            duration_s=0.02,
            wire=rng.choice(["data", "clk"]),
        )
    elif kind == "drop_edge":
        fault = DropEdge(
            node=rng.choice(members),
            at_s=rng.choice([0.001, 0.005, 0.01]),
            count=rng.randint(1, 3),
        )
    elif kind == "power_loss":
        fault = NodePowerLoss(
            node=rng.choice(members),
            at_s=rng.choice([0.001, 0.005]),
            duration_s=rng.choice([0.002, 0.01]),
        )
    else:
        fault = BitFlip(
            node=rng.choice(members),
            at_s=rng.choice([0.001, 0.005]),
            duration_s=0.001,
        )
    return FaultSpec(faults=(fault,))


def generate_scenario(seed: int, faults_fraction: float = 0.25) -> Dict:
    """The scenario document for one seed (see module docs)."""
    rng = _derive(seed, "scenario")
    spec = generate_system(seed)
    workload = generate_workload(seed, spec)
    faults = None
    if rng.random() < faults_fraction:
        faults = generate_faults(seed, spec)
    return {
        "seed": seed,
        "system": spec.to_dict(),
        "workload": workload.to_dict(),
        "faults": None if faults is None else faults.to_dict(),
    }


def generate_scenarios(
    count: int, seed: int = 0, faults_fraction: float = 0.25
) -> List[Dict]:
    """``count`` scenarios from consecutive sub-seeds of ``seed``."""
    return [
        generate_scenario(seed * 1_000_003 + i, faults_fraction)
        for i in range(count)
    ]


def scenario_key(scenario: Dict) -> str:
    """Content address of a scenario (sans seed — two seeds that
    happen to draw the same documents are the same test)."""
    body = {k: v for k, v in scenario.items() if k != "seed"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()[:16]
