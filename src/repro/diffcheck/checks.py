"""Equivalence projections and invariant checks for differential runs.

The two simulation engines promise *result* equivalence, not timing
equivalence: the same transaction stream, the same deliveries, the
same wake counts — but not the same event counts or wall time.  The
projections here define exactly what "the same answer" means, and the
invariant checks capture properties that must hold regardless of
backend:

* **replay determinism** — running one scenario twice on one backend
  is byte-identical under the projections (a pure function of the
  documents);
* **fault-free no-op** — attaching an *empty* fault spec must not
  change the answer (the injection machinery may observe, never
  disturb);
* **conservation** — in a fault-free run, every delivered payload was
  posted by the workload, and no posted message is delivered more
  times than nodes that could receive it (faulty runs legitimately
  corrupt and retransmit, so conservation is scoped to clean runs);
* **bitbang feasibility** — scenarios clocked at or below the
  software-bitbang ceiling must be declared sustainable by the
  MSP430 cost model (:mod:`repro.bitbang.mbus_bitbang`), tying the
  fuzzer back to the paper's 120 kHz claim.

Every check returns a (possibly empty) list of human-readable
divergence strings; the harness aggregates them per scenario.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.primitives import FaultSpec, normalize_faults
from repro.scenario.runner import RunReport, run
from repro.scenario.spec import SystemSpec
from repro.scenario.workload import PostEvent, workload_from_dict


def wake_counts(report: RunReport) -> Dict[str, Dict[str, float]]:
    """Per-node wakeup counts — the power-facing half of the
    cross-backend contract."""
    return {
        node: {
            "bus_wakeups": domains["bus_wakeups"],
            "layer_wakeups": domains["layer_wakeups"],
        }
        for node, domains in report.power.items()
    }


def diff_reports(edge: RunReport, fast: RunReport) -> List[str]:
    """Divergences between two reports under the stable projections."""
    divergences: List[str] = []
    sig_edge = edge.transaction_signatures()
    sig_fast = fast.transaction_signatures()
    if sig_edge != sig_fast:
        detail = f"{len(sig_edge)} vs {len(sig_fast)} transactions"
        if len(sig_edge) == len(sig_fast):
            first = next(
                i
                for i, (a, b) in enumerate(zip(sig_edge, sig_fast))
                if a != b
            )
            detail = f"first differing transaction at index {first}"
        divergences.append(f"transaction signatures differ ({detail})")
    if edge.delivery_set() != fast.delivery_set():
        divergences.append("delivery sets differ")
    wakes_edge, wakes_fast = wake_counts(edge), wake_counts(fast)
    if wakes_edge != wakes_fast:
        nodes = sorted(
            node
            for node in set(wakes_edge) | set(wakes_fast)
            if wakes_edge.get(node) != wakes_fast.get(node)
        )
        divergences.append(f"wake counts differ for {', '.join(nodes)}")
    return divergences


def _run_scenario(scenario: Dict, backend: str, faults=None) -> RunReport:
    spec = SystemSpec.from_dict(scenario["system"])
    workload = workload_from_dict(scenario["workload"])
    if faults is None and scenario.get("faults") is not None:
        faults = FaultSpec.from_dict(scenario["faults"])
    return run(spec, workload, backend=backend, faults=faults)


def _observe(scenario: Dict, backend: str, faults=None):
    """Run and project, with errors as first-class outcomes: returns
    ``("ok", report)`` or ``("err", exception type name)``.  A
    scenario both runs refuse identically is consistent behaviour."""
    try:
        return ("ok", _run_scenario(scenario, backend, faults=faults))
    except Exception as exc:   # any failure class is an observation
        return ("err", type(exc).__name__)


def _diff_observations(first, second) -> List[str]:
    (kind_a, value_a), (kind_b, value_b) = first, second
    if kind_a == "ok" and kind_b == "ok":
        return diff_reports(value_a, value_b)
    if kind_a == kind_b:   # both raised
        if value_a == value_b:
            return []
        return [f"error types differ: {value_a} vs {value_b}"]
    raised = value_a if kind_a == "err" else value_b
    return [f"one run raises {raised}, the other answers"]


def check_replay_determinism(scenario: Dict, backend: str) -> List[str]:
    """Two runs of one scenario on one backend must project
    identically — including raising the same error, if any."""
    first = _observe(scenario, backend)
    second = _observe(scenario, backend)
    return [
        f"replay non-determinism on {backend!r}: {d}"
        for d in _diff_observations(first, second)
    ]


def check_fault_free_noop(scenario: Dict, backend: str) -> List[str]:
    """An *empty* fault spec must be a no-op: same projections as a
    run with no fault machinery attached at all."""
    if scenario.get("faults") is not None:
        return []   # only meaningful for clean scenarios
    bare = _observe(scenario, backend)
    observed = _observe(scenario, backend, faults=normalize_faults(()))
    return [
        f"empty fault spec changed the {backend!r} answer: {d}"
        for d in _diff_observations(bare, observed)
    ]


def check_conservation(scenario: Dict, report: RunReport) -> List[str]:
    """Fault-free runs may not invent payloads: every delivered
    (payload) was posted, and the delivery count per payload is
    bounded by posts × possible receivers."""
    if scenario.get("faults") is not None:
        return []   # corruption/retransmission make this legitimate
    spec = SystemSpec.from_dict(scenario["system"])
    workload = workload_from_dict(scenario["workload"])
    posted: Dict[str, int] = {}
    for event in workload.compile(spec):
        if isinstance(event, PostEvent):
            key = bytes(event.payload).hex()
            posted[key] = posted.get(key, 0) + 1
    problems: List[str] = []
    n_nodes = len(spec.nodes)
    delivered: Dict[str, int] = {}
    for _receiver, payload in report.deliveries:
        delivered[payload.hex()] = delivered.get(payload.hex(), 0) + 1
    for payload_hex, count in delivered.items():
        if payload_hex not in posted:
            problems.append(
                f"delivered payload {payload_hex} was never posted"
            )
        elif count > posted[payload_hex] * max(1, n_nodes - 1):
            problems.append(
                f"payload {payload_hex} delivered {count}x from only "
                f"{posted[payload_hex]} post(s)"
            )
    return problems


def check_bitbang_feasibility(scenario: Dict) -> List[str]:
    """Scenarios at or below the software-bitbang ceiling must be
    sustainable per the MSP430 cost model — the static cross-check
    against :mod:`repro.bitbang.mbus_bitbang`."""
    from repro.bitbang.mbus_bitbang import (
        SUPPORTED_MBUS_CLOCK_HZ,
        analyze_mbus_bitbang,
    )

    clock_hz = scenario["system"].get("clock_hz")
    if clock_hz is None or clock_hz > SUPPORTED_MBUS_CLOCK_HZ:
        return []
    analysis = analyze_mbus_bitbang()
    if clock_hz > analysis.max_bus_clock_hz:
        return [
            f"scenario clock {clock_hz} Hz is within the quoted "
            f"bitbang ceiling ({SUPPORTED_MBUS_CLOCK_HZ} Hz) but above "
            f"the cost model's {analysis.max_bus_clock_hz:.0f} Hz"
        ]
    return []
