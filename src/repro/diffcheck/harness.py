"""The differential fuzzing harness: generate, run, diff, minimize.

:func:`fuzz` drives the whole loop: seeded scenarios from
:mod:`~repro.diffcheck.generators`, executed across a backend matrix
(edge vs fast by default; ``backends=("edge", "fast", "batch")`` for
the three-way tier check; faulty scenarios replay edge-only, since the
other tiers have no wires to disturb), diffed under the projections in
:mod:`~repro.diffcheck.checks`, and any divergent scenario greedily
minimized (:mod:`~repro.diffcheck.minimize`) and written to
``fuzz_repros/`` as a standalone JSON repro.

The first backend in the matrix is the *reference*; every other
backend is diffed pairwise against it.  Error symmetry: reference and
challenger raising the *same exception type* for a scenario is
consistent semantics (e.g. an over-long message rejected everywhere),
not a divergence — only asymmetric outcomes (one raises, one answers;
or different error types) count.

``python -m repro fuzz`` is a thin CLI over :func:`fuzz`; CI runs it
with a fixed seed and a bounded scenario count and fails on any
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.diffcheck.checks import (
    check_bitbang_feasibility,
    check_conservation,
    check_fault_free_noop,
    check_replay_determinism,
    diff_reports,
    _run_scenario,
)
from repro.diffcheck.generators import generate_scenarios, scenario_key
from repro.diffcheck.minimize import minimize_scenario, write_repro


#: The default differential matrix.  The first entry is the reference
#: backend every challenger is diffed against.
DEFAULT_BACKENDS: Tuple[str, ...] = ("edge", "fast")


def _run_matrix(
    scenario: Dict, backends: Sequence[str]
) -> Tuple[Dict[str, object], List[str]]:
    """Run a clean scenario on every backend in the matrix.

    Returns ``(reports, divergences)`` — ``reports`` maps backend
    name to its :class:`RunReport` (absent when that backend raised).
    Each challenger is compared to the reference (``backends[0]``):
    symmetric same-type errors are consistent; asymmetric outcomes
    are divergences.
    """
    outcomes = {}
    for backend in backends:
        try:
            outcomes[backend] = ("ok", _run_scenario(scenario, backend))
        except Exception as exc:   # any failure class is data here
            outcomes[backend] = ("err", type(exc).__name__)
    reports = {
        backend: value
        for backend, (kind, value) in outcomes.items()
        if kind == "ok"
    }
    reference = backends[0]
    ref_kind, ref_value = outcomes[reference]
    divergences: List[str] = []
    for backend in backends[1:]:
        kind, value = outcomes[backend]
        if ref_kind == "ok" and kind == "ok":
            continue
        if ref_kind == "err" and kind == "err":
            if ref_value != value:   # else: consistent refusal
                divergences.append(
                    f"backends raise differently: {reference}="
                    f"{ref_value}, {backend}={value}"
                )
            continue
        raised, answered = (
            (reference, backend) if ref_kind == "err"
            else (backend, reference)
        )
        detail = ref_value if ref_kind == "err" else value
        divergences.append(
            f"{raised} backend raises {detail} but {answered} answers"
        )
    return reports, divergences


def examine_scenario(
    scenario: Dict,
    invariants: bool = True,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> List[str]:
    """All divergences for one scenario (empty = healthy).

    Clean scenarios get the full battery: cross-backend diff of every
    challenger against the reference (``backends[0]``), conservation,
    and (with ``invariants=True``) replay determinism and the
    empty-fault-spec no-op.  Faulty scenarios force the edge engine,
    so they get replay determinism only.
    """
    backends = tuple(backends)
    if not backends:
        raise ValueError("backends must name at least one backend")
    divergences = list(check_bitbang_feasibility(scenario))
    if scenario.get("faults") is None:
        reference = backends[0]
        reports, errors = _run_matrix(scenario, backends)
        divergences += errors
        ref_report = reports.get(reference)
        for backend in backends[1:]:
            challenger = reports.get(backend)
            if ref_report is None or challenger is None:
                continue
            pair = diff_reports(ref_report, challenger)
            if len(backends) > 2:
                pair = [
                    f"[{reference} vs {backend}] {d}" for d in pair
                ]
            divergences += pair
        if ref_report is not None:
            divergences += check_conservation(scenario, ref_report)
        if invariants:
            for backend in backends[1:]:
                divergences += check_replay_determinism(
                    scenario, backend
                )
            divergences += check_fault_free_noop(scenario, backends[0])
    else:
        divergences += check_replay_determinism(scenario, "edge")
    return divergences


@dataclass(frozen=True)
class ScenarioOutcome:
    """One fuzzed scenario's verdict."""

    scenario: Dict
    divergences: Tuple[str, ...] = ()
    repro_path: Optional[str] = None

    @property
    def seed(self) -> int:
        return self.scenario.get("seed", -1)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def key(self) -> str:
        return scenario_key(self.scenario)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    seed: int = 0
    backends: Tuple[str, ...] = DEFAULT_BACKENDS

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def divergent(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.divergent

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    # lint: disable=schema -- one-way analytic report; records are re-derived from runs, never loaded back
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "backends": list(self.backends),
            "n_scenarios": self.n_scenarios,
            "n_divergent": len(self.divergent),
            "divergent": [
                {
                    "seed": o.seed,
                    "key": o.key,
                    "divergences": list(o.divergences),
                    "repro": o.repro_path,
                }
                for o in self.divergent
            ],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.n_scenarios} scenario(s) from seed {self.seed} "
            f"across {'/'.join(self.backends)} — "
            f"{len(self.divergent)} divergent"
        ]
        for outcome in self.divergent:
            lines.append(
                f"  seed {outcome.seed} ({outcome.key}):"
            )
            for divergence in outcome.divergences:
                lines.append(f"    - {divergence}")
            if outcome.repro_path:
                lines.append(f"    repro: {outcome.repro_path}")
        return "\n".join(lines)


def fuzz(
    count: int = 100,
    seed: int = 0,
    faults_fraction: float = 0.25,
    repro_dir: Optional[str] = "fuzz_repros",
    minimize: bool = True,
    invariants: bool = True,
    scenarios: Optional[Sequence[Dict]] = None,
    progress: Optional[Callable[[str], None]] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> FuzzReport:
    """Run the differential fuzzer (see module docs).

    ``scenarios`` overrides generation (replaying saved repros);
    ``repro_dir=None`` disables writing repro files; ``minimize=False``
    records the raw divergent scenario instead of shrinking it first;
    ``backends`` sets the matrix (first entry is the reference).
    """
    backends = tuple(backends)
    if scenarios is None:
        scenarios = generate_scenarios(
            count, seed=seed, faults_fraction=faults_fraction
        )
    report = FuzzReport(seed=seed, backends=backends)
    for scenario in scenarios:
        divergences = examine_scenario(
            scenario, invariants=invariants, backends=backends
        )
        repro_path = None
        if divergences:
            repro = scenario
            if minimize:
                # A reduction "still fails" when it produces *any*
                # divergence — a shrunk scenario that trips a
                # different projection is still a bug witness.
                repro = minimize_scenario(
                    scenario,
                    lambda candidate: bool(
                        examine_scenario(
                            candidate,
                            invariants=invariants,
                            backends=backends,
                        )
                    ),
                )
                divergences = (
                    examine_scenario(
                        repro, invariants=invariants, backends=backends
                    )
                    or divergences
                )
            if repro_dir is not None:
                repro_path = str(
                    write_repro(
                        repro, divergences, repro_dir, minimized=minimize
                    )
                )
            if progress is not None:
                progress(
                    f"seed {scenario.get('seed')}: "
                    + "; ".join(divergences)
                )
        report.outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                divergences=tuple(divergences),
                repro_path=repro_path,
            )
        )
    return report


def replay_repro(document: Dict, invariants: bool = True) -> List[str]:
    """Re-examine a saved repro document; returns current divergences
    (empty once the underlying bug is fixed)."""
    return examine_scenario(
        document["scenario"], invariants=invariants
    )
