"""The differential fuzzing harness: generate, run, diff, minimize.

:func:`fuzz` drives the whole loop: seeded scenarios from
:mod:`~repro.diffcheck.generators`, executed cross-backend (edge vs
fast for clean scenarios; edge-only replay for faulty ones, since the
fast path has no wires to disturb), diffed under the projections in
:mod:`~repro.diffcheck.checks`, and any divergent scenario greedily
minimized (:mod:`~repro.diffcheck.minimize`) and written to
``fuzz_repros/`` as a standalone JSON repro.

Error symmetry: both backends raising the *same exception type* for a
scenario is consistent semantics (e.g. an over-long message rejected
everywhere), not a divergence — only asymmetric outcomes (one raises,
one answers; or different error types) count.

``python -m repro fuzz`` is a thin CLI over :func:`fuzz`; CI runs it
with a fixed seed and a bounded scenario count and fails on any
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.diffcheck.checks import (
    check_bitbang_feasibility,
    check_conservation,
    check_fault_free_noop,
    check_replay_determinism,
    diff_reports,
    _run_scenario,
)
from repro.diffcheck.generators import generate_scenarios, scenario_key
from repro.diffcheck.minimize import minimize_scenario, write_repro


def _run_pair(scenario: Dict) -> Tuple[object, object, List[str]]:
    """Run a clean scenario on both backends.

    Returns ``(edge_report, fast_report, divergences)`` — reports are
    None when that backend raised.  Symmetric same-type errors are
    consistent; asymmetric outcomes are divergences.
    """
    outcomes = {}
    for backend in ("edge", "fast"):
        try:
            outcomes[backend] = ("ok", _run_scenario(scenario, backend))
        except Exception as exc:   # any failure class is data here
            outcomes[backend] = ("err", type(exc).__name__)
    (edge_kind, edge_value) = outcomes["edge"]
    (fast_kind, fast_value) = outcomes["fast"]
    if edge_kind == "ok" and fast_kind == "ok":
        return edge_value, fast_value, []
    if edge_kind == "err" and fast_kind == "err":
        if edge_value == fast_value:
            return None, None, []   # consistent refusal
        return None, None, [
            f"backends raise differently: edge={edge_value}, "
            f"fast={fast_value}"
        ]
    raised, answered = (
        ("edge", "fast") if edge_kind == "err" else ("fast", "edge")
    )
    detail = edge_value if edge_kind == "err" else fast_value
    return None, None, [
        f"{raised} backend raises {detail} but {answered} answers"
    ]


def examine_scenario(scenario: Dict, invariants: bool = True) -> List[str]:
    """All divergences for one scenario (empty = healthy).

    Clean scenarios get the full battery: cross-backend diff,
    conservation, and (with ``invariants=True``) replay determinism
    and the empty-fault-spec no-op.  Faulty scenarios force the edge
    engine, so they get replay determinism only.
    """
    divergences = list(check_bitbang_feasibility(scenario))
    if scenario.get("faults") is None:
        edge, fast, errors = _run_pair(scenario)
        divergences += errors
        if edge is not None and fast is not None:
            divergences += diff_reports(edge, fast)
            divergences += check_conservation(scenario, edge)
        if invariants:
            divergences += check_replay_determinism(scenario, "fast")
            divergences += check_fault_free_noop(scenario, "edge")
    else:
        divergences += check_replay_determinism(scenario, "edge")
    return divergences


@dataclass(frozen=True)
class ScenarioOutcome:
    """One fuzzed scenario's verdict."""

    scenario: Dict
    divergences: Tuple[str, ...] = ()
    repro_path: Optional[str] = None

    @property
    def seed(self) -> int:
        return self.scenario.get("seed", -1)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def key(self) -> str:
        return scenario_key(self.scenario)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    seed: int = 0

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def divergent(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.divergent

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "n_scenarios": self.n_scenarios,
            "n_divergent": len(self.divergent),
            "divergent": [
                {
                    "seed": o.seed,
                    "key": o.key,
                    "divergences": list(o.divergences),
                    "repro": o.repro_path,
                }
                for o in self.divergent
            ],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.n_scenarios} scenario(s) from seed {self.seed} — "
            f"{len(self.divergent)} divergent"
        ]
        for outcome in self.divergent:
            lines.append(
                f"  seed {outcome.seed} ({outcome.key}):"
            )
            for divergence in outcome.divergences:
                lines.append(f"    - {divergence}")
            if outcome.repro_path:
                lines.append(f"    repro: {outcome.repro_path}")
        return "\n".join(lines)


def fuzz(
    count: int = 100,
    seed: int = 0,
    faults_fraction: float = 0.25,
    repro_dir: Optional[str] = "fuzz_repros",
    minimize: bool = True,
    invariants: bool = True,
    scenarios: Optional[Sequence[Dict]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the differential fuzzer (see module docs).

    ``scenarios`` overrides generation (replaying saved repros);
    ``repro_dir=None`` disables writing repro files; ``minimize=False``
    records the raw divergent scenario instead of shrinking it first.
    """
    if scenarios is None:
        scenarios = generate_scenarios(
            count, seed=seed, faults_fraction=faults_fraction
        )
    report = FuzzReport(seed=seed)
    for scenario in scenarios:
        divergences = examine_scenario(scenario, invariants=invariants)
        repro_path = None
        if divergences:
            repro = scenario
            if minimize:
                # A reduction "still fails" when it produces *any*
                # divergence — a shrunk scenario that trips a
                # different projection is still a bug witness.
                repro = minimize_scenario(
                    scenario,
                    lambda candidate: bool(
                        examine_scenario(candidate, invariants=invariants)
                    ),
                )
                divergences = (
                    examine_scenario(repro, invariants=invariants)
                    or divergences
                )
            if repro_dir is not None:
                repro_path = str(
                    write_repro(
                        repro, divergences, repro_dir, minimized=minimize
                    )
                )
            if progress is not None:
                progress(
                    f"seed {scenario.get('seed')}: "
                    + "; ".join(divergences)
                )
        report.outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                divergences=tuple(divergences),
                repro_path=repro_path,
            )
        )
    return report


def replay_repro(document: Dict, invariants: bool = True) -> List[str]:
    """Re-examine a saved repro document; returns current divergences
    (empty once the underlying bug is fixed)."""
    return examine_scenario(
        document["scenario"], invariants=invariants
    )
