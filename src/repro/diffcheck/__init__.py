"""Cross-backend differential fuzzing for the MBus simulators.

Two engines answer the same questions — the edge-accurate simulator
and the transaction-level fast path — and the repository's central
correctness claim is that they *agree*.  This package turns that
claim into an adversarial search:

* :mod:`~repro.diffcheck.generators` — seeded, deterministic scenario
  documents over topology × workload × fault space;
* :mod:`~repro.diffcheck.checks` — the equivalence projections
  (transaction signatures, delivery sets, wake counts) and invariants
  (replay determinism, empty-fault-spec no-op, payload conservation,
  bitbang feasibility);
* :mod:`~repro.diffcheck.harness` — :func:`fuzz`: generate, execute
  across the backend matrix (``backends=("edge", "fast", "batch")``
  adds the compiled batch tier), diff against the reference, report;
* :mod:`~repro.diffcheck.minimize` — greedy delta-debugging of any
  divergent scenario down to a small standalone JSON repro in
  ``fuzz_repros/``.

Quickstart::

    from repro.diffcheck import fuzz
    report = fuzz(count=200, seed=1)
    print(report.summary())        # 0 divergent, or repro paths
    assert report.ok

or ``python -m repro fuzz --count 200 --seed 1`` (exit 1 on any
divergence — the CI smoke contract).
"""

from __future__ import annotations

from repro.diffcheck.checks import (
    check_bitbang_feasibility,
    check_conservation,
    check_fault_free_noop,
    check_replay_determinism,
    diff_reports,
    wake_counts,
)
from repro.diffcheck.generators import (
    CLOCK_CHOICES,
    WORKLOAD_SHAPES,
    generate_faults,
    generate_scenario,
    generate_scenarios,
    generate_system,
    generate_workload,
    scenario_key,
)
from repro.diffcheck.harness import (
    DEFAULT_BACKENDS,
    FuzzReport,
    ScenarioOutcome,
    examine_scenario,
    fuzz,
    replay_repro,
)
from repro.diffcheck.minimize import (
    load_repro,
    minimize_scenario,
    scenario_fingerprint,
    write_repro,
)

__all__ = [
    "CLOCK_CHOICES",
    "DEFAULT_BACKENDS",
    "FuzzReport",
    "ScenarioOutcome",
    "WORKLOAD_SHAPES",
    "check_bitbang_feasibility",
    "check_conservation",
    "check_fault_free_noop",
    "check_replay_determinism",
    "diff_reports",
    "examine_scenario",
    "fuzz",
    "generate_faults",
    "generate_scenario",
    "generate_scenarios",
    "generate_system",
    "generate_workload",
    "load_repro",
    "minimize_scenario",
    "replay_repro",
    "scenario_fingerprint",
    "scenario_key",
    "wake_counts",
    "write_repro",
]
