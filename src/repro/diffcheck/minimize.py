"""Greedy scenario minimization: shrink a failing fuzz case.

Given a scenario document and a predicate ``is_failing(scenario) ->
bool`` (usually "does the original divergence still reproduce?"),
:func:`minimize_scenario` applies structural reductions — drop a
node, halve a count, shorten a payload, drop the fault set — keeping
any reduction under which the scenario still fails, until no
reduction applies (a fixpoint).  The result is the small, stable JSON
repro written to ``fuzz_repros/``.

Reductions may produce *invalid* scenarios (e.g. removing the node a
workload posts to); the predicate is expected to treat those as
not-failing (both backends raising the same configuration error is
consistent behaviour, not a divergence), so invalid candidates are
naturally rejected.  The predicate is injectable precisely so tests
can minimize against synthetic properties without running simulators.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Callable, Dict, Iterator, List

from repro.campaign.trial import canonical_json
from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.diffcheck.generators import scenario_key

#: Numeric workload fields worth halving toward their floor of 1.
_COUNT_FIELDS = ("count", "edges")


def _halved(value: int) -> List[int]:
    """Candidate reductions of a count: half, then 1."""
    candidates = []
    if value > 1:
        if value // 2 > 1:
            candidates.append(value // 2)
        candidates.append(1)
    return candidates


def _workload_reductions(workload: Dict) -> Iterator[Dict]:
    """Shrink one workload document (recursing into combinations)."""
    parts = workload.get("parts")
    if isinstance(parts, list) and len(parts) > 1:
        for i in range(len(parts)):
            shrunk = copy.deepcopy(workload)
            del shrunk["parts"][i]
            if len(shrunk["parts"]) == 1:
                yield shrunk["parts"][0]
            else:
                yield shrunk
        for i, part in enumerate(parts):
            for reduced in _workload_reductions(part):
                shrunk = copy.deepcopy(workload)
                shrunk["parts"][i] = reduced
                yield shrunk
        return
    for field in _COUNT_FIELDS:
        value = workload.get(field)
        if isinstance(value, int):
            for candidate in _halved(value):
                shrunk = copy.deepcopy(workload)
                shrunk[field] = candidate
                yield shrunk
    payload = workload.get("payload")
    if isinstance(payload, str) and len(payload) > 2:
        shrunk = copy.deepcopy(workload)
        shrunk["payload"] = payload[: max(2, len(payload) // 2)]
        yield shrunk
    max_bytes = workload.get("max_bytes")
    if isinstance(max_bytes, int) and max_bytes > 1:
        shrunk = copy.deepcopy(workload)
        shrunk["max_bytes"] = max(1, max_bytes // 2)
        shrunk["min_bytes"] = 1
        yield shrunk


def _reductions(scenario: Dict) -> Iterator[Dict]:
    """All one-step reductions of a scenario document."""
    # 1. Drop the fault set entirely, or individual faults.
    faults = scenario.get("faults")
    if faults is not None:
        shrunk = copy.deepcopy(scenario)
        shrunk["faults"] = None
        yield shrunk
        fault_list = faults.get("faults", [])
        if isinstance(fault_list, list) and len(fault_list) > 1:
            for i in range(len(fault_list)):
                shrunk = copy.deepcopy(scenario)
                del shrunk["faults"]["faults"][i]
                yield shrunk
    # 2. Drop a non-mediator node.
    nodes = scenario["system"].get("nodes", [])
    if len(nodes) > 2:
        for i, node in enumerate(nodes):
            if node.get("is_mediator"):
                continue
            shrunk = copy.deepcopy(scenario)
            del shrunk["system"]["nodes"][i]
            yield shrunk
    # 3. Shrink the workload.
    for reduced in _workload_reductions(scenario["workload"]):
        shrunk = copy.deepcopy(scenario)
        shrunk["workload"] = reduced
        yield shrunk


def minimize_scenario(
    scenario: Dict,
    is_failing: Callable[[Dict], bool],
    max_steps: int = 200,
) -> Dict:
    """Greedily reduce ``scenario`` while ``is_failing`` holds.

    ``max_steps`` bounds accepted reductions (each accepted step
    strictly shrinks the document, so this terminates regardless).
    The input document is never mutated.
    """
    current = copy.deepcopy(scenario)
    for _ in range(max_steps):
        for candidate in _reductions(current):
            try:
                failing = is_failing(candidate)
            except Exception:
                failing = False   # a predicate crash is a rejection
            if failing:
                current = candidate
                break
        else:
            break   # fixpoint: no reduction keeps it failing
    return current


def write_repro(
    scenario: Dict,
    divergences: List[str],
    directory,
    minimized: bool = True,
) -> Path:
    """Persist one failing scenario as a standalone JSON repro.

    The filename is content-addressed (``repro_<key>.json``), so
    re-finding the same minimized scenario is idempotent.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro_{scenario_key(scenario)}.json"
    document = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "divergences": list(divergences),
        "minimized": minimized,
        "scenario": scenario,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path) -> Dict:
    """Read a repro file back; returns the full document."""
    with open(path) as handle:
        document = json.load(handle)
    if "scenario" not in document:
        raise ValueError(f"{path} is not a fuzz repro document")
    return document


def scenario_fingerprint(scenario: Dict) -> str:
    """Canonical bytes of a scenario — for asserting two minimization
    runs converged to the same repro."""
    return canonical_json(
        {k: v for k, v in scenario.items() if k != "seed"}
    )
