"""Client for the campaign server (stdlib ``http.client`` only).

:class:`ServeClient` wraps the five routes in typed calls: submit a
campaign document, poll or watch a job's :class:`JobStatus`, and
iterate its results as they stream — each line of the
``/results`` JSONL arrives as soon as its trial resolves, so a
watcher sees records while the campaign is still running.

Connections are one-shot (the server answers ``Connection: close``),
which keeps the client trivially correct across server restarts: a
watcher that loses the server mid-campaign just keeps polling until
the restarted server — which resumed the journaled job — answers
again (:meth:`ServeClient.watch` with ``tolerate_disconnects=True``,
the ``campaign watch`` default).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.serve.protocol import (
    API_PREFIX,
    DEFAULT_CLIENT,
    JobStatus,
    SubmitOptions,
    SubmitRequest,
)


class ServeError(Exception):
    """A non-2xx server answer, carrying the HTTP status and (for
    429) the server's suggested retry delay."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class ServeClient:
    """Typed access to one campaign server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout_s: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def _connect(
        self, timeout_s: Optional[float]
    ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Tuple[int, Dict]:
        connection = self._connect(self.timeout_s)
        try:
            payload = None if body is None else json.dumps(body)
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                doc = {"error": raw.decode("utf-8", errors="replace")}
            if response.status >= 400:
                raise ServeError(
                    str(doc.get("error", f"HTTP {response.status}")),
                    status=response.status,
                    retry_after_s=(
                        None if retry_after is None else float(retry_after)
                    ),
                )
            return response.status, doc
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServeError(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Routes.
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", f"{API_PREFIX}/healthz")[1]

    def metrics(self) -> Dict:
        return self._request("GET", f"{API_PREFIX}/metrics")[1]

    def submit(
        self,
        campaign: Dict,
        options: Optional[SubmitOptions] = None,
        client: str = DEFAULT_CLIENT,
    ) -> Tuple[JobStatus, bool]:
        """Submit one campaign document; returns ``(status, created)``
        — ``created=False`` means the server coalesced this onto an
        identical job already queued or running."""
        request = SubmitRequest(
            campaign=campaign,
            options=options or SubmitOptions(),
            client=client,
        )
        status, doc = self._request(
            "POST", f"{API_PREFIX}/campaigns", body=request.to_dict()
        )
        return JobStatus.from_dict(doc, lenient=True), status == 202

    def status(self, job_id: str) -> JobStatus:
        _, doc = self._request(
            "GET", f"{API_PREFIX}/campaigns/{job_id}"
        )
        return JobStatus.from_dict(doc, lenient=True)

    def jobs(self) -> List[JobStatus]:
        _, doc = self._request("GET", f"{API_PREFIX}/campaigns")
        return [
            JobStatus.from_dict(entry, lenient=True)
            for entry in doc.get("jobs", [])
        ]

    def results(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Iterator[Dict]:
        """Stream the job's records as they resolve (a live job keeps
        the connection open until it reaches a terminal state).  The
        default ``timeout_s=None`` waits indefinitely between lines —
        trials can legitimately be minutes apart."""
        connection = self._connect(timeout_s)
        try:
            connection.request(
                "GET", f"{API_PREFIX}/campaigns/{job_id}/results"
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    doc = {"error": f"HTTP {response.status}"}
                raise ServeError(
                    str(doc.get("error", f"HTTP {response.status}")),
                    status=response.status,
                )
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                try:
                    yield json.loads(text)
                except json.JSONDecodeError as exc:
                    raise ServeError(
                        f"unparsable result line: {exc}"
                    ) from exc
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Watch.
    # ------------------------------------------------------------------
    def watch(
        self,
        job_id: str,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
        on_update: Optional[Callable[[JobStatus], Any]] = None,
        tolerate_disconnects: bool = True,
    ) -> JobStatus:
        """Poll the job until it reaches a terminal state; returns the
        final :class:`JobStatus`.  ``on_update`` fires on every
        *changed* status.  With ``tolerate_disconnects`` (the
        default), a connection refusal — the server restarting
        mid-campaign — is retried rather than raised, so a watcher
        rides through a kill+restart; a 404 (the restarted server
        never knew the job) still raises."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        last: Optional[JobStatus] = None
        while True:
            try:
                current = self.status(job_id)
            except ServeError as exc:
                if exc.status != 0 or not tolerate_disconnects:
                    raise
                current = None
            if current is not None:
                if on_update is not None and current != last:
                    on_update(current)
                last = current
                if current.terminal:
                    return current
            if deadline is not None and time.monotonic() >= deadline:
                raise ConfigurationError(
                    f"watch of job {job_id!r} timed out after "
                    f"{timeout_s:.1f}s"
                    + ("" if last is None else f" ({last.summary()})")
                )
            time.sleep(poll_s)
