"""CLI entrypoints for the campaign server and its client commands.

``python -m repro serve`` runs the server; ``python -m repro
campaign submit`` / ``campaign watch`` are the client side.  Exit
codes follow the repo convention: 0 success, 1 failures reported,
2 usage error, 130 interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, TextIO, Tuple

from repro.campaign.trial import canonical_json
from repro.core.errors import ConfigurationError
from repro.obs import state as obs_state
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import JobStatus, SubmitOptions
from repro.serve.server import run_server


def parse_server(text: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``:port`` / ``port``) -> ``(host, port)``."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"--server expects HOST:PORT, got {text!r}"
        ) from None
    if not 0 < port < 65536:
        raise ConfigurationError(f"port {port} is out of range")
    return host, port


def cmd_serve(args: argparse.Namespace) -> int:
    if not args.no_obs:
        # Metrics + phase profiling for /v1/metrics; no span tracing
        # (concurrent requests would interleave one global span stack).
        obs_state.enable(trace=False, metrics=True, profile=True)
    try:
        return run_server(
            root=args.root,
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            rate_per_s=args.rate,
            burst=args.burst,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:   # bind failure, bad interface, ...
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def _client(args: argparse.Namespace) -> ServeClient:
    host, port = parse_server(args.server)
    return ServeClient(host=host, port=port)


def _print_status(status: JobStatus, as_json: bool) -> None:
    if as_json:
        print(json.dumps(status.to_dict(), indent=2))
    else:
        print(status.summary())


def _stream_results(
    client: ServeClient, job_id: str, handle: TextIO
) -> int:
    lines = 0
    for record in client.results(job_id):
        handle.write(canonical_json(record) + "\n")
        lines += 1
    return lines


def cmd_campaign_submit(args: argparse.Namespace) -> int:
    try:
        with open(args.campaign) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.campaign}: {exc}",
              file=sys.stderr)
        return 2
    try:
        options = SubmitOptions(
            executor=args.executor,
            workers=args.workers,
            wall_timeout_s=args.wall_timeout,
            retry_failed=args.retry_failed,
            retry_quarantined=args.retry_quarantined,
        )
        client = _client(args)
        status, created = client.submit(
            document, options=options, client=args.client
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if exc.status in (0, 400) else 1
    if not args.json:
        verb = "submitted" if created else "coalesced onto"
        print(f"{verb} job {status.job_id} "
              f"({status.n_trials} trial(s))")
    if not args.watch:
        _print_status(status, args.json)
        return 0
    return _watch(client, status.job_id, args)


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    try:
        client = _client(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _watch(client, args.job_id, args)


def _watch(
    client: ServeClient, job_id: str, args: argparse.Namespace
) -> int:
    """Shared watch loop: follow the job to a terminal state, then
    (optionally) pull its results."""
    def on_update(status: JobStatus) -> None:
        if not args.json:
            print(status.summary(), file=sys.stderr, flush=True)

    try:
        final = client.watch(
            job_id,
            timeout_s=args.timeout,
            on_update=on_update,
        )
        output: Optional[str] = getattr(args, "output", None)
        if output:
            with open(output, "w") as handle:
                lines = _stream_results(client, job_id, handle)
            if not args.json:
                print(f"wrote {lines} result records to {output}")
    except KeyboardInterrupt:
        print(f"\ninterrupted; job {job_id} keeps running server-side "
              f"(watch again with: campaign watch {job_id})",
              file=sys.stderr)
        return 130
    except ConfigurationError as exc:   # watch timeout
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if exc.status in (0, 404) else 1
    _print_status(final, args.json)
    return 0 if final.ok else 1
