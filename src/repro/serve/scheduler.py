"""The campaign scheduler: multi-tenant queueing behind the server.

One :class:`Scheduler` owns everything between "a request was
accepted" and "its results are in the store":

* **multi-tenant queueing** — every client token gets its own FIFO;
  a single worker task drains the queues *round-robin across
  clients*, so one tenant submitting fifty campaigns cannot starve
  another submitting one.  Total backlog is bounded
  (``queue_depth``); past it, submissions are rejected with
  :class:`QueueFull` (HTTP 503) until the worker catches up.
* **rate limiting** — a token bucket per client
  (:class:`TokenBucket`): ``burst`` submissions on an idle bucket,
  refilled at ``rate_per_s``.  An empty bucket rejects with
  :class:`RateLimited` (HTTP 429 + Retry-After).
* **content-hash dedupe** — trials execute through the shared
  :class:`~repro.campaign.store.ResultStore`, so a resubmitted
  campaign is served trial-by-trial from cache (near-free), and an
  *identical in-flight* submission coalesces onto the queued/running
  job instead of queueing twice.  Cache hits are accounted per
  client (``serve.dedupe_hits{client=}``).
* **restart survival** — submissions journal to a second result
  store (``jobs/``) before they are acknowledged; terminal states
  journal again.  A restarted scheduler replays the journal,
  re-queues every non-terminal job, and the campaign layer's resume
  semantics take it from the last completed trial — exactly like
  ``campaign run`` after SIGTERM.

Execution itself happens on one dedicated worker thread
(``loop.run_in_executor``), which keeps the asyncio loop free to
serve status and streaming requests while a campaign runs; the
process executor then parallelises trials across worker processes as
usual.  Trial completions cross back into the loop via
``call_soon_threadsafe``, append canonical record lines to the job,
and wake every streaming subscriber.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from threading import Event as ThreadEvent
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.campaign.campaign import Campaign
from repro.campaign.failures import record_outcome
from repro.campaign.resultset import ResultSet, TrialResult
from repro.campaign.store import ResultStore
from repro.campaign.trial import canonical_json
from repro.core.errors import ConfigurationError
from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.obs.state import OBS
from repro.serve.protocol import (
    JobStatus,
    SubmitRequest,
    TERMINAL_STATES,
)

#: Subdirectories of the server root holding the two stores.
RESULTS_DIR = "results"
JOBS_DIR = "jobs"


class RateLimited(Exception):
    """Client token bucket is empty (HTTP 429)."""

    def __init__(self, client: str, retry_after_s: float) -> None:
        super().__init__(
            f"client {client!r} is over its submission rate; retry in "
            f"{retry_after_s:.2f}s"
        )
        self.retry_after_s = retry_after_s


class QueueFull(Exception):
    """The bounded backlog is at capacity (HTTP 503)."""


class UnknownJob(Exception):
    """No job under this id (HTTP 404)."""


class TokenBucket:
    """A token bucket over a relative clock: ``capacity`` burst,
    refilled at ``rate_per_s``.  The clock is injectable so tests can
    drive it deterministically."""

    __slots__ = ("capacity", "rate_per_s", "_tokens", "_last", "_clock")

    def __init__(
        self,
        capacity: float,
        rate_per_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                "a token bucket needs capacity > 0"
            )
        self.capacity = float(capacity)
        self.rate_per_s = float(rate_per_s)
        self._clock = time.monotonic if clock is None else clock
        self._tokens = self.capacity
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.rate_per_s
        )

    def try_acquire(self) -> bool:
        """Take one token; False when the bucket is empty."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def retry_after_s(self) -> float:
        """Seconds until one token will be available."""
        self._refill()
        missing = max(0.0, 1.0 - self._tokens)
        if missing == 0.0:
            return 0.0
        if self.rate_per_s <= 0:
            return float("inf")
        return missing / self.rate_per_s


class Job:
    """One submission's live state (scheduler-internal; the wire view
    is :meth:`Scheduler.status`)."""

    __slots__ = (
        "job_id", "request", "state", "name", "n_trials", "done",
        "cached", "executed", "failed", "outcomes", "resumptions",
        "error", "lines", "updated",
    )

    def __init__(self, job_id: str, request: SubmitRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.state = "queued"
        self.name = str(request.campaign.get("name", ""))
        self.n_trials = 0
        self.done = 0
        self.cached = 0
        self.executed = 0
        self.failed = 0
        self.outcomes: Dict[str, int] = {}
        self.resumptions = 0
        self.error = ""
        #: Canonical record lines, in resolution order — the results
        #: stream.  Reset at (re)run start so a resumed job streams a
        #: complete, consistent sequence.
        self.lines: List[str] = []
        #: Set on every mutation; streaming subscribers clear-and-wait.
        self.updated = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def touch(self) -> None:
        self.updated.set()


class Scheduler:
    """Multi-tenant campaign queue + the worker that drains it."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        queue_depth: int = 16,
        rate_per_s: float = 10.0,
        burst: float = 20.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        self._root = None if root is None else Path(root)
        self.queue_depth = queue_depth
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        if self._root is None:
            self.results_store = ResultStore.memory()
            self._journal = ResultStore.memory()
        else:
            self.results_store = ResultStore(self._root / RESULTS_DIR)
            self._journal = ResultStore(self._root / JOBS_DIR)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []           # submission order
        self._queues: Dict[str, Deque[Job]] = {}
        self._rr: Deque[str] = deque()        # round-robin client ring
        self._buckets: Dict[str, TokenBucket] = {}
        self._ready = asyncio.Event()
        self._stop = ThreadEvent()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._worker: Optional[asyncio.Task] = None
        self._thread: Optional[ThreadPoolExecutor] = None
        self._recover()

    # ------------------------------------------------------------------
    # Journal / recovery.
    # ------------------------------------------------------------------
    def _journal_put(self, job: Job) -> None:
        self._journal.put({
            "schema_version": REPORT_SCHEMA_VERSION,
            "key": job.job_id,
            "request": job.request.to_dict(),
            "state": "queued" if not job.terminal else job.state,
            "n_trials": job.n_trials,
            "done": job.done,
            "cached": job.cached,
            "executed": job.executed,
            "failed": job.failed,
            "outcomes": dict(job.outcomes),
            "resumptions": job.resumptions,
            "error": job.error,
        })

    def _recover(self) -> None:
        """Rebuild jobs from the journal: terminal jobs become
        queryable again; non-terminal ones re-queue (their completed
        trials are already in the results store, so the re-run is a
        resume, not a redo)."""
        for record in self._journal.records():
            try:
                request = SubmitRequest.from_dict(
                    record.get("request") or {}, lenient=True
                )
            except ConfigurationError:
                continue   # an unloadable journal line loses one job
            job = Job(record["key"], request)
            job.n_trials = int(record.get("n_trials", 0))
            job.resumptions = int(record.get("resumptions", 0))
            state = record.get("state", "queued")
            if state in TERMINAL_STATES:
                job.state = state
                job.done = int(record.get("done", 0))
                job.cached = int(record.get("cached", 0))
                job.executed = int(record.get("executed", 0))
                job.failed = int(record.get("failed", 0))
                job.outcomes = dict(record.get("outcomes") or {})
                job.error = str(record.get("error", ""))
            else:
                job.state = "queued"
                job.resumptions += 1
                self._enqueue(job)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the worker task."""
        self._loop = asyncio.get_running_loop()
        # Events bind to the loop that first awaits them; a scheduler
        # can be started under a fresh loop (stop/start cycles), so
        # the wake event must be remade per start.
        self._ready = asyncio.Event()
        self._stop.clear()
        self._thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-worker"
        )
        if self._backlog():
            self._ready.set()
        self._worker = asyncio.create_task(
            self._work(), name="serve-scheduler"
        )

    async def stop(self) -> None:
        """Graceful shutdown: signal the in-flight campaign to
        checkpoint at its next trial boundary, wait for the worker to
        settle, and journal the interrupted job back to ``queued``."""
        self._stop.set()
        self._ready.set()   # unblock a worker waiting for submissions
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                self._worker = None
        if self._thread is not None:
            self._thread.shutdown(wait=True)
            self._thread = None

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                capacity=self.burst,
                rate_per_s=self.rate_per_s,
                clock=self._clock,
            )
        return bucket

    def _backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _enqueue(self, job: Job) -> None:
        client = job.request.client
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._rr.append(client)
        queue.append(job)
        self._ready.set()
        if OBS.enabled:
            OBS.metrics.set("serve.queue_depth", self._backlog())

    def submit(self, request: SubmitRequest) -> Tuple[Job, bool]:
        """Accept one submission; returns ``(job, created)``.

        ``created=False`` means an identical submission (same
        campaign, options and client) is already queued or running
        and was coalesced.  Raises :class:`RateLimited`,
        :class:`QueueFull`, or :class:`ConfigurationError` (campaign
        document does not compile).
        """
        bucket = self._bucket(request.client)
        if not bucket.try_acquire():
            if OBS.enabled:
                OBS.metrics.inc(
                    "serve.rate_limited", labels={"client": request.client}
                )
            raise RateLimited(request.client, bucket.retry_after_s)
        key = request.key
        for job_id in reversed(self._order):
            candidate = self._jobs[job_id]
            if (
                candidate.job_id.startswith(key)
                and not candidate.terminal
                and candidate.request.key == key
            ):
                return candidate, False
        if self._backlog() >= self.queue_depth:
            raise QueueFull(
                f"queue is at capacity ({self.queue_depth} job(s) "
                "pending); retry later"
            )
        # Compile now: a document that cannot compile must fail the
        # submission (HTTP 400), not poison the queue later.
        campaign = Campaign.from_dict(request.campaign, lenient=True)
        n_trials = len(campaign.trials())
        serial = sum(
            1 for job_id in self._order
            if self._jobs[job_id].request.key == key
        )
        job = Job(f"{key}-{serial}", request)
        job.n_trials = n_trials
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        self._journal_put(job)
        self._enqueue(job)
        if OBS.enabled:
            OBS.metrics.inc(
                "serve.submits", labels={"client": request.client}
            )
        return job, True

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def status(self, job: Job) -> JobStatus:
        return JobStatus(
            job_id=job.job_id,
            client=job.request.client,
            state=job.state,
            name=job.name,
            n_trials=job.n_trials,
            done=job.done,
            cached=job.cached,
            executed=job.executed,
            failed=job.failed,
            outcomes=dict(job.outcomes),
            resumptions=job.resumptions,
            error=job.error,
        )

    def state_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def materialize(self, job: Job) -> List[str]:
        """The job's result lines.  A live (or just-finished) job
        carries them in memory; a terminal job recovered from the
        journal rebuilds them from the shared store by trial key —
        the same content-addressing ``campaign results`` uses."""
        if job.lines or not job.terminal:
            return job.lines
        try:
            campaign = Campaign.from_dict(job.request.campaign, lenient=True)
            trials = campaign.trials()
        except ConfigurationError:
            return job.lines
        lines: List[str] = []
        for trial in trials:
            record = self.results_store.get(trial.key)
            if record is not None:
                lines.append(canonical_json(record))
        job.lines = lines
        return job.lines

    # ------------------------------------------------------------------
    # The worker.
    # ------------------------------------------------------------------
    def _next_job(self) -> Optional[Job]:
        """Round-robin over client queues (pop one, rotate)."""
        for _ in range(len(self._rr)):
            client = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(client)
            if queue:
                job = queue.popleft()
                if OBS.enabled:
                    OBS.metrics.set("serve.queue_depth", self._backlog())
                return job
        return None

    async def _work(self) -> None:
        assert self._loop is not None and self._thread is not None
        while not self._stop.is_set():
            await self._ready.wait()
            if self._stop.is_set():
                return
            job = self._next_job()
            if job is None:
                self._ready.clear()
                if self._backlog():
                    self._ready.set()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None and self._thread is not None
        job.state = "running"
        job.done = job.cached = job.executed = job.failed = 0
        job.outcomes = {}
        job.lines = []
        job.touch()
        try:
            results = await self._loop.run_in_executor(
                self._thread, self._execute, job
            )
        except ConfigurationError as exc:
            job.state = "failed"
            job.error = str(exc)
        except Exception as exc:   # the job fails; the server survives
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            if results.interrupted:
                # Checkpointed shutdown: journal back to queued so a
                # restarted server resumes at the trial boundary.
                job.state = "queued"
                job.resumptions += 1
            else:
                job.state = "done"
                job.n_trials = results.planned
                job.failed = results.failed
        self._journal_put(job)
        job.touch()

    def _execute(self, job: Job) -> ResultSet:
        """Worker-thread body: run the campaign against the shared
        store, posting each resolved trial back into the loop."""
        campaign = Campaign.from_dict(job.request.campaign, lenient=True)
        options = job.request.options
        loop = self._loop
        assert loop is not None

        def progress(done: int, total: int, result: TrialResult) -> None:
            line = canonical_json(result.record)
            loop.call_soon_threadsafe(
                self._on_trial, job, line, result.cached,
                record_outcome(result.record), total,
            )

        return campaign.run(
            executor=options.executor,
            workers=options.workers,
            store=self.results_store,
            resume=True,
            wall_timeout_s=options.wall_timeout_s,
            retry_failed=options.retry_failed,
            retry_quarantined=options.retry_quarantined,
            stop=self._stop,
            install_signal_handlers=False,
            progress=progress,
        )

    def _on_trial(
        self, job: Job, line: str, cached: bool, outcome: str, total: int
    ) -> None:
        """Loop-side trial completion: account, append, wake streams."""
        job.n_trials = total
        job.done += 1
        if cached:
            job.cached += 1
        else:
            job.executed += 1
        if outcome != "ok":
            job.failed += 1
        job.outcomes[outcome] = job.outcomes.get(outcome, 0) + 1
        job.lines.append(line)
        if OBS.enabled:
            OBS.metrics.inc(
                "serve.trials", labels={"client": job.request.client}
            )
            if cached:
                OBS.metrics.inc(
                    "serve.dedupe_hits",
                    labels={"client": job.request.client},
                )
        job.touch()
