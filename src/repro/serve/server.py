"""The campaign server: asyncio HTTP/1.1 over the scheduler.

Simulation as a service, with no dependencies beyond the standard
library: a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
(one request per connection, ``Connection: close``) exposing the
scheduler as five routes under :data:`~repro.serve.protocol.API_PREFIX`:

========================================  =================================
``POST /v1/campaigns``                    submit a campaign (202 queued,
                                          200 coalesced onto an identical
                                          in-flight job, 400 bad document,
                                          429 rate-limited + Retry-After,
                                          503 queue full)
``GET /v1/campaigns``                     every known job, newest last
``GET /v1/campaigns/{id}``                one job's status document
``GET /v1/campaigns/{id}/results``        the job's results as streaming
                                          JSONL: each record line is
                                          flushed as its trial resolves,
                                          and the stream ends when the
                                          job reaches a terminal state
``GET /v1/healthz``                       liveness + queue/job counts
``GET /v1/metrics``                       the ``repro.obs`` metrics
                                          snapshot (when observability
                                          is enabled)
========================================  =================================

Every response body is JSON (streaming results are
``application/x-ndjson``); errors share the uniform
:func:`~repro.serve.protocol.error_doc` shape.  Requests are counted
into ``serve.requests{route=,status=}`` and wall-spanned via
``OBS.phase`` — both behind the usual ``OBS.enabled`` guard, so a
server without observability pays one boolean per request.

The server holds the loop; campaigns execute on the scheduler's
worker thread, so a long-running campaign never blocks status or
streaming requests.  :func:`run_server` is the CLI entrypoint: serve
until SIGINT/SIGTERM, then checkpoint (the scheduler journals any
in-flight job back to ``queued``) and exit — a restarted server
resumes it at the trial boundary.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Dict, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.obs.state import OBS
from repro.serve.protocol import API_PREFIX, SubmitRequest, error_doc
from repro.serve.scheduler import (
    Job,
    QueueFull,
    RateLimited,
    Scheduler,
    UnknownJob,
)

#: Hard cap on request bodies (a campaign document is a few KiB).
MAX_BODY_BYTES = 8 << 20

#: Hard cap on one header line (request line included).
MAX_LINE_BYTES = 64 << 10

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_CAMPAIGNS = f"{API_PREFIX}/campaigns"


def _dumps(doc: Dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


class _BadRequest(Exception):
    """Malformed HTTP or body (always answered with 400/413)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class CampaignServer:
    """One listening socket in front of one :class:`Scheduler`."""

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        sockets = self._server.sockets or []
        for sock in sockets:
            return int(sock.getsockname()[1])
        return self._requested_port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )

    async def stop(self) -> None:
        """Stop accepting, then checkpoint the scheduler (an in-flight
        campaign stops at its next trial boundary and re-journals as
        ``queued``)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        route = "unparsed"
        status = 500
        try:
            with OBS.phase("serve.request"):
                method, path, _headers, body = await self._read_request(
                    reader
                )
                route, status = await self._dispatch(
                    writer, method, path, body
                )
        except _BadRequest as exc:
            status = exc.status
            await self._respond(
                writer, exc.status, error_doc(str(exc), exc.status)
            )
        except (
            ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError
        ):
            status = 0   # client went away; nothing to answer
        except Exception as exc:   # one request fails; the server lives
            status = 500
            try:
                await self._respond(
                    writer,
                    500,
                    error_doc(f"{type(exc).__name__}: {exc}", 500),
                )
            except (ConnectionResetError, BrokenPipeError):
                status = 0
        finally:
            if OBS.enabled:
                OBS.metrics.inc(
                    "serve.requests",
                    labels={"route": route, "status": status},
                )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        try:
            request_line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request line too long", 413) from None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except asyncio.LimitOverrunError:
                raise _BadRequest("header line too long", 413) from None
            if len(line) > MAX_LINE_BYTES:
                raise _BadRequest("header line too long", 413)
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(
                f"unreadable Content-Length {length_text!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit", 413
            )
        if length:
            body = await reader.readexactly(length)
        path = target.partition("?")[0]
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Dict,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = _dumps(doc)
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> Tuple[str, int]:
        """Route one request; returns ``(route label, status)`` for
        the ``serve.requests`` metric (labels are route *patterns*,
        never raw paths, to keep cardinality bounded)."""
        if path == f"{API_PREFIX}/healthz":
            if method != "GET":
                return await self._method_not_allowed(
                    writer, "GET /v1/healthz"
                )
            return "GET /v1/healthz", await self._healthz(writer)
        if path == f"{API_PREFIX}/metrics":
            if method != "GET":
                return await self._method_not_allowed(
                    writer, "GET /v1/metrics"
                )
            return "GET /v1/metrics", await self._metrics(writer)
        if path == _CAMPAIGNS:
            if method == "POST":
                return "POST /v1/campaigns", await self._submit(
                    writer, body
                )
            if method == "GET":
                return "GET /v1/campaigns", await self._list(writer)
            return await self._method_not_allowed(writer, "/v1/campaigns")
        if path.startswith(_CAMPAIGNS + "/"):
            rest = path[len(_CAMPAIGNS) + 1:]
            if rest.endswith("/results"):
                route = "GET /v1/campaigns/{id}/results"
                job_id = rest[: -len("/results")]
                if method != "GET":
                    return await self._method_not_allowed(writer, route)
                return route, await self._results(writer, job_id)
            route = "GET /v1/campaigns/{id}"
            if method != "GET":
                return await self._method_not_allowed(writer, route)
            return route, await self._status(writer, rest)
        await self._respond(
            writer, 404, error_doc(f"no route {method} {path}", 404)
        )
        return "unknown", 404

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, route: str
    ) -> Tuple[str, int]:
        await self._respond(
            writer, 405, error_doc(f"method not allowed on {route}", 405)
        )
        return route, 405

    # ------------------------------------------------------------------
    # Handlers.
    # ------------------------------------------------------------------
    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> int:
        try:
            document = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(
                writer, 400, error_doc(f"body is not JSON: {exc}", 400)
            )
            return 400
        try:
            request = SubmitRequest.from_dict(document, lenient=True)
            job, created = self.scheduler.submit(request)
        except RateLimited as exc:
            await self._respond(
                writer,
                429,
                error_doc(str(exc), 429),
                extra_headers={
                    "Retry-After": f"{exc.retry_after_s:.3f}"
                },
            )
            return 429
        except QueueFull as exc:
            await self._respond(writer, 503, error_doc(str(exc), 503))
            return 503
        except ConfigurationError as exc:
            await self._respond(writer, 400, error_doc(str(exc), 400))
            return 400
        status = 202 if created else 200
        await self._respond(
            writer, status, self.scheduler.status(job).to_dict()
        )
        return status

    async def _list(self, writer: asyncio.StreamWriter) -> int:
        jobs = [
            self.scheduler.status(job).to_dict()
            for job in self.scheduler.jobs()
        ]
        await self._respond(writer, 200, {"jobs": jobs})
        return 200

    async def _status(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> int:
        try:
            job = self.scheduler.get(job_id)
        except UnknownJob as exc:
            await self._respond(writer, 404, error_doc(str(exc), 404))
            return 404
        await self._respond(
            writer, 200, self.scheduler.status(job).to_dict()
        )
        return 200

    async def _healthz(self, writer: asyncio.StreamWriter) -> int:
        doc = {
            "ok": True,
            "jobs": self.scheduler.state_counts(),
            "queue_depth_limit": self.scheduler.queue_depth,
        }
        await self._respond(writer, 200, doc)
        return 200

    async def _metrics(self, writer: asyncio.StreamWriter) -> int:
        if OBS.enabled and OBS.metrics is not None:
            doc = {"enabled": True, "metrics": OBS.metrics.to_dict()}
        else:
            doc = {"enabled": False, "metrics": {}}
        await self._respond(writer, 200, doc)
        return 200

    async def _results(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> int:
        """Stream the job's record lines as JSONL, flushing each line
        as its trial resolves; the stream ends (EOF) once the job is
        terminal and every line is out."""
        try:
            job = self.scheduler.get(job_id)
        except UnknownJob as exc:
            await self._respond(writer, 404, error_doc(str(exc), 404))
            return 404
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        sent = 0
        while True:
            lines = self._lines(job)
            if len(lines) < sent:
                # The job was interrupted and restarted: its line
                # buffer reset.  Restart the stream from the top — a
                # resumed run re-emits every record (cache hits for
                # the already-completed trials), so the client still
                # receives one complete, ordered sequence.
                sent = 0
            while sent < len(lines):
                writer.write((lines[sent] + "\n").encode("utf-8"))
                await writer.drain()
                sent += 1
            if job.terminal and sent >= len(self._lines(job)):
                return 200
            job.updated.clear()
            # Re-check after clearing: the worker may have resolved
            # the final trial between our check and the clear.
            if job.lines and len(job.lines) > sent:
                continue
            if job.terminal and sent >= len(self._lines(job)):
                return 200
            await job.updated.wait()

    def _lines(self, job: Job) -> List[str]:
        return self.scheduler.materialize(job)


async def _serve(
    scheduler: Scheduler, host: str, port: int, banner: bool
) -> int:
    server = CampaignServer(scheduler, host=host, port=port)
    await server.start()
    if banner:
        print(f"repro.serve listening on {server.address}", flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    interrupted = False

    def _on_signal() -> None:
        nonlocal interrupted
        interrupted = True
        stop.set()

    installed: List[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            continue   # non-main thread / platform without support
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    return 130 if interrupted else 0


def run_server(
    root: Union[str, None],
    host: str = "127.0.0.1",
    port: int = 8642,
    queue_depth: int = 16,
    rate_per_s: float = 10.0,
    burst: float = 20.0,
    banner: bool = True,
) -> int:
    """Blocking entrypoint for ``python -m repro serve``: build the
    scheduler (recovering any journaled jobs under ``root``), serve
    until SIGINT/SIGTERM, checkpoint, and return the exit code (130
    when stopped by a signal, per the CLI convention)."""
    scheduler = Scheduler(
        root=root,
        queue_depth=queue_depth,
        rate_per_s=rate_per_s,
        burst=burst,
    )
    return asyncio.run(_serve(scheduler, host, port, banner))
