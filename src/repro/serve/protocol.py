"""Wire schemas for the campaign server (versioned, lenient-loading).

Everything that crosses the HTTP boundary is a plain JSON document
stamped with the shared ``schema_version`` and loadable through a
``from_dict(..., lenient=True)`` that drops unknown keys — the same
conventions every persisted report in this repo follows, so old
clients keep working against newer servers (and vice versa).

Three documents make up the protocol:

* :class:`SubmitOptions` — *how* to execute a submitted campaign
  (executor, workers, wall budget, retry switches).  Execution
  policy, deliberately separated from the campaign document itself:
  two submissions of the same campaign with different options are
  the same experiment, and dedupe against the shared trial store
  treats them that way.
* :class:`SubmitRequest` — one submission: the campaign document
  (exactly what ``campaign run`` consumes), its options, and the
  client token used for rate limiting and per-client dedupe
  accounting.  :attr:`SubmitRequest.key` is a content hash over all
  three, the coalescing handle for identical in-flight submissions.
* :class:`JobStatus` — the observable state of one job: queue state,
  per-outcome counts, dedupe (cache) accounting, and the terminal
  error, if any.  This is the body of ``GET /v1/campaigns/{id}`` and
  the document ``campaign watch`` renders.

Job lifecycle: ``queued -> running -> done | failed``, with one loop
back — a server stopped mid-run checkpoints the campaign at a trial
boundary and re-journals the job as ``queued``, so a restarted server
resumes it exactly like ``campaign run`` resumes after SIGTERM.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.campaign.campaign import EXECUTORS
from repro.campaign.trial import canonical_json
from repro.core.errors import ConfigurationError
from repro.core.schema import REPORT_SCHEMA_VERSION

#: URL prefix every route lives under; bump on breaking route changes.
API_PREFIX = "/v1"

#: The job lifecycle (see module docstring).  ``queued`` is also the
#: post-interruption state: a checkpointed job resumes from there.
JOB_STATES = ("queued", "running", "done", "failed")

#: States a job never leaves (``queued``/``running`` are live).
TERMINAL_STATES = ("done", "failed")

#: Client token used when a submission names none.
DEFAULT_CLIENT = "anonymous"


@dataclass(frozen=True)
class SubmitOptions:
    """Execution policy for one submitted campaign."""

    executor: str = "serial"
    workers: Optional[int] = None
    wall_timeout_s: Optional[float] = None
    retry_failed: bool = False
    retry_quarantined: bool = False

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"options.executor must be one of {EXECUTORS}, "
                f"not {self.executor!r}"
            )

    def to_dict(self) -> Dict:
        return {
            "executor": self.executor,
            "workers": self.workers,
            "wall_timeout_s": self.wall_timeout_s,
            "retry_failed": self.retry_failed,
            "retry_quarantined": self.retry_quarantined,
        }

    _KEYS = frozenset({
        "executor", "workers", "wall_timeout_s", "retry_failed",
        "retry_quarantined",
    })

    @classmethod
    def from_dict(
        cls, data: Dict, lenient: bool = False
    ) -> "SubmitOptions":
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    "unknown SubmitOptions key(s): "
                    f"{', '.join(sorted(unknown))}"
                )
        return cls(
            executor=data.get("executor", "serial"),
            workers=data.get("workers"),
            wall_timeout_s=data.get("wall_timeout_s"),
            retry_failed=bool(data.get("retry_failed", False)),
            retry_quarantined=bool(data.get("retry_quarantined", False)),
        )


@dataclass(frozen=True)
class SubmitRequest:
    """One campaign submission: document + policy + client token."""

    campaign: Dict
    options: SubmitOptions = field(default_factory=SubmitOptions)
    client: str = DEFAULT_CLIENT

    def __post_init__(self) -> None:
        if not isinstance(self.campaign, dict) or not self.campaign:
            raise ConfigurationError(
                "a submission needs a non-empty 'campaign' JSON object "
                "(the same document `campaign run` consumes)"
            )
        if not isinstance(self.client, str) or not self.client:
            raise ConfigurationError(
                "the client token must be a non-empty string"
            )

    @property
    def key(self) -> str:
        """Content hash of (campaign, options, client) — the handle
        used to coalesce identical in-flight submissions and to derive
        stable job ids across server restarts."""
        return hashlib.sha256(
            canonical_json({
                "campaign": self.campaign,
                "options": self.options.to_dict(),
                "client": self.client,
            }).encode()
        ).hexdigest()[:16]

    def to_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "campaign": self.campaign,
            "options": self.options.to_dict(),
            "client": self.client,
        }

    _KEYS = frozenset({
        "schema_version", "campaign", "options", "client",
    })

    @classmethod
    def from_dict(
        cls, data: Dict, lenient: bool = False
    ) -> "SubmitRequest":
        if not isinstance(data, dict):
            raise ConfigurationError(
                "a submission body must be a JSON object"
            )
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    "unknown SubmitRequest key(s): "
                    f"{', '.join(sorted(unknown))}"
                )
        if "campaign" not in data:
            raise ConfigurationError(
                "a submission needs a 'campaign' key"
            )
        options_doc = data.get("options") or {}
        if not isinstance(options_doc, dict):
            raise ConfigurationError(
                "'options' must be a JSON object"
            )
        client = data.get("client") or DEFAULT_CLIENT
        return cls(
            campaign=data["campaign"],
            options=SubmitOptions.from_dict(options_doc, lenient=lenient),
            client=client,
        )


@dataclass(frozen=True)
class JobStatus:
    """The observable state of one job (``GET /v1/campaigns/{id}``)."""

    job_id: str
    client: str
    state: str
    name: str = ""
    #: Trials the campaign compiled to (0 until known).
    n_trials: int = 0
    #: Trials resolved so far in the current/most recent run.
    done: int = 0
    #: Of ``done``: served from the shared store / an in-run alias —
    #: the dedupe accounting surface (near-free resubmissions).
    cached: int = 0
    #: Of ``done``: actually executed this run.
    executed: int = 0
    #: Trials whose stored outcome is a failure.
    failed: int = 0
    #: Per-outcome counts over resolved trials (ok/error/timeout/crashed).
    outcomes: Dict[str, int] = field(default_factory=dict)
    #: How often this job has been interrupted and re-queued.
    resumptions: int = 0
    #: Terminal error message ("" unless ``state == "failed"``).
    error: str = ""

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigurationError(
                f"job state must be one of {JOB_STATES}, "
                f"not {self.state!r}"
            )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        """Terminal success with no failed trials."""
        return self.state == "done" and self.failed == 0

    def to_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "job_id": self.job_id,
            "client": self.client,
            "state": self.state,
            "name": self.name,
            "n_trials": self.n_trials,
            "done": self.done,
            "cached": self.cached,
            "executed": self.executed,
            "failed": self.failed,
            "outcomes": dict(self.outcomes),
            "resumptions": self.resumptions,
            "error": self.error,
            "terminal": self.terminal,
        }

    _KEYS = frozenset({
        "schema_version", "job_id", "client", "state", "name",
        "n_trials", "done", "cached", "executed", "failed", "outcomes",
        "resumptions", "error", "terminal",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "JobStatus":
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    f"unknown JobStatus key(s): {', '.join(sorted(unknown))}"
                )
        for required in ("job_id", "state"):
            if required not in data:
                raise ConfigurationError(
                    f"a job status document needs a {required!r} key"
                )
        return cls(
            job_id=data["job_id"],
            client=data.get("client", DEFAULT_CLIENT),
            state=data["state"],
            name=data.get("name", ""),
            n_trials=int(data.get("n_trials", 0)),
            done=int(data.get("done", 0)),
            cached=int(data.get("cached", 0)),
            executed=int(data.get("executed", 0)),
            failed=int(data.get("failed", 0)),
            outcomes=dict(data.get("outcomes") or {}),
            resumptions=int(data.get("resumptions", 0)),
            error=data.get("error", ""),
        )

    def summary(self) -> str:
        """One status line (the ``campaign watch`` rendering)."""
        label = self.name or self.job_id
        text = (
            f"{label}: {self.state} — {self.done}/{self.n_trials} "
            f"trial(s), {self.cached} from cache, "
            f"{self.executed} executed"
        )
        if self.failed:
            text += f", {self.failed} FAILED"
        if self.resumptions:
            text += f" (resumed x{self.resumptions})"
        if self.error:
            text += f" [{self.error}]"
        return text


def error_doc(message: str, status: int) -> Dict:
    """The uniform error body every non-2xx response carries."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "error": message,
        "status": status,
    }
