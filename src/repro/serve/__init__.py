"""repro.serve — simulation as a service.

An asyncio campaign server over the existing campaign layer:
multi-tenant queueing with per-client rate limits, content-hash
dedupe against the shared :class:`~repro.campaign.store.ResultStore`,
streaming JSONL results, and journal-backed restart survival.  See
:mod:`repro.serve.server` for the HTTP surface and
:mod:`repro.serve.scheduler` for the execution model.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    API_PREFIX,
    DEFAULT_CLIENT,
    JOB_STATES,
    TERMINAL_STATES,
    JobStatus,
    SubmitOptions,
    SubmitRequest,
    error_doc,
)
from repro.serve.scheduler import (
    Job,
    QueueFull,
    RateLimited,
    Scheduler,
    TokenBucket,
    UnknownJob,
)
from repro.serve.server import CampaignServer, run_server

__all__ = [
    "API_PREFIX",
    "DEFAULT_CLIENT",
    "JOB_STATES",
    "TERMINAL_STATES",
    "CampaignServer",
    "Job",
    "JobStatus",
    "QueueFull",
    "RateLimited",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "SubmitOptions",
    "SubmitRequest",
    "TokenBucket",
    "UnknownJob",
    "error_doc",
    "run_server",
]
