"""MBus reproduction: an ultra-low power interconnect bus (ISCA 2015).

A full-system, laptop-scale reproduction of Pannuto et al.'s MBus:
the edge-accurate protocol simulator (:mod:`repro.core` on
:mod:`repro.sim`), power and energy models (:mod:`repro.power`),
baseline buses for comparison (:mod:`repro.baselines`), timing and
throughput analysis (:mod:`repro.timing`), synthesis area estimation
(:mod:`repro.synthesis`), an MCU bitbang cost model
(:mod:`repro.bitbang`), the paper's two microbenchmark systems
(:mod:`repro.systems`), a declarative scenario API
(:mod:`repro.scenario`) — JSON-round-trippable topology specs,
composable workloads, and a backend-agnostic runner with structured
reports — a deterministic fault-injection and reliability subsystem
(:mod:`repro.faults`) exercising the paper's robustness claims, and
a campaign layer (:mod:`repro.campaign`) that turns every parameter
study into content-addressed trials with pluggable serial/process
executors, an on-disk resumable result cache, and queryable result
sets.
"""

from repro.campaign import (
    Campaign,
    Grid,
    ResultSet,
    ResultStore,
    load_campaign,
)

from repro.core import (
    Address,
    ControlCode,
    MBusSystem,
    MBusTiming,
    Message,
    TransactionModel,
    TransactionResult,
)
from repro.faults import (
    BitFlip,
    ClockDrift,
    DropEdge,
    FaultSpec,
    NodePowerLoss,
    RandomGlitches,
    ReliabilityReport,
    StuckAt,
    WireGlitch,
    load_faults,
)
from repro.scenario import (
    Broadcast,
    Burst,
    Interrupt,
    NodeSpec,
    OneShot,
    Periodic,
    RandomTraffic,
    RunReport,
    SystemSpec,
    Workload,
    load_scenario,
    run,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "ControlCode",
    "MBusSystem",
    "MBusTiming",
    "Message",
    "TransactionModel",
    "TransactionResult",
    "Campaign",
    "Grid",
    "ResultSet",
    "ResultStore",
    "load_campaign",
    "BitFlip",
    "ClockDrift",
    "DropEdge",
    "FaultSpec",
    "NodePowerLoss",
    "RandomGlitches",
    "ReliabilityReport",
    "StuckAt",
    "WireGlitch",
    "load_faults",
    "Broadcast",
    "Burst",
    "Interrupt",
    "NodeSpec",
    "OneShot",
    "Periodic",
    "RandomTraffic",
    "RunReport",
    "SystemSpec",
    "Workload",
    "load_scenario",
    "run",
    "sweep",
    "__version__",
]
