"""Protocol overhead comparison: Figure 10.

Overhead (non-payload bits) as a function of message length for every
bus in the figure.  MBus's overhead is length independent (19 bits
short-addressed, 43 full), so it crosses below the length-
proportional protocols: below 2-stop-bit UART after 7 bytes and below
I2C / 1-stop-bit UART after 9 bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.constants import OVERHEAD_CYCLES_FULL, OVERHEAD_CYCLES_SHORT

#: name -> overhead_bits(n_bytes), exactly the Figure 10 legend.
OVERHEAD_CURVES: Dict[str, Callable[[int], int]] = {
    "UART (1-bit stop)": lambda n: 2 * n,
    "UART (2-bit stop)": lambda n: 3 * n,
    "I2C": lambda n: 10 + n,
    "SPI": lambda n: 2,
    "MBus (short)": lambda n: OVERHEAD_CYCLES_SHORT,
    "MBus (full)": lambda n: OVERHEAD_CYCLES_FULL,
}


def overhead_bits(bus: str, n_bytes: int) -> int:
    """Overhead of one named bus for an n-byte message."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    try:
        return OVERHEAD_CURVES[bus](n_bytes)
    except KeyError:
        raise KeyError(
            f"unknown bus {bus!r}; choose from {sorted(OVERHEAD_CURVES)}"
        ) from None


def overhead_series(
    buses: Optional[Sequence[str]] = None,
    lengths: Sequence[int] = tuple(range(0, 41, 2)),
) -> Dict[str, List[Tuple[int, int]]]:
    """The Figure 10 data: per-bus (length, overhead) series."""
    names = list(buses) if buses is not None else list(OVERHEAD_CURVES)
    return {
        name: [(n, overhead_bits(name, n)) for n in lengths] for name in names
    }


def crossover_payload_bytes(
    reference: str = "MBus (short)", other: str = "I2C", max_bytes: int = 4096
) -> Optional[int]:
    """Smallest payload where ``reference`` has strictly lower overhead.

    ``crossover_payload_bytes("MBus (short)", "I2C")`` returns 10:
    MBus is "more efficient than I2C ... after 9 bytes."
    """
    for n in range(0, max_bytes + 1):
        if overhead_bits(reference, n) < overhead_bits(other, n):
            return n
    return None


def efficiency(bus: str, n_bytes: int) -> float:
    """Payload bits as a fraction of all bits moved."""
    if n_bytes == 0:
        return 0.0
    payload = 8 * n_bytes
    return payload / (payload + overhead_bits(bus, n_bytes))
