"""Transaction rate and parallel-MBus goodput (Figures 14 and 15).

Figure 14: as a shared medium, MBus supports a finite aggregate
transaction rate — the bus clock divided by the per-transaction cycle
count (overhead + 8n data cycles), across four clock speeds.

Figure 15: parallel MBus stripes payload bits over w DATA wires while
all other protocol elements stay serial, so the data phase shrinks to
ceil(8n / w) cycles and goodput approaches w-fold for long messages
while short messages stay overhead-dominated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.core.constants import (
    DEFAULT_CLOCK_HZ,
    OVERHEAD_CYCLES_FULL,
    OVERHEAD_CYCLES_SHORT,
)

#: The four clock speeds plotted in Figure 14.
FIGURE14_CLOCKS_HZ = (100_000, 400_000, 1_000_000, 7_100_000)

#: The wire counts plotted in Figure 15.
FIGURE15_WIRE_COUNTS = (1, 2, 3, 4)


def _overhead(full_address: bool) -> int:
    return OVERHEAD_CYCLES_FULL if full_address else OVERHEAD_CYCLES_SHORT


def transaction_cycles(
    n_bytes: int, full_address: bool = False, data_wires: int = 1
) -> int:
    """Cycles for one transaction, optionally with striped data."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    if data_wires < 1:
        raise ValueError("at least one DATA wire")
    data = math.ceil(8 * n_bytes / data_wires)
    return _overhead(full_address) + data


def transaction_rate_hz(
    clock_hz: float, n_bytes: int, full_address: bool = False
) -> float:
    """Saturating transactions per second (Figure 14)."""
    if clock_hz <= 0:
        raise ValueError("clock must be positive")
    return clock_hz / transaction_cycles(n_bytes, full_address)


def transaction_rate_series(
    lengths: Sequence[int] = tuple(range(0, 41, 4)),
    clocks_hz: Sequence[int] = FIGURE14_CLOCKS_HZ,
) -> Dict[int, List[Tuple[int, float]]]:
    """Figure 14 data: clock -> [(payload bytes, transactions/s)]."""
    return {
        clock: [(n, transaction_rate_hz(clock, n)) for n in lengths]
        for clock in clocks_hz
    }


def parallel_goodput_bps(
    n_bytes: int,
    data_wires: int = 1,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    full_address: bool = False,
) -> float:
    """Payload throughput of (parallel) MBus in bits/second (Fig. 15).

    Goodput counts only actual data bits; protocol overhead is
    unchanged by extra wires, so it dominates short messages.
    """
    if n_bytes == 0:
        return 0.0
    cycles = transaction_cycles(n_bytes, full_address, data_wires)
    return 8 * n_bytes * clock_hz / cycles


def parallel_goodput_series(
    lengths: Sequence[int] = tuple(range(0, 129, 8)),
    wire_counts: Sequence[int] = FIGURE15_WIRE_COUNTS,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> Dict[int, List[Tuple[int, float]]]:
    """Figure 15 data: wires -> [(payload bytes, goodput kbit/s)].

    The paper's y-axis is labelled bits/s but the plotted magnitudes
    (0-1600 for a 400 kHz clock) are only consistent with kbit/s;
    we report kbit/s and note the discrepancy in EXPERIMENTS.md.
    """
    return {
        w: [
            (n, parallel_goodput_bps(n, w, clock_hz) / 1e3) for n in lengths
        ]
        for w in wire_counts
    }


def speedup_vs_serial(n_bytes: int, data_wires: int) -> float:
    """Goodput gain of w wires over serial MBus for one length."""
    serial = parallel_goodput_bps(n_bytes, 1)
    if serial == 0:
        return 1.0
    return parallel_goodput_bps(n_bytes, data_wires) / serial
