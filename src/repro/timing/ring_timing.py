"""Ring propagation timing: maximum bus clock vs node count (Fig. 9).

"Because MBus is a ring, as the number of nodes increases, so does
the propagation delay around the ring.  The MBus specification
defines a maximum node-to-node delay of 10 ns ... a 14-node MBus
system can run at up to 7.1 MHz."  The figure's curve is the clock
whose period equals the worst-case ring traversal:

    f_max(n) = 1 / (n * t_node)

which gives 50 MHz at 2 nodes and 7.14 MHz at the 14-node maximum.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.constants import (
    MAX_NODE_TO_NODE_DELAY_NS,
    MAX_SHORT_ADDRESSED_NODES,
)


def max_clock_hz(
    n_nodes: int, node_delay_ns: float = MAX_NODE_TO_NODE_DELAY_NS
) -> float:
    """Peak bus clock for a ring of ``n_nodes``."""
    if n_nodes < 2:
        raise ValueError("a ring has at least two nodes")
    if node_delay_ns <= 0:
        raise ValueError("node delay must be positive")
    return 1e9 / (n_nodes * node_delay_ns)


def max_clock_mhz_series(
    node_counts: Sequence[int] = tuple(range(2, MAX_SHORT_ADDRESSED_NODES + 1)),
    node_delay_ns: float = MAX_NODE_TO_NODE_DELAY_NS,
) -> List[Tuple[int, float]]:
    """(n, f_max in MHz) pairs — the Figure 9 series."""
    return [
        (n, max_clock_hz(n, node_delay_ns) / 1e6) for n in node_counts
    ]


def max_nodes_at_clock(
    clock_hz: float, node_delay_ns: float = MAX_NODE_TO_NODE_DELAY_NS
) -> int:
    """Largest ring that still meets timing at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError("clock must be positive")
    n = int(1e9 / (clock_hz * node_delay_ns))
    return max(n, 0)


def ring_delay_ns(
    n_nodes: int, node_delay_ns: float = MAX_NODE_TO_NODE_DELAY_NS
) -> float:
    """Worst-case one-lap propagation delay."""
    return n_nodes * node_delay_ns
