"""Timing, overhead, and throughput analysis (Figures 9, 10, 14, 15)."""

from repro.timing.overhead import (
    OVERHEAD_CURVES,
    crossover_payload_bytes,
    overhead_bits,
)
from repro.timing.ring_timing import (
    MAX_NODE_TO_NODE_DELAY_NS,
    max_clock_hz,
    max_clock_mhz_series,
    max_nodes_at_clock,
)
from repro.timing.throughput import (
    parallel_goodput_bps,
    parallel_goodput_series,
    transaction_rate_hz,
    transaction_rate_series,
)

__all__ = [
    "OVERHEAD_CURVES",
    "crossover_payload_bytes",
    "overhead_bits",
    "MAX_NODE_TO_NODE_DELAY_NS",
    "max_clock_hz",
    "max_clock_mhz_series",
    "max_nodes_at_clock",
    "parallel_goodput_bps",
    "parallel_goodput_series",
    "transaction_rate_hz",
    "transaction_rate_series",
]
