"""Schema pass: serialised documents stay round-trippable and canonical.

The resumable store, the campaign cache and the differential harness
all treat documents as the source of truth; this pass pins the
source-level conventions that keep them loadable and content-stable:

* a class shipping ``to_dict`` must be loadable again — a
  ``from_dict`` classmethod in the class, or a module-level
  ``*_from_dict`` dispatcher (one-way analytic reports carry a
  justified suppression instead);
* ``schema_version`` stamps come from the shared
  ``REPORT_SCHEMA_VERSION`` constant, never an inline literal that
  can drift per document type;
* ``json.dumps`` that feeds ``hashlib`` (content addressing) must
  pass ``sort_keys=True``, and the designated canonical-JSON modules
  must do so for *every* dump;
* wall-clock report fields (``wall_*``) never enter trial records:
  every ``wall_*`` key RunReport.to_dict emits must be popped by
  ``trial_record`` before the record is hashed/stored.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.astutil import call_name, dict_literal_keys
from repro.lint.framework import FileContext, Finding, lint_pass

#: Modules whose every ``json.dumps`` must be canonical: they produce
#: the bytes that get hashed or byte-compared.
CANONICAL_JSON_MODULES: Set[str] = {
    "campaign/trial.py",
    "campaign/store.py",
    "batch/cache.py",
}

#: The report producer and the record builder of the wall-exclusion
#: contract.
_REPORT_FILE = "scenario/runner.py"
_RECORD_FILE = "campaign/trial.py"


def _class_of(ctx: FileContext, node: ast.AST) -> Optional[ast.ClassDef]:
    parent = ctx.parent(node)
    if isinstance(parent, ast.ClassDef):
        return parent
    return None


def _pairing_findings(ctx: FileContext) -> Iterator[Finding]:
    module_loaders = {
        node.name
        for node in ctx.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name.endswith("_from_dict")
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "to_dict" not in methods:
            continue
        if "from_dict" in methods or module_loaders:
            continue
        to_dict = next(
            item for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "to_dict"
        )
        yield ctx.finding(
            "schema",
            to_dict,
            f"class {node.name} defines to_dict but no from_dict "
            "(and the module has no *_from_dict loader); its "
            "documents cannot be loaded back",
            hint="add a from_dict classmethod, or suppress with a "
                 "justification if the document is a one-way report",
        )


def _version_findings(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant)
                and key.value == "schema_version"
            ):
                continue
            if isinstance(value, ast.Constant):
                yield ctx.finding(
                    "schema",
                    value,
                    "schema_version stamped with an inline literal; "
                    "versions drift per document type unless they all "
                    "come from one constant",
                    hint="use repro.core.schema.REPORT_SCHEMA_VERSION",
                )


def _canonical_json_findings(ctx: FileContext) -> Iterator[Finding]:
    must_sort_everywhere = ctx.relpath in CANONICAL_JSON_MODULES
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and call_name(node) == "json.dumps"
        ):
            continue
        sorts = any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if sorts:
            continue
        if must_sort_everywhere:
            yield ctx.finding(
                "schema",
                node,
                "json.dumps without sort_keys=True in a canonical-"
                "JSON module; key order would leak into hashed bytes",
                hint="pass sort_keys=True (see canonical_json)",
            )
        elif _feeds_hashlib(ctx, node):
            yield ctx.finding(
                "schema",
                node,
                "json.dumps feeding a hash without sort_keys=True; "
                "the content address would depend on dict insertion "
                "order",
                hint="pass sort_keys=True",
            )


def _feeds_hashlib(ctx: FileContext, node: ast.AST) -> bool:
    current: Optional[ast.AST] = ctx.parent(node)
    while current is not None:
        if isinstance(current, ast.Call):
            name = call_name(current)
            if name is not None and name.startswith("hashlib."):
                return True
        if isinstance(current, ast.stmt):
            return False
        current = ctx.parent(current)
    return False


def _report_wall_keys(ctx: FileContext) -> List[str]:
    to_dict = ctx.find_function("to_dict", classname="RunReport")
    if to_dict is None:
        return []
    keys: List[str] = []
    for node in ast.walk(to_dict):
        if isinstance(node, ast.Dict):
            keys.extend(
                key for key in dict_literal_keys(node)
                if key.startswith("wall")
            )
    return keys


def _record_popped_keys(ctx: FileContext) -> Set[str]:
    record_fn = ctx.find_function("trial_record")
    if record_fn is None:
        return set()
    popped: Set[str] = set()
    for node in ast.walk(record_fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            popped.add(node.args[0].value)
    return popped


@lint_pass(
    "schema",
    "to_dict/from_dict pairing, shared schema_version constant, "
    "canonical JSON for hashes, wall-clock fields out of records",
    scope="project",
)
def schema(contexts: List[FileContext]) -> Iterator[Finding]:
    by_path = {ctx.relpath: ctx for ctx in contexts}
    for ctx in contexts:
        yield from _pairing_findings(ctx)
        yield from _version_findings(ctx)
        yield from _canonical_json_findings(ctx)
    report_ctx = by_path.get(_REPORT_FILE)
    record_ctx = by_path.get(_RECORD_FILE)
    if report_ctx is not None and record_ctx is not None:
        wall_keys = _report_wall_keys(report_ctx)
        popped = _record_popped_keys(record_ctx)
        record_fn = record_ctx.find_function("trial_record")
        for key in wall_keys:
            if key not in popped:
                yield record_ctx.finding(
                    "schema",
                    record_fn if record_fn is not None
                    else record_ctx.tree,
                    f"RunReport.to_dict emits wall-clock field "
                    f"{key!r} but trial_record never pops it; "
                    "wall noise would enter content-addressed records "
                    "and break byte-identity of cached reruns",
                    hint=f'add doc.pop("{key}", None) in trial_record',
                )
