"""API-hygiene pass: no mutable defaults, no swallowed failures.

Failure-as-data is a campaign-layer guarantee: every exception
becomes a structured TrialFailure record.  A handler that silently
``pass``es turns a failure into a missing record, and a mutable
default argument turns two independent trials into accidental
shared state — both undermine the "execution is a pure function of
documents" contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import call_name
from repro.lint.framework import FileContext, Finding, lint_pass

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in _MUTABLE_CALLS and not node.args \
            and not node.keywords
    return False


def _body_is_swallow(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue   # docstring / Ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@lint_pass(
    "api-hygiene",
    "no mutable default arguments; no bare/swallowing exception "
    "handlers",
)
def api_hygiene(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        "api-hygiene",
                        default,
                        f"{node.name}() has a mutable default "
                        "argument; it is shared across every call "
                        "(and across trials in a campaign)",
                        hint="default to None and create the value "
                             "inside the function",
                    )
        elif isinstance(node, ast.ExceptHandler):
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            if node.type is None:
                yield ctx.finding(
                    "api-hygiene",
                    node,
                    "bare except: catches SystemExit and "
                    "KeyboardInterrupt, breaking the campaign "
                    "layer's SIGINT checkpoint-and-stop contract",
                    hint="catch Exception (or a narrower class)",
                )
            if broad and _body_is_swallow(node):
                yield ctx.finding(
                    "api-hygiene",
                    node,
                    "broad exception handler silently swallows the "
                    "failure; failures are data (structured "
                    "TrialFailure records), never dropped",
                    hint="record, re-raise or narrow the handler",
                )
