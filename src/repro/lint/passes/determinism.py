"""Determinism pass: no ambient entropy in simulation paths.

Trial records are content-addressed (SHA-256 over canonical JSON) and
byte-compared across backends and executors; any read of ambient
state — the global RNG, the wall clock, the process environment —
poisons the cache and the equivalence contract.  Seeded
``random.Random(seed)`` instances are the sanctioned randomness;
host-time reads are confined to the wall-clock module whitelist
below (executors measuring wall cost, schedulers enforcing wall
deadlines), which may use *relative* clocks (``perf_counter`` /
``monotonic``) but never absolute ones (``time.time``,
``datetime.now``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.astutil import call_name, dotted_name
from repro.lint.framework import FileContext, Finding, lint_pass

#: Modules allowed to read *relative* host clocks: they time trials,
#: enforce wall deadlines, or stage chaos drills — wall readings there
#: are reported separately and never enter content-addressed records.
WALL_CLOCK_MODULES: Set[str] = {
    "campaign/executors.py",
    "campaign/campaign.py",
    "campaign/chaos.py",
    "sim/scheduler.py",
    "scenario/runner.py",
    "batch/executor.py",
    "obs/wallclock.py",
    "serve/scheduler.py",   # token-bucket refill over time.monotonic
    "serve/client.py",      # watch polling deadlines
}

#: Modules allowed to read the process environment (documented
#: feature gates resolved once at import, never per-trial).
ENV_MODULES: Set[str] = {
    "batch/accel.py",
}

#: ``random.<attr>`` calls that hit the *global*, unseeded RNG.
#: ``random.Random`` (a seeded instance) is the sanctioned spelling.
_GLOBAL_RNG_OK = {"Random", "SystemRandom"}

#: Relative clocks: allowed in WALL_CLOCK_MODULES only.
_RELATIVE_CLOCKS = {"time.perf_counter", "time.monotonic",
                    "time.process_time", "time.thread_time"}

#: Absolute clocks: never allowed without a suppression.
_ABSOLUTE_CLOCKS = {"time.time", "time.time_ns", "time.localtime",
                    "time.gmtime", "time.ctime"}

_DATETIME_NOW = {"now", "utcnow", "today", "fromtimestamp"}


def _is_serialization_file(ctx: FileContext) -> bool:
    """Files where iteration order becomes bytes: anything defining a
    ``to_dict`` / signature projection, plus the canonical-JSON and
    content-addressing modules."""
    if ctx.relpath in {"campaign/trial.py", "batch/cache.py"}:
        return True
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "to_dict" or "signature" in node.name:
                return True
    return False


def _set_iteration_findings(ctx: FileContext) -> Iterator[Finding]:
    """Iterating a set in a serialisation path bakes hash order into
    output bytes.  ``sorted(...)`` over the set is the fix."""
    for node in ast.walk(ctx.tree):
        is_set = isinstance(node, (ast.Set, ast.SetComp)) or (
            isinstance(node, ast.Call)
            and call_name(node) in {"set", "frozenset"}
        )
        if not is_set:
            continue
        parent = ctx.parent(node)
        ordered_sink = None
        if isinstance(parent, (ast.For, ast.comprehension)) and \
                parent.iter is node:
            ordered_sink = "iterated"
        elif isinstance(parent, ast.Call) and node in parent.args:
            sink = call_name(parent)
            if sink in {"list", "tuple"} or (
                sink is not None and sink.endswith(".join")
            ):
                ordered_sink = f"passed to {sink}()"
        if ordered_sink is None:
            continue
        yield ctx.finding(
            "determinism",
            node,
            f"set {ordered_sink} in a serialisation path: iteration "
            "order is hash-order, which varies across interpreters "
            "and poisons content-addressed records",
            hint="wrap the set in sorted(...)",
        )


@lint_pass(
    "determinism",
    "no unseeded RNG, wall-clock or environment reads in sim paths",
)
def determinism(ctx: FileContext) -> Iterator[Finding]:
    in_wall_module = ctx.relpath in WALL_CLOCK_MODULES
    in_env_module = ctx.relpath in ENV_MODULES
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                continue
            if (
                name.startswith("random.")
                and name.split(".", 1)[1] not in _GLOBAL_RNG_OK
            ):
                yield ctx.finding(
                    "determinism",
                    node,
                    f"{name}() draws from the process-global RNG; "
                    "replays of the same trial will diverge",
                    hint="use a seeded random.Random(seed) instance",
                )
            elif name in _ABSOLUTE_CLOCKS:
                yield ctx.finding(
                    "determinism",
                    node,
                    f"{name}() reads the absolute wall clock; records "
                    "containing it can never be byte-identical across "
                    "runs",
                    hint="sim time is integer picoseconds from t=0; "
                         "wall cost belongs in the executor's wall_s",
                )
            elif name in _RELATIVE_CLOCKS and not in_wall_module:
                yield ctx.finding(
                    "determinism",
                    node,
                    f"{name}() outside the wall-clock module whitelist "
                    f"({', '.join(sorted(WALL_CLOCK_MODULES))})",
                    hint="time trials in the executor layer, or add a "
                         "justified suppression",
                )
            elif name == "os.getenv" and not in_env_module:
                yield ctx.finding(
                    "determinism",
                    node,
                    "os.getenv() makes results depend on the host "
                    "environment",
                    hint="thread configuration through documents/specs; "
                         "env gates live in batch/accel.py",
                )
            elif (
                name.startswith("datetime.")
                and name.split(".")[-1] in _DATETIME_NOW
            ):
                yield ctx.finding(
                    "determinism",
                    node,
                    f"{name}() reads the absolute wall clock",
                    hint="sim time is integer picoseconds from t=0",
                )
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name == "os.environ" and not in_env_module:
                yield ctx.finding(
                    "determinism",
                    node,
                    "os.environ read makes results depend on the host "
                    "environment",
                    hint="thread configuration through documents/specs; "
                         "env gates live in batch/accel.py",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = [
                    alias.name for alias in node.names
                    if alias.name not in _GLOBAL_RNG_OK
                ]
                if bad:
                    yield ctx.finding(
                        "determinism",
                        node,
                        "importing global-RNG functions from random "
                        f"({', '.join(bad)})",
                        hint="import random; use random.Random(seed)",
                    )
    if _is_serialization_file(ctx):
        yield from _set_iteration_findings(ctx)
