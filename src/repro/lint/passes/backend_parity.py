"""Backend-parity pass: the compiled tier mirrors the core exactly.

The differential harness asserts *error symmetry*: a bad spec must
fail with the same ConfigurationError message on edge, fast and
batch.  The batch compiler replicates the core construction-path
checks, so its message literals can silently drift when someone
rewords an error in ``core/node.py`` or ``core/bus.py`` — this pass
compares the raise-site templates function by function and fails on
any asymmetry.  It also checks the backend registry's internal
consistency (unique names, exactly one selector whose capability
flags are the union of the concrete tiers, selector targets
registered) and that CLI backend-name defaults name registered
backends.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.astutil import (
    assigned_name,
    call_name,
    raised_messages,
    string_template,
)
from repro.lint.framework import FileContext, Finding, lint_pass


@dataclass(frozen=True)
class ParityPair:
    """One compiler function whose raise templates must match a core
    construction-path function's."""

    batch_file: str
    batch_function: str
    batch_class: Optional[str]
    core_file: str
    core_function: str
    core_class: Optional[str]


#: The replicated-validation contract of ``repro.batch.compiler``.
PARITY_PAIRS: Tuple[ParityPair, ...] = (
    ParityPair(
        "batch/compiler.py", "_validate_node_specs", None,
        "core/node.py", "__post_init__", "NodeConfig",
    ),
    ParityPair(
        "batch/compiler.py", "_validate_prefixes", None,
        "core/bus.py", "_validate_prefixes", "MBusSystem",
    ),
    ParityPair(
        "batch/compiler.py", "_resolve_anchor", "CompiledSystem",
        "core/bus.py", "set_arbitration_anchor", "MBusSystem",
    ),
)

_RUNNER_FILE = "scenario/runner.py"
_CLI_FILE = "__main__.py"

_CAPABILITY_FLAGS = ("supports_trace", "supports_faults", "supports_setup")


def _templates(
    ctx: FileContext, function: str, classname: Optional[str]
) -> Optional[List[str]]:
    node = ctx.find_function(function, classname=classname)
    if node is None:
        return None
    return [template for _, template in raised_messages(node)]


def _literal_parity(
    by_path: Dict[str, FileContext]
) -> Iterator[Finding]:
    for pair in PARITY_PAIRS:
        batch_ctx = by_path.get(pair.batch_file)
        core_ctx = by_path.get(pair.core_file)
        if batch_ctx is None or core_ctx is None:
            continue
        batch = _templates(batch_ctx, pair.batch_function, pair.batch_class)
        core = _templates(core_ctx, pair.core_function, pair.core_class)
        anchor = batch_ctx.find_function(
            pair.batch_function, classname=pair.batch_class
        )
        if batch is None:
            yield batch_ctx.finding(
                "backend-parity",
                batch_ctx.tree,
                f"{pair.batch_file} no longer defines "
                f"{pair.batch_function}; the replicated-validation "
                "contract is unverifiable",
                hint="keep the compiler's validation mirror functions "
                     "named as registered in PARITY_PAIRS",
            )
            continue
        if core is None:
            yield core_ctx.finding(
                "backend-parity",
                core_ctx.tree,
                f"{pair.core_file} no longer defines "
                f"{pair.core_function}; the replicated-validation "
                "contract is unverifiable",
                hint="update PARITY_PAIRS if the construction path "
                     "moved",
            )
            continue
        missing = [t for t in core if t not in batch]
        extra = [t for t in batch if t not in core]
        for template in missing:
            yield batch_ctx.finding(
                "backend-parity",
                anchor,
                f"{pair.batch_function} is missing a core "
                f"construction-path error: {template!r} "
                f"(raised by {pair.core_file}:"
                f"{pair.core_function}); a bad spec would fail with "
                "different messages across backends",
                hint="replicate the core error literal verbatim",
            )
        for template in extra:
            yield batch_ctx.finding(
                "backend-parity",
                anchor,
                f"{pair.batch_function} raises {template!r}, which "
                f"{pair.core_file}:{pair.core_function} never does; "
                "the batch tier would reject specs the event-loop "
                "backends accept (or with different words)",
                hint="match the core construction-path literals "
                     "exactly",
            )


def _backend_table(
    ctx: FileContext,
) -> Optional[Tuple[ast.Assign, List[Dict[str, object]]]]:
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and \
                assigned_name(node) == "BACKEND_TABLE":
            value = node.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.target.id == "BACKEND_TABLE":
            value = node.value
        else:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        entries: List[Dict[str, object]] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Call)
                and call_name(element) == "BackendInfo"
            ):
                continue
            entry: Dict[str, object] = {"_node": element}
            if element.args and isinstance(element.args[0], ast.Constant):
                entry["name"] = element.args[0].value
            for kw in element.keywords:
                if isinstance(kw.value, ast.Constant):
                    entry[kw.arg] = kw.value.value
            entries.append(entry)
        return node, entries
    return None


def _selector_returns(ctx: FileContext) -> List[Tuple[ast.AST, str]]:
    fn = ctx.find_function("select_backend")
    if fn is None:
        return []
    literals: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and \
                        isinstance(sub.value, str):
                    literals.append((node, sub.value))
    return literals


def _registry_findings(ctx: FileContext) -> Iterator[Finding]:
    table = _backend_table(ctx)
    if table is None:
        yield ctx.finding(
            "backend-parity",
            ctx.tree,
            "BACKEND_TABLE literal not found in scenario/runner.py; "
            "the registry consistency checks cannot run",
            hint="keep BACKEND_TABLE a module-level tuple of "
                 "BackendInfo(...) literals",
        )
        return
    node, entries = table
    names = [e.get("name") for e in entries]
    seen = set()
    for entry in entries:
        name = entry.get("name")
        if name in seen:
            yield ctx.finding(
                "backend-parity",
                entry["_node"],
                f"duplicate backend name {name!r} in BACKEND_TABLE",
                hint="backend names key BACKEND_REGISTRY; keep them "
                     "unique",
            )
        seen.add(name)
    selectors = [e for e in entries if e.get("selector")]
    concrete = [e for e in entries if not e.get("selector")]
    if len(selectors) != 1:
        yield ctx.finding(
            "backend-parity",
            node,
            f"BACKEND_TABLE declares {len(selectors)} selector "
            "entries; exactly one ('auto') is expected",
            hint="mark only the auto pseudo-backend selector=True",
        )
    for selector in selectors:
        for flag in _CAPABILITY_FLAGS:
            claimed = bool(selector.get(flag))
            available = any(bool(e.get(flag)) for e in concrete)
            if claimed != available:
                yield ctx.finding(
                    "backend-parity",
                    selector["_node"],
                    f"selector {selector.get('name')!r} claims "
                    f"{flag}={claimed} but the concrete tiers "
                    f"offer {flag}={available}; the auto entry must "
                    "advertise exactly the union of what it can "
                    "resolve to",
                    hint="keep the selector's capability flags the "
                         "OR of the concrete entries",
                )
    concrete_names = {e.get("name") for e in concrete}
    for ret, literal in _selector_returns(ctx):
        if literal not in concrete_names | set(names):
            yield ctx.finding(
                "backend-parity",
                ret,
                f"select_backend can return {literal!r}, which is "
                "not a registered concrete backend",
                hint="selector targets must be BACKEND_TABLE entries",
            )


def _cli_findings(
    cli_ctx: FileContext, runner_ctx: FileContext
) -> Iterator[Finding]:
    table = _backend_table(runner_ctx)
    if table is None:
        return
    _, entries = table
    registered = {e.get("name") for e in entries}
    for node in ast.walk(cli_ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--backends"
        ):
            continue
        for kw in node.keywords:
            if kw.arg != "default":
                continue
            default = string_template(kw.value)
            if default is None:
                continue
            unknown = [
                name.strip() for name in default.split(",")
                if name.strip() and name.strip() not in registered
            ]
            for name in unknown:
                yield cli_ctx.finding(
                    "backend-parity",
                    kw.value,
                    f"CLI --backends default names unregistered "
                    f"backend {name!r}",
                    hint="defaults must be BACKEND_TABLE names",
                )


@lint_pass(
    "backend-parity",
    "batch-compiler error literals mirror the core construction "
    "path; backend registry internally consistent",
    scope="project",
)
def backend_parity(contexts: List[FileContext]) -> Iterator[Finding]:
    by_path = {ctx.relpath: ctx for ctx in contexts}
    yield from _literal_parity(by_path)
    runner_ctx = by_path.get(_RUNNER_FILE)
    if runner_ctx is not None:
        yield from _registry_findings(runner_ctx)
        cli_ctx = by_path.get(_CLI_FILE)
        if cli_ctx is not None:
            yield from _cli_findings(cli_ctx, runner_ctx)
