"""Typing pass: annotated public surfaces, no implicit Optional.

The mypy gate (``mypy.ini``) enforces ``disallow_incomplete_defs``
and ``no_implicit_optional`` on ``repro.core`` / ``repro.scenario``
/ ``repro.campaign`` / ``repro.serve``; this pass checks the same
surface locally so a
missing annotation fails ``python -m repro lint`` even on machines
without mypy installed.  Public = module-level functions and methods
of module-level classes whose names don't start with ``_``
(``__init__`` counts: it is the constructor signature users call).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.framework import FileContext, Finding, lint_pass

#: Packages whose public surfaces must be fully annotated (the same
#: set mypy.ini gates in CI).
TYPED_PACKAGES = ("core/", "scenario/", "campaign/", "serve/")

_SKIP_ARGS = {"self", "cls"}


def _is_typed_file(ctx: FileContext) -> bool:
    return ctx.relpath.startswith(TYPED_PACKAGES)


def _annotation_findings(
    ctx: FileContext, fn: ast.FunctionDef, owner: str
) -> Iterator[Finding]:
    label = f"{owner}.{fn.name}" if owner else fn.name
    args = (
        list(fn.args.posonlyargs)
        + list(fn.args.args)
        + list(fn.args.kwonlyargs)
    )
    missing = [
        arg.arg for arg in args
        if arg.annotation is None and arg.arg not in _SKIP_ARGS
    ]
    if fn.args.vararg is not None and fn.args.vararg.annotation is None:
        missing.append("*" + fn.args.vararg.arg)
    if fn.args.kwarg is not None and fn.args.kwarg.annotation is None:
        missing.append("**" + fn.args.kwarg.arg)
    if missing:
        yield ctx.finding(
            "typing",
            fn,
            f"public {label}() has unannotated parameter(s): "
            f"{', '.join(missing)}",
            hint="annotate the full public signature (mypy "
                 "disallow_incomplete_defs gates this in CI)",
        )
    if fn.returns is None and fn.name != "__init__":
        yield ctx.finding(
            "typing",
            fn,
            f"public {label}() has no return annotation",
            hint="annotate the return type (use None for "
                 "procedures)",
        )


def _optional_aliases(ctx: FileContext) -> set:
    """Module-level type aliases that already admit ``None``
    (``StoreLike = Union[Store, str, None]``)."""
    aliases = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            text = ast.unparse(node.value)
            if "None" in text or "Optional" in text or "Any" in text:
                aliases.add(node.targets[0].id)
    return aliases


def _implicit_optional_findings(
    ctx: FileContext, fn: ast.FunctionDef, optional_aliases: set
) -> Iterator[Finding]:
    args = list(fn.args.posonlyargs) + list(fn.args.args)
    defaults = list(fn.args.defaults)
    # defaults align with the tail of the positional args
    paired = list(zip(args[len(args) - len(defaults):], defaults))
    paired += [
        (arg, default)
        for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults)
        if default is not None
    ]
    for arg, default in paired:
        if not (
            isinstance(default, ast.Constant) and default.value is None
        ):
            continue
        annotation = arg.annotation
        if annotation is None:
            continue
        text = ast.unparse(annotation)
        if "Optional" in text or "None" in text or "Any" in text:
            continue
        if text in optional_aliases:
            continue
        yield ctx.finding(
            "typing",
            arg,
            f"{fn.name}() parameter {arg.arg}: {text} = None is an "
            "implicit Optional; mypy's no_implicit_optional rejects "
            "it",
            hint=f"annotate as Optional[{text}]",
        )


@lint_pass(
    "typing",
    "public surfaces of core/scenario/campaign fully annotated; "
    "no implicit Optional parameters anywhere",
)
def typing_surface(ctx: FileContext) -> Iterator[Finding]:
    optional_aliases = _optional_aliases(ctx)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _implicit_optional_findings(
                ctx, node, optional_aliases
            )
    if not _is_typed_file(ctx):
        return
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield from _annotation_findings(ctx, node, "")
        elif isinstance(node, ast.ClassDef) and \
                not node.name.startswith("_"):
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                public = not item.name.startswith("_") or \
                    item.name == "__init__"
                if public:
                    yield from _annotation_findings(ctx, item, node.name)
