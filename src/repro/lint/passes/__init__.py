"""Built-in lint passes; importing this package registers them all."""

from repro.lint.passes import (  # noqa: F401
    api_hygiene,
    backend_parity,
    determinism,
    schema,
    time_hygiene,
    typing_surface,
)
