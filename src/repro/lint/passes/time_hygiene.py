"""Time-hygiene pass: simulation time stays integer picoseconds.

Every backend agrees on event order because ``(time, seq)`` keys are
exact integers; one float leaking into a ``*_ps`` quantity introduces
rounding that differs across code paths (and numpy vs pure python in
the batch tier), breaking byte-identity between edge/fast/batch.
The sanctioned float->ps quantization point is an explicit ``int(...)``
(idiomatically ``int(round(x * 1e12))``): this pass flags any value
bound to a ``*_ps`` name whose expression contains a float literal or
a true division *outside* an ``int(...)`` wrapper, plus ``float``
annotations on ``*_ps`` parameters and ``/=`` on ``*_ps`` targets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import terminal_name
from repro.lint.framework import FileContext, Finding, lint_pass


def _is_ps_name(name: Optional[str]) -> bool:
    return name is not None and (name == "ps" or name.endswith("_ps"))


def _float_taint(node: ast.AST) -> Optional[ast.AST]:
    """The first float literal or true division in ``node``'s tree
    that is not enclosed in an ``int(...)`` call, else ``None``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "int":
            return None          # explicit quantization point
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node
    for child in ast.iter_child_nodes(node):
        taint = _float_taint(child)
        if taint is not None:
            return taint
    return None


def _describe(taint: ast.AST) -> str:
    if isinstance(taint, ast.BinOp):
        return "a true division (`/`)"
    return f"float literal {taint.value!r}"


@lint_pass(
    "time-hygiene",
    "*_ps quantities must stay integer picoseconds (floats only "
    "under an explicit int(...) quantization)",
)
def time_hygiene(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_ps_name(terminal_name(target)):
                    taint = _float_taint(node.value)
                    if taint is not None:
                        yield ctx.finding(
                            "time-hygiene",
                            node,
                            f"{terminal_name(target)} is assigned "
                            f"{_describe(taint)}; sim time must stay "
                            "integer picoseconds",
                            hint="quantize with int(round(...)) at the "
                                 "seconds->ps boundary",
                        )
                        break
        elif isinstance(node, ast.AnnAssign):
            name = terminal_name(node.target)
            if _is_ps_name(name):
                if (
                    isinstance(node.annotation, ast.Name)
                    and node.annotation.id == "float"
                ):
                    yield ctx.finding(
                        "time-hygiene",
                        node,
                        f"{name} is annotated float; picosecond "
                        "quantities are integers",
                        hint="annotate as int (seconds live in *_s "
                             "names)",
                    )
                elif node.value is not None:
                    taint = _float_taint(node.value)
                    if taint is not None:
                        yield ctx.finding(
                            "time-hygiene",
                            node,
                            f"{name} is assigned {_describe(taint)}; "
                            "sim time must stay integer picoseconds",
                            hint="quantize with int(round(...)) at the "
                                 "seconds->ps boundary",
                        )
        elif isinstance(node, ast.AugAssign):
            name = terminal_name(node.target)
            if _is_ps_name(name):
                if isinstance(node.op, ast.Div):
                    yield ctx.finding(
                        "time-hygiene",
                        node,
                        f"{name} /= ... turns an integer picosecond "
                        "counter into a float",
                        hint="use //= or restructure the computation",
                    )
                else:
                    taint = _float_taint(node.value)
                    if taint is not None:
                        yield ctx.finding(
                            "time-hygiene",
                            node,
                            f"{name} augmented with {_describe(taint)}",
                            hint="keep ps arithmetic integer",
                        )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if _is_ps_name(keyword.arg):
                    taint = _float_taint(keyword.value)
                    if taint is not None:
                        yield ctx.finding(
                            "time-hygiene",
                            keyword.value,
                            f"argument {keyword.arg}= receives "
                            f"{_describe(taint)}; ps arguments are "
                            "integers",
                            hint="quantize with int(round(...)) before "
                                 "the call",
                        )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            ):
                if _is_ps_name(arg.arg) and (
                    isinstance(arg.annotation, ast.Name)
                    and arg.annotation.id == "float"
                ):
                    yield ctx.finding(
                        "time-hygiene",
                        arg,
                        f"parameter {arg.arg} is annotated float; "
                        "picosecond quantities are integers",
                        hint="annotate as int",
                    )
            if _is_ps_name(node.name) or node.name.endswith("_ps"):
                for child in ast.walk(node):
                    if isinstance(child, ast.Return) and \
                            child.value is not None:
                        fn = ctx.enclosing_function(child)
                        if fn is not node:
                            continue
                        taint = _float_taint(child.value)
                        if taint is not None:
                            yield ctx.finding(
                                "time-hygiene",
                                child,
                                f"{node.name}() returns "
                                f"{_describe(taint)}; *_ps functions "
                                "return integer picoseconds",
                                hint="quantize with int(round(...)) "
                                     "before returning",
                            )
