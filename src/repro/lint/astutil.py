"""Small AST helpers shared by the lint passes."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(node.func)


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute target (``x.at_ps``
    -> ``at_ps``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def string_template(node: ast.AST) -> Optional[str]:
    """A comparable template for a string expression.

    Plain strings map to themselves; f-strings map to the literal
    text with every interpolation replaced by ``{}``, so two
    f-strings that differ only in *how* they compute an interpolated
    value still compare equal — the lint contract is about the words
    a user reads, not the expressions behind them.  String
    concatenation with ``+`` concatenates templates.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = string_template(node.left)
        right = string_template(node.right)
        if left is not None and right is not None:
            return left + right
    return None


def raised_messages(
    scope: ast.AST, exception: str = "ConfigurationError"
) -> Iterator[Tuple[ast.Raise, str]]:
    """Yield ``(raise-node, message-template)`` for every
    ``raise <exception>(<string>)`` inside ``scope``."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Raise):
            continue
        exc = node.exc
        if not isinstance(exc, ast.Call):
            continue
        if terminal_name(exc.func) != exception:
            continue
        if not exc.args:
            continue
        template = string_template(exc.args[0])
        if template is not None:
            yield node, template


def dict_literal_keys(node: ast.Dict) -> List[str]:
    """String keys of a dict literal (non-string keys skipped)."""
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys


def assigned_name(node: ast.Assign) -> Optional[str]:
    """The single Name target of an assignment, else ``None``."""
    if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
        return node.targets[0].id
    return None
