"""The lint framework: contexts, registry, suppressions, reporting.

Every runtime guarantee the simulator sells — content-addressed trial
caching, byte-identical cross-backend results, resumable stores —
rests on *source-level* invariants: seeded randomness, integer-ps
time arithmetic, canonical serialisation, mirrored validation
messages.  The fuzzers and equivalence suites check those invariants
dynamically; this package checks them *statically*, at commit time,
before a 1k-node campaign silently produces an uncacheable or
divergent record.

Architecture
------------
* A **pass** is a named analysis registered with :func:`lint_pass`.
  File-scope passes receive one :class:`FileContext` per source file;
  project-scope passes receive the whole list at once (for
  cross-file checks such as error-literal parity).
* A :class:`FileContext` wraps one parsed file: source lines, the
  AST annotated with parent links, qualified-scope lookup, and the
  file's inline suppressions.
* A **finding** is a structured :class:`Finding` with ``file:line``
  anchoring, the offending pass name, a message, and a fix hint.
* **Suppressions** are inline comments of the form::

      x = time.time()  # lint: disable=determinism -- wall-clock banner only

  The justification after ``--`` is *required*: a bare
  ``# lint: disable=NAME`` is itself reported (pass ``suppression``).
  A comment on its own line suppresses the line below it.

:func:`run_lint` drives everything and is what ``python -m repro
lint`` calls; it works on any directory tree laid out like
``src/repro`` (the fixture tests exploit this by linting synthetic
trees).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Files the linter analyses, relative to the lint root.
_PY_GLOB = "**/*.py"

#: The linter does not lint itself for schema/backend rules — its own
#: fixtures deliberately contain violations as string literals.
_EXCLUDED_PARTS = ("lint",)

_DISABLE_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,-]+)"
    r"(?:\s+--\s+(?P<why>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation, anchored to a source location."""

    pass_name: str
    path: str            # path relative to the lint root (posix)
    line: int            # 1-based
    col: int             # 0-based, ast convention
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: " \
               f"[{self.pass_name}] {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# lint: disable=`` comment."""

    line: int                    # the line the comment sits on
    names: Tuple[str, ...]       # pass names it disables
    justification: str           # text after ``--`` (may be empty)
    own_line: bool               # comment line holds nothing else


class FileContext:
    """One parsed source file plus the lookups passes need."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = _parse_suppressions(self.lines)

    # -- navigation --------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def scope(self, node: ast.AST) -> Tuple[str, ...]:
        """Enclosing function/class names, outermost first."""
        names: List[str] = []
        current = self._parents.get(node)
        while current is not None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                names.append(current.name)
            current = self._parents.get(current)
        return tuple(reversed(names))

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    def find_function(
        self, name: str, classname: Optional[str] = None
    ) -> Optional[ast.FunctionDef]:
        """Locate ``def name`` (optionally inside ``class classname``)."""
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != name:
                continue
            if classname is not None:
                parent = self._parents.get(node)
                if not (
                    isinstance(parent, ast.ClassDef)
                    and parent.name == classname
                ):
                    continue
            return node
        return None

    # -- findings ----------------------------------------------------------
    def finding(
        self,
        pass_name: str,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            pass_name=pass_name,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        for supp in self.suppressions:
            if finding.pass_name not in supp.names:
                continue
            if supp.line == finding.line:
                return True
            if supp.own_line and supp.line == finding.line - 1:
                return True
        return False


def _parse_suppressions(lines: List[str]) -> List[Suppression]:
    found: List[Suppression] = []
    for number, text in enumerate(lines, start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        names = tuple(
            name.strip() for name in match.group(1).split(",")
            if name.strip()
        )
        justification = (match.group("why") or "").strip()
        own_line = text[: match.start()].strip() == ""
        found.append(Suppression(
            line=number,
            names=names,
            justification=justification,
            own_line=own_line,
        ))
    return found


# ----------------------------------------------------------------------
# Pass registry.
# ----------------------------------------------------------------------

FilePassFn = Callable[[FileContext], Iterator[Finding]]
ProjectPassFn = Callable[[List[FileContext]], Iterator[Finding]]


@dataclass(frozen=True)
class LintPass:
    """One registered analysis."""

    name: str
    description: str
    scope: str                   # "file" | "project"
    fn: Callable = field(compare=False, repr=False, default=None)

    def run(self, contexts: List[FileContext]) -> Iterator[Finding]:
        if self.scope == "project":
            yield from self.fn(contexts)
        else:
            for ctx in contexts:
                yield from self.fn(ctx)


PASS_REGISTRY: Dict[str, LintPass] = {}


def lint_pass(
    name: str, description: str, scope: str = "file"
) -> Callable[[Callable], Callable]:
    """Register a pass function under ``name``.

    ``scope="file"`` functions take a :class:`FileContext`;
    ``scope="project"`` functions take the full context list.
    """
    if scope not in ("file", "project"):
        raise ValueError(f"scope must be 'file' or 'project', not {scope!r}")

    def decorate(fn: Callable) -> Callable:
        if name in PASS_REGISTRY:
            raise ValueError(f"duplicate lint pass {name!r}")
        PASS_REGISTRY[name] = LintPass(
            name=name, description=description, scope=scope, fn=fn
        )
        return fn

    return decorate


def _load_builtin_passes() -> None:
    # Importing the package registers every built-in pass.
    from repro.lint import passes  # noqa: F401


def available_passes() -> Dict[str, LintPass]:
    _load_builtin_passes()
    return dict(PASS_REGISTRY)


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------

def default_root() -> Path:
    """The installed ``repro`` package directory (what ``python -m
    repro lint`` analyses when no path is given)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _lintable_files(root: Path) -> List[Path]:
    files = []
    for path in sorted(root.glob(_PY_GLOB)):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] in _EXCLUDED_PARTS:
            continue
        files.append(path)
    return files


def _suppression_findings(ctx: FileContext) -> Iterator[Finding]:
    """A disable comment without a justification is itself a finding."""
    for supp in ctx.suppressions:
        if not supp.justification:
            yield Finding(
                pass_name="suppression",
                path=ctx.relpath,
                line=supp.line,
                col=0,
                message=(
                    "lint suppression without a justification: "
                    f"disable={','.join(supp.names)}"
                ),
                hint="append ' -- <why this violation is intentional>'",
            )
        unknown = [
            name for name in supp.names
            if name not in PASS_REGISTRY and name != "suppression"
        ]
        if unknown:
            yield Finding(
                pass_name="suppression",
                path=ctx.relpath,
                line=supp.line,
                col=0,
                message=(
                    f"suppression names unknown pass(es): "
                    f"{', '.join(unknown)}"
                ),
                hint=f"known passes: {', '.join(sorted(PASS_REGISTRY))}",
            )


def run_lint(
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) passes over every Python file under ``root``.

    Returns surviving findings sorted by location; suppressed findings
    are dropped, and malformed suppressions are reported as findings
    of the built-in ``suppression`` pass.
    """
    _load_builtin_passes()
    root = default_root() if root is None else Path(root)
    if select is None:
        selected = list(PASS_REGISTRY.values())
    else:
        names = list(select)
        unknown = [n for n in names if n not in PASS_REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown lint pass(es): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(PASS_REGISTRY))}"
            )
        selected = [PASS_REGISTRY[n] for n in names]

    contexts = [FileContext(root, path) for path in _lintable_files(root)]
    by_path = {ctx.relpath: ctx for ctx in contexts}
    findings: List[Finding] = []
    for lp in selected:
        for finding in lp.run(contexts):
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding):
                continue
            findings.append(finding)
    for ctx in contexts:
        findings.extend(_suppression_findings(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.pass_name))
    return findings


def format_findings(
    findings: List[Finding], fmt: str = "text"
) -> str:
    """Render findings as ``text`` (one line each) or ``json``."""
    if fmt == "json":
        return json.dumps(
            {
                "n_findings": len(findings),
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
            sort_keys=True,
        )
    if not findings:
        return "lint: clean"
    lines = [f.format() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)
