"""The ``python -m repro lint`` entry point.

Exit codes (the CI contract): 0 — no findings; 1 — findings
reported; 2 — usage error (unknown pass, bad path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.framework import (
    available_passes,
    default_root,
    format_findings,
    run_lint,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & invariant linter over the repro "
            "sources"
        ),
        epilog="exit codes: 0 clean, 1 findings reported, 2 usage error",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="package root to lint (default: the installed repro "
             "package)",
    )
    parser.add_argument(
        "--select",
        metavar="PASS[,PASS...]",
        default=None,
        help="run only the named passes (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered passes and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    passes = available_passes()
    if args.list:
        for name in sorted(passes):
            print(f"{name} [{passes[name].scope}]: "
                  f"{passes[name].description}")
        return 0
    select = None
    if args.select is not None:
        select = [
            name.strip() for name in args.select.split(",")
            if name.strip()
        ]
        unknown = [name for name in select if name not in passes]
        if unknown:
            print(
                f"lint: unknown pass(es): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(passes))}",
                file=sys.stderr,
            )
            return 2
    root = default_root() if args.path is None else Path(args.path)
    if not root.is_dir():
        print(f"lint: {root} is not a directory", file=sys.stderr)
        return 2
    findings = run_lint(root=root, select=select)
    print(format_findings(findings, fmt=args.format))
    return 1 if findings else 0
