"""``repro.lint``: AST-based determinism & invariant linter.

Static enforcement of the source-level invariants behind the
simulator's runtime guarantees (content-addressed caching,
cross-backend byte-identity, resumable stores).  See
:mod:`repro.lint.framework` for the architecture and
``python -m repro lint --list`` for the registered passes.
"""

from repro.lint.framework import (
    FileContext,
    Finding,
    LintPass,
    Suppression,
    available_passes,
    default_root,
    format_findings,
    lint_pass,
    run_lint,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintPass",
    "Suppression",
    "available_passes",
    "default_root",
    "format_findings",
    "lint_pass",
    "run_lint",
]
