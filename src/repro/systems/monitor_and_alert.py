"""Monitor and alert: the motion-activated imager (Section 6.3.2).

During ultra-low power motion detection the imager power-gates nearly
all of its logic; on motion, the detector asserts one wire and MBus
wakes the chip.  A full-resolution 160x160x9-bit image is 28.8 kB;
the camera streams it row by row (160 messages of 180 bytes), paying
only 3,021 extra overhead bits (1.31 % of the image) versus a single
message — against I2C's 28,810 bits (12.5 %) whole-image or 30,400
bits (13.2 %) row-by-row.  MBus's message-oriented acknowledgments
cut ACK overhead 90-99 % versus a byte-oriented approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.bus import TransactionResult
from repro.core.constants import OVERHEAD_CYCLES_SHORT
from repro.scenario import Interrupt, NodeSpec, SystemSpec, Workload
from repro.systems.chips import ImagerChip, RadioChip

FULL_IMAGE_BYTES = 28_800
ROW_BYTES = 180
ROWS = 160
ROW_PAYLOAD_WITH_HEADER = ROW_BYTES + 2   # CMD + row index in the stream

CPU_PREFIX = 0x1
IMAGER_PREFIX = 0x2
RADIO_PREFIX = 0x3

#: The implemented clock range (Section 6.3.2).
MIN_CLOCK_HZ = 10_000
MAX_CLOCK_HZ = 6_670_000
DEFAULT_CLOCK_HZ = 400_000


def imager_spec(
    clock_hz: float = DEFAULT_CLOCK_HZ, rx_buffer_bytes: int = 4096
) -> SystemSpec:
    """The Figure 13 topology as a declarative, JSON-able spec."""
    return SystemSpec(
        name="motion-imager",
        clock_hz=clock_hz,
        nodes=(
            NodeSpec("cpu", short_prefix=CPU_PREFIX, is_mediator=True),
            NodeSpec(
                "imager",
                short_prefix=IMAGER_PREFIX,
                power_gated=True,
                rx_buffer_bytes=rx_buffer_bytes,
            ),
            NodeSpec(
                "radio",
                short_prefix=RADIO_PREFIX,
                power_gated=True,
                rx_buffer_bytes=rx_buffer_bytes,
            ),
        ),
    )


def motion_event_workload(at_s: float = 0.0) -> Workload:
    """The always-on motion detector's wake pulse as a workload."""
    return Interrupt(node="imager", at_s=at_s)


@dataclass(frozen=True)
class ImageTransferAnalysis:
    """Overhead arithmetic for one frame (the Section 6.3.2 numbers)."""

    image_bytes: int = FULL_IMAGE_BYTES
    row_bytes: int = ROW_BYTES

    @property
    def image_bits(self) -> int:
        return 8 * self.image_bytes

    @property
    def n_rows(self) -> int:
        return -(-self.image_bytes // self.row_bytes)

    # -- MBus ---------------------------------------------------------------
    @property
    def mbus_single_overhead_bits(self) -> int:
        return OVERHEAD_CYCLES_SHORT

    @property
    def mbus_rows_overhead_bits(self) -> int:
        return self.n_rows * OVERHEAD_CYCLES_SHORT

    @property
    def mbus_extra_bits_for_rows(self) -> int:
        """3,021 bits: the cost of cooperating with other bus users."""
        return self.mbus_rows_overhead_bits - self.mbus_single_overhead_bits

    @property
    def mbus_rows_overhead_fraction(self) -> float:
        """1.31 % of the image."""
        return self.mbus_rows_overhead_bits / self.image_bits

    # -- I2C ------------------------------------------------------------------
    @property
    def i2c_single_overhead_bits(self) -> int:
        """28,810 bits (12.5 %) transmitting the whole image."""
        return 10 + self.image_bytes

    @property
    def i2c_rows_overhead_bits(self) -> int:
        """30,400 bits (13.2 %) row-by-row."""
        return self.n_rows * (10 + self.row_bytes)

    @property
    def i2c_single_overhead_fraction(self) -> float:
        return self.i2c_single_overhead_bits / self.image_bits

    @property
    def i2c_rows_overhead_fraction(self) -> float:
        return self.i2c_rows_overhead_bits / self.image_bits

    # -- acknowledgment overhead -------------------------------------------------
    def ack_overhead_reduction(self, row_by_row: bool = True) -> float:
        """Message-oriented vs byte-oriented ACKs: 90-99 % lower.

        A byte-oriented protocol spends one ACK bit per byte; MBus
        spends one interjection + control sequence (8 cycles) per
        message.
        """
        byte_oriented_bits = self.image_bytes
        per_message = 8  # interjection (5) + control (3) cycles
        n_messages = self.n_rows if row_by_row else 1
        mbus_bits = n_messages * per_message
        return 1.0 - mbus_bits / byte_oriented_bits

    # -- frame timing ------------------------------------------------------------
    def frame_cycles(self, row_by_row: bool = True) -> int:
        if row_by_row:
            return self.n_rows * (OVERHEAD_CYCLES_SHORT + 8 * self.row_bytes)
        return OVERHEAD_CYCLES_SHORT + self.image_bits

    def frame_time_s(self, clock_hz: float, row_by_row: bool = False) -> float:
        """Bit-serial transfer time of one frame."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return self.frame_cycles(row_by_row) / clock_hz

    def frame_rate_fps(self, clock_hz: float, row_by_row: bool = False) -> float:
        return 1.0 / self.frame_time_s(clock_hz, row_by_row)

    def paper_quoted_frame_time_s(self, clock_hz: float) -> float:
        """The paper's 4.2 ms / 2.9 s figures divide 28.8 k *bytes* by
        the clock (a byte-per-cycle rate); reproduced verbatim so the
        discrepancy with the bit-serial time above is explicit (see
        EXPERIMENTS.md)."""
        return self.image_bytes / clock_hz


class ImagerSystem:
    """The Figure 13 stack on the bus simulator.

    The topology comes from :func:`imager_spec` (exposed as
    ``self.spec``), so the same system is reproducible from JSON via
    the scenario API.  ``rows`` can be reduced below 160 to keep
    edge-accurate tests fast; the analysis class always uses
    full-frame arithmetic.
    """

    def __init__(
        self,
        rows: int = ROWS,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        mode: str = "edge",
    ):
        self.spec = imager_spec(clock_hz=clock_hz)
        self.system = self.spec.build(mode=mode)
        self.imager = ImagerChip(
            self.system.node("imager"), radio_prefix=RADIO_PREFIX, rows=rows
        )
        self.radio = RadioChip(self.system.node("radio"))

    def motion_event(self) -> List[TransactionResult]:
        """The always-on motion detector asserts the interrupt wire;
        MBus wakes the imager; the imager streams a frame of rows."""
        before = len(self.system.transactions)
        self.system.interrupt("imager")
        self.system.run_until_idle()
        return self.system.transactions[before:]

    def received_rows(self) -> List[bytes]:
        return self.radio.transmitted
