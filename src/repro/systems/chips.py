"""Behavioural chip models for the microbenchmark systems.

Each chip attaches to an :class:`~repro.core.node.MBusNode` and reacts
to messages on an application functional unit, exactly the way the
paper's systems compose: the processor requests a reading and names
the destination; the sensor replies *directly to the radio* without
waking the processor (Section 6.3.1); the imager's always-on motion
detector asserts the node's interrupt port to wake the chip
(Section 6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.addresses import Address
from repro.core.messages import Message, ReceivedMessage
from repro.core.node import MBusNode

#: Application functional unit used by the behavioural chips.
FU_APP = 4

CMD_SAMPLE_REQUEST = 0x10
CMD_SAMPLE_REPLY = 0x11
CMD_RADIO_TX = 0x20
CMD_FRAME_ROW = 0x30


@dataclass(frozen=True)
class ProcessorSpec:
    """ARM Cortex-M0 cost parameters (Section 6.3.1).

    "Our processor uses ~20 pJ/cycle and requires ~50 cycles to handle
    an interrupt and copy an 8 byte message to be sent again, using
    50 cycles x 20 pJ/cycle = 1 nJ."
    """

    pj_per_cycle: float = 20.0
    relay_handler_cycles: int = 50

    @property
    def relay_energy_nj(self) -> float:
        return self.relay_handler_cycles * self.pj_per_cycle * 1e-3


class TemperatureSensorChip:
    """Ultra-low power temperature sensor (Figure 12).

    A 4-byte sample request names the prefix and FU the 8-byte reply
    should go to, so replies can bypass the processor entirely:
    ``[CMD_SAMPLE_REQUEST, dest_prefix, dest_fu, seq]``.
    """

    def __init__(self, node: MBusNode, base_kelvin_centi: int = 29_815):
        self.node = node
        self.base_kelvin_centi = base_kelvin_centi
        self.samples_taken = 0
        self.requests: List[bytes] = []
        node.layer.register_handler(FU_APP, self._on_request)

    def _on_request(self, message: ReceivedMessage) -> None:
        payload = message.payload
        if len(payload) != 4 or payload[0] != CMD_SAMPLE_REQUEST:
            return
        dest_prefix, dest_fu, seq = payload[1], payload[2], payload[3]
        self.requests.append(bytes(payload))
        reading = self.read_temperature()
        reply = (
            bytes([CMD_SAMPLE_REPLY, seq])
            + reading.to_bytes(4, "big")
            + self.samples_taken.to_bytes(2, "big")
        )
        assert len(reply) == 8, "the paper's response is 8 bytes"
        self.node.post(
            Message(dest=Address.short(dest_prefix, dest_fu), payload=reply)
        )

    def read_temperature(self) -> int:
        """Deterministic synthetic reading in centi-kelvin."""
        self.samples_taken += 1
        # A slow drift plus a small periodic term: reproducible but
        # non-constant, standing in for a real transducer.
        wiggle = (self.samples_taken * 7) % 23 - 11
        return self.base_kelvin_centi + wiggle


class RadioChip:
    """900 MHz near-field radio: accumulates packets handed to it."""

    def __init__(self, node: MBusNode, nj_per_transmitted_byte: float = 10.0):
        self.node = node
        self.nj_per_transmitted_byte = nj_per_transmitted_byte
        self.transmitted: List[bytes] = []
        node.layer.register_handler(FU_APP, self._on_packet)

    def _on_packet(self, message: ReceivedMessage) -> None:
        self.transmitted.append(bytes(message.payload))

    @property
    def transmitted_bytes(self) -> int:
        return sum(len(p) for p in self.transmitted)

    def radio_energy_nj(self) -> float:
        return self.transmitted_bytes * self.nj_per_transmitted_byte


class ImagerChip:
    """160x160-pixel, 9-bit grayscale imager with motion detection.

    Like most CMOS imagers the camera reads pixels out one row at a
    time and sends each row as a separate MBus message (Section
    6.3.2).  Frames are synthetic but deterministic; the motion
    detector compares successive frames' region sums, standing in for
    the paper's always-on analog motion frontend.
    """

    ROWS = 160
    COLS = 160
    BITS_PER_PIXEL = 9

    def __init__(
        self,
        node: MBusNode,
        radio_prefix: int,
        rows: Optional[int] = None,
        motion_threshold: int = 1000,
    ):
        self.node = node
        self.radio_prefix = radio_prefix
        self.rows = rows if rows is not None else self.ROWS
        self.motion_threshold = motion_threshold
        self.frames_captured = 0
        self.rows_sent = 0
        self._previous_sums: Optional[List[int]] = None
        node.on_interrupt = self._on_motion_interrupt

    # -- geometry -----------------------------------------------------------
    @property
    def row_bits(self) -> int:
        return self.COLS * self.BITS_PER_PIXEL      # 1,440 bits

    @property
    def row_bytes(self) -> int:
        return self.row_bits // 8                    # 180 bytes

    @property
    def frame_bytes(self) -> int:
        return self.rows * self.row_bytes            # 28,800 at full size

    # -- synthetic sensor ---------------------------------------------------
    def capture_row(self, row: int) -> bytes:
        """One row, 9-bit pixels packed MSB-first into 180 bytes."""
        self.frames_captured_pixels = True
        bits: List[int] = []
        seed = (self.frames_captured * 7919 + row * 104729) & 0x1FF
        for col in range(self.COLS):
            pixel = (seed + row + 3 * col) % 512     # 9-bit value
            for i in range(self.BITS_PER_PIXEL - 1, -1, -1):
                bits.append((pixel >> i) & 1)
        packed = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i : i + 8]:
                byte = (byte << 1) | bit
            packed.append(byte)
        return bytes(packed)

    def detect_motion(self, frame_region_sums: List[int]) -> bool:
        """Always-on motion frontend: region-sum deltas vs last frame."""
        if self._previous_sums is None:
            self._previous_sums = frame_region_sums
            return False
        delta = sum(
            abs(a - b) for a, b in zip(frame_region_sums, self._previous_sums)
        )
        self._previous_sums = frame_region_sums
        return delta > self.motion_threshold

    # -- event flow ---------------------------------------------------------
    def _on_motion_interrupt(self, node: MBusNode) -> None:
        """Motion woke the chip: capture a frame and stream the rows."""
        self.capture_and_send()

    def capture_and_send(self) -> None:
        self.frames_captured += 1
        for row in range(self.rows):
            payload = bytes([CMD_FRAME_ROW, row]) + self.capture_row(row)
            self.node.post(
                Message(dest=Address.short(self.radio_prefix, FU_APP), payload=payload)
            )
            self.rows_sent += 1
