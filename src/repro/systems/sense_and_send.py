"""Sense and send: the temperature-sensing system (Section 6.3.1).

The processor periodically (every 15 s) requests a temperature
reading with a 4-byte message; the sensor sends its 8-byte response
*directly to the radio node* — MBus's any-to-any communication —
instead of relaying through the processor.  The paper's arithmetic:

* 8-byte message energy: (64 + 19) x (27.45 + 22.71 + 17.55) = 5.6 nJ;
* relaying would send it twice (11.2 nJ) plus ~1 nJ of processor time
  (50 cycles x 20 pJ), so direct delivery saves 6.6 nJ (~7 %) of a
  ~100 nJ sense-and-send event;
* on a 2 uAh x 3.8 V = 27.4 mJ battery at a 15 s interval, that is
  71 more hours of lifetime: ~44.5 -> ~47.5 days;
* bus utilisation is only 0.0022 % at 400 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.addresses import Address
from repro.core.bus import TransactionResult
from repro.core.messages import Message
from repro.scenario import NodeSpec, Periodic, SystemSpec, Workload
from repro.core.transaction import TransactionModel
from repro.power.accounting import EnergyLedger
from repro.power.battery import SECONDS_PER_DAY, TEMPERATURE_SYSTEM_BATTERY, Battery
from repro.power.energy_model import MeasuredEnergyModel
from repro.systems.chips import (
    CMD_SAMPLE_REQUEST,
    FU_APP,
    ProcessorSpec,
    RadioChip,
    TemperatureSensorChip,
)

REQUEST_BYTES = 4
RESPONSE_BYTES = 8
SAMPLE_INTERVAL_S = 15.0
EVENT_ENERGY_NJ = 100.0           # measured whole-event energy (paper)

CPU_PREFIX = 0x1
SENSOR_PREFIX = 0x2
RADIO_PREFIX = 0x3


def sense_and_send_spec(clock_hz: float = 400_000.0) -> SystemSpec:
    """The Figure 12 topology as a declarative, JSON-able spec."""
    return SystemSpec(
        name="sense-and-send",
        clock_hz=clock_hz,
        nodes=(
            NodeSpec("cpu", short_prefix=CPU_PREFIX, is_mediator=True),
            NodeSpec("sensor", short_prefix=SENSOR_PREFIX, power_gated=True),
            NodeSpec("radio", short_prefix=RADIO_PREFIX, power_gated=True),
        ),
    )


def sample_request_workload(
    rounds: int = 1,
    interval_s: float = SAMPLE_INTERVAL_S,
    direct_to_radio: bool = True,
    start_s: float = 0.0,
) -> Workload:
    """The CPU's periodic sample-request stream as a workload.

    Drives the raw request traffic of Section 6.3.1 (the sensor's
    behavioural reply needs a :class:`TemperatureSensorChip` attached
    via the runner's ``setup`` hook or :class:`TemperatureSystem`).
    """
    reply_to = RADIO_PREFIX if direct_to_radio else CPU_PREFIX
    return Periodic(
        source="cpu",
        dest=Address.short(SENSOR_PREFIX, FU_APP),
        payload=bytes([CMD_SAMPLE_REQUEST, reply_to, FU_APP, 0]),
        period_s=interval_s,
        count=rounds,
        start_s=start_s,
    )


@dataclass
class SenseAndSendAnalysis:
    """The paper's closed-form energy/lifetime arithmetic."""

    model: MeasuredEnergyModel = None
    processor: ProcessorSpec = None
    battery: Battery = None
    sample_interval_s: float = SAMPLE_INTERVAL_S
    clock_hz: float = 400_000.0

    def __post_init__(self) -> None:
        self.model = self.model or MeasuredEnergyModel()
        self.processor = self.processor or ProcessorSpec()
        self.battery = self.battery or TEMPERATURE_SYSTEM_BATTERY

    # -- per-message costs ------------------------------------------------
    def request_energy_nj(self) -> float:
        return self.model.message_energy_pj(REQUEST_BYTES, 3) * 1e-3

    def response_energy_nj(self) -> float:
        """The paper's 5.6 nJ 8-byte message."""
        return self.model.message_energy_pj(RESPONSE_BYTES, 3) * 1e-3

    def relay_penalty_nj(self) -> float:
        """Extra cost of routing via the processor: the response is
        sent twice (+5.6 nJ) and the CPU copies it (+1 nJ) = 6.6 nJ."""
        return self.response_energy_nj() + self.processor.relay_energy_nj

    # -- whole events --------------------------------------------------------
    def event_energy_nj(self, direct: bool = True) -> float:
        """~100 nJ measured for a direct event; relay adds 6.6 nJ."""
        if direct:
            return EVENT_ENERGY_NJ
        return EVENT_ENERGY_NJ + self.relay_penalty_nj()

    def event_ledger(self, direct: bool = True) -> EnergyLedger:
        ledger = EnergyLedger()
        ledger.add("bus: request (4 B)", self.request_energy_nj())
        ledger.add("bus: response (8 B)", self.response_energy_nj())
        if not direct:
            ledger.add("bus: relay resend (8 B)", self.response_energy_nj())
            ledger.add("cpu: interrupt + copy", self.processor.relay_energy_nj)
        bus_total = ledger.total_nj
        ledger.add(
            "sense + radio + wakeups (rest of event)",
            self.event_energy_nj(direct=True)
            - self.request_energy_nj()
            - self.response_energy_nj(),
        )
        assert ledger.total_nj >= bus_total
        return ledger

    # -- lifetime (the 71-hour headline) -----------------------------------------
    def average_power_nw(self, direct: bool = True) -> float:
        return self.event_energy_nj(direct) / self.sample_interval_s

    def lifetime_days(self, direct: bool = True) -> float:
        return self.battery.lifetime_days_for_events(
            self.event_energy_nj(direct), self.sample_interval_s
        )

    def lifetime_gain_hours(self) -> float:
        """Direct vs relay: the paper's ~71 hours."""
        delta_days = self.lifetime_days(True) - self.lifetime_days(False)
        return delta_days * 24.0

    # -- utilisation -------------------------------------------------------------
    def bus_utilization(self, direct: bool = True) -> float:
        """0.0022 % at 400 kHz for the direct request/response pair."""
        model = TransactionModel(clock_hz=self.clock_hz)
        messages = [REQUEST_BYTES, RESPONSE_BYTES]
        if not direct:
            messages.append(RESPONSE_BYTES)
        return model.bus_utilization(messages, self.sample_interval_s)

    def utilization_reduction_from_direct(self) -> float:
        """Direct routing cuts bus utilisation by ~40 %."""
        relay = self.bus_utilization(direct=False)
        direct = self.bus_utilization(direct=True)
        return (relay - direct) / relay


class TemperatureSystem:
    """The Figure 12 stack running on the bus simulator.

    The topology comes from :func:`sense_and_send_spec` (exposed as
    ``self.spec``), so the same system is reproducible from JSON via
    the scenario API.  ``mode="fast"`` swaps in the transaction-level
    backend for long-horizon lifetime studies; ``"edge"`` (default)
    simulates every ring transition.
    """

    def __init__(
        self,
        direct_to_radio: bool = True,
        clock_hz: float = 400_000.0,
        mode: str = "edge",
    ):
        self.direct_to_radio = direct_to_radio
        self.spec = sense_and_send_spec(clock_hz=clock_hz)
        self.system = self.spec.build(mode=mode)
        self.sensor = TemperatureSensorChip(self.system.node("sensor"))
        self.radio = RadioChip(self.system.node("radio"))
        self._cpu_received: List[bytes] = []
        self._seq = 0
        if not direct_to_radio:
            # Relay mode: responses come back to the CPU, which copies
            # them out to the radio (costing interrupt + bus time).
            self.system.node("cpu").layer.register_handler(
                FU_APP, self._cpu_relay
            )

    def _cpu_relay(self, message) -> None:
        self._cpu_received.append(bytes(message.payload))
        self.system.node("cpu").post(
            Message(
                dest=Address.short(RADIO_PREFIX, FU_APP),
                payload=bytes(message.payload),
            )
        )

    def run_round(self) -> List[TransactionResult]:
        """One sense-and-send event; returns its bus transactions."""
        before = len(self.system.transactions)
        reply_to = RADIO_PREFIX if self.direct_to_radio else CPU_PREFIX
        request = bytes([CMD_SAMPLE_REQUEST, reply_to, FU_APP, self._seq & 0xFF])
        self._seq += 1
        self.system.send("cpu", Address.short(SENSOR_PREFIX, FU_APP), request)
        self.system.run_until_idle()
        return self.system.transactions[before:]

    def radio_packets(self) -> List[bytes]:
        return self.radio.transmitted
