"""The paper's two microbenchmark systems (Section 6.3).

* :mod:`repro.systems.sense_and_send` — the 2.2 mm^3 temperature
  sensor of Figure 12: an ARM Cortex-M0 processor (with the MBus
  mediator), a temperature sensor, and a 900 MHz near-field radio on
  a 2 uAh battery, sampling every 15 s.
* :mod:`repro.systems.monitor_and_alert` — the motion-activated
  imager of Figure 13: a 160x160-pixel, 9-bit grayscale camera with
  an always-on motion detector, a processor, and a radio on a 5 uAh
  battery.

Both run on either simulation backend end-to-end *and* reproduce the
paper's energy/overhead arithmetic analytically.  Their topologies
are declared as :class:`repro.scenario.SystemSpec` values
(:func:`sense_and_send_spec`, :func:`imager_spec`) so the same
systems are reproducible from JSON through the scenario API.
"""

from repro.systems.chips import (
    ImagerChip,
    ProcessorSpec,
    RadioChip,
    TemperatureSensorChip,
)
from repro.systems.monitor_and_alert import (
    ImageTransferAnalysis,
    ImagerSystem,
    imager_spec,
    motion_event_workload,
)
from repro.systems.sense_and_send import (
    SenseAndSendAnalysis,
    TemperatureSystem,
    sample_request_workload,
    sense_and_send_spec,
)

__all__ = [
    "ImagerChip",
    "ProcessorSpec",
    "RadioChip",
    "TemperatureSensorChip",
    "ImageTransferAnalysis",
    "ImagerSystem",
    "SenseAndSendAnalysis",
    "TemperatureSystem",
    "imager_spec",
    "motion_event_workload",
    "sample_request_workload",
    "sense_and_send_spec",
]
