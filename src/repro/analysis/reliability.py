"""Reliability study: recovery rate vs. glitch rate (robustness figure).

The paper argues MBus's edge semantics and interjection machinery make
the bus robust to electrical adversity (Sections 4.8–4.9, Figure 5):
glitches that resolve between latch edges are invisible, anything
worse is caught by interjection/control recovery, and the bus itself
never locks up.  This module turns that qualitative claim into a
reproducible curve: seeded random single-edge glitches are swept over
a rate grid while a fixed burst workload runs, and each point reports
the fraction of intended deliveries that arrived intact.

Since PR 5 the study is a :class:`repro.campaign.Campaign`
(:func:`recovery_campaign`): points execute through any campaign
executor (``serial`` or ``process``), memoise into a
:class:`~repro.campaign.store.ResultStore` when one is given, and the
figure is a query over the returned
:class:`~repro.campaign.resultset.ResultSet` rather than a loop over
live reports.

Expected shape (asserted by ``benchmarks/test_reliability.py``):

* zero fault rate ⇒ perfect recovery (the clean baseline);
* recovery degrades monotonically-ish (never *improves* materially)
  as the glitch rate grows;
* every corrupted or lost delivery is accounted for by a failed or
  corrupted transaction — faults never silently vanish deliveries;
* the bus keeps completing transactions at every rate (no lock-up).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign import Campaign, Grid
from repro.core.addresses import Address
from repro.faults import FaultSpec, RandomGlitches
from repro.scenario import Burst, NodeSpec, SystemSpec

#: Default glitch-rate grid (events per second of simulated time).
DEFAULT_RATES = (0.0, 1_000.0, 4_000.0, 16_000.0)

#: ResultSet row fields surfaced by :func:`recovery_vs_glitch_rate`,
#: all drawn from the stored reliability document.
_RELIABILITY_FIELDS = (
    "recovery_rate",
    "expected_deliveries",
    "intact_deliveries",
    "corrupted_deliveries",
    "lost_deliveries",
    "failed_transactions",
    "general_errors",
    "interjections",
    "n_transactions",
    "edges_injected",
)


def reliability_spec() -> SystemSpec:
    """The three-chip topology used for the robustness figure."""
    return SystemSpec(
        name="reliability-glitch-sweep",
        clock_hz=400_000.0,
        nodes=(
            NodeSpec("m", short_prefix=0x1, is_mediator=True),
            NodeSpec("a", short_prefix=0x2),
            NodeSpec("b", short_prefix=0x3),
        ),
    )


def reliability_workload(n_messages: int = 8) -> Burst:
    """A saturating burst — the bus is busy for the whole glitch window."""
    return Burst(
        source="m",
        dest=Address.short(0x2, 5),
        payload=bytes(range(8)),
        count=n_messages,
    )


def glitch_faults(
    rate_hz: float,
    seed: int = 7,
    duration_s: float = 0.002,
    edges: int = 1,
) -> FaultSpec:
    """Seeded EMI covering the workload window.

    Single-edge glitches by default: they corrupt whatever latch edge
    they straddle without saturating interjection detectors, so every
    point's cost stays near the clean run's (no watchdog runaways).
    """
    return FaultSpec(
        faults=(
            RandomGlitches(
                seed=seed,
                rate_hz=rate_hz,
                duration_s=duration_s,
                wire="data",
                edges=edges,
            ),
        ),
        name=f"glitches-{rate_hz:g}hz",
    )


def recovery_campaign(
    rates: Iterable[float] = DEFAULT_RATES,
    seed: int = 7,
    n_messages: int = 8,
    spec: Optional[SystemSpec] = None,
    workload=None,
) -> Campaign:
    """The robustness figure as a campaign: one trial per glitch rate."""
    return Campaign(
        spec=spec or reliability_spec(),
        workload=workload or reliability_workload(n_messages),
        grid=Grid.product(glitch_rate_hz=list(rates)),
        faults=lambda params: glitch_faults(params["glitch_rate_hz"], seed),
        backend="auto",
        name="recovery-vs-glitch-rate",
    )


def recovery_vs_glitch_rate(
    rates: Iterable[float] = DEFAULT_RATES,
    seed: int = 7,
    n_messages: int = 8,
    spec: Optional[SystemSpec] = None,
    workload=None,
    executor: str = "serial",
    workers: Optional[int] = None,
    store=None,
) -> List[Dict]:
    """One row per glitch rate: the data behind the robustness figure.

    ``executor`` / ``workers`` / ``store`` pass straight through to
    :meth:`Campaign.run`, so the same figure can run process-parallel
    and be served from an on-disk cache on re-runs.
    """
    results = recovery_campaign(
        rates, seed, n_messages, spec, workload
    ).run(executor=executor, workers=workers, store=store)
    rows = []
    for result in results:
        reliability = result.reliability
        row = {"glitch_rate_hz": result.params["glitch_rate_hz"]}
        row.update(
            (name, reliability[name]) for name in _RELIABILITY_FIELDS
        )
        rows.append(row)
    return rows


def recovery_series(
    rates: Iterable[float] = DEFAULT_RATES, seed: int = 7
) -> Dict[str, List[Tuple[float, float]]]:
    """Chart-ready series for :func:`repro.analysis.ascii_chart`."""
    rows = recovery_vs_glitch_rate(rates, seed)
    return {
        "recovery rate": [
            (row["glitch_rate_hz"], row["recovery_rate"]) for row in rows
        ],
        "error txns / txn": [
            (
                row["glitch_rate_hz"],
                row["failed_transactions"] / max(1, row["n_transactions"]),
            )
            for row in rows
        ],
    }
