"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_check(
    name: str, paper_value: object, measured_value: object, match: bool
) -> str:
    """One paper-vs-measured comparison line for EXPERIMENTS-style logs."""
    status = "OK " if match else "DIFF"
    return (
        f"[{status}] {name:<46s} paper={_cell(paper_value):>12s}  "
        f"ours={_cell(measured_value):>12s}"
    )
