"""ASCII chart rendering: regenerate the paper's figures as text."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Series:
    """One labelled line of (x, y) points."""

    label: str
    points: Tuple[Tuple[float, float], ...]

    @staticmethod
    def of(label: str, points: Sequence[Tuple[float, float]]) -> "Series":
        return Series(label, tuple(points))


_MARKERS = "o*x+#@%&"


def ascii_chart(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render series on a character grid, one marker per series."""
    points = [p for s in series_list for p in s.points]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points if not math.isinf(p[1])]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if log_y:
        y_min = math.log10(max(y_min, 1e-12))
        y_max = math.log10(max(y_max, 1e-12))
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in series.points:
            if math.isinf(y):
                continue
            yv = math.log10(max(y, 1e-12)) if log_y else y
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top = f"{y_max:.3g}" if not log_y else f"1e{y_max:.1f}"
    bottom = f"{y_min:.3g}" if not log_y else f"1e{y_min:.1f}"
    lines.append(f"{y_label} (top={top}, bottom={bottom})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    for index, series in enumerate(series_list):
        lines.append(f"  {_MARKERS[index % len(_MARKERS)]} {series.label}")
    return "\n".join(lines)
