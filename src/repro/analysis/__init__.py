"""Table and figure rendering shared by the benchmark harness.

:mod:`repro.analysis.reliability` (imported lazily by its consumers —
it pulls in the scenario runner) adds the recovery-rate-vs-glitch-rate
robustness study behind ``python -m repro reliability``.
"""

from repro.analysis.figures import ascii_chart, Series
from repro.analysis.tables import format_table, render_check

__all__ = ["ascii_chart", "Series", "format_table", "render_check"]
