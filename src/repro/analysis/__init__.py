"""Table and figure rendering shared by the benchmark harness."""

from repro.analysis.figures import ascii_chart, Series
from repro.analysis.tables import format_table, render_check

__all__ = ["ascii_chart", "Series", "format_table", "render_check"]
