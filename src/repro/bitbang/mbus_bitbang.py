"""Bitbang MBus and I2C ISRs with worst-case path analysis (§6.6).

The MBus C implementation needs only four GPIO pins (two with
edge-triggered interrupts).  Its binding constraint is the time to
drive an output in response to an input edge: the worst-case ISR path.
The models below reconstruct representative MSP430 handlers; the MBus
edge ISR's longest path is 20 instructions / 65 cycles including
interrupt entry and exit, so an 8 MHz MSP430 sustains a 120 kHz MBus
clock.  The Wikipedia I2C bitbang (stub reads/writes compiled to
single-memory-operation MMIO accesses) has a comparable longest path
of 21 instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bitbang.mcu import Msp430Costs, Program, isr_wrap

#: Paper reference values (Section 6.6).
MBUS_WORST_PATH_INSTRUCTIONS = 20
MBUS_WORST_PATH_CYCLES = 65
I2C_WORST_PATH_INSTRUCTIONS = 21
MSP430_CLOCK_HZ = 8_000_000
SUPPORTED_MBUS_CLOCK_HZ = 120_000


def mbus_edge_isr(costs: Msp430Costs = Msp430Costs()) -> Program:
    """The CLK/DATA edge service routine of the MBus bitbang.

    The worst path is a CLK falling edge while transmitting: fetch
    state, shift the TX word, drive DATAOUT, maintain the bit counter.
    """
    # Shorter alternative paths at each fork.
    data_edge = (
        Program("data-edge")
        .add("MOV &state, R14", costs.abs_reg)
        .add("MOV R14, &rx_event", costs.reg_abs)
    )
    not_tx = Program("not-tx").add("JMP exit", costs.jump)
    drive_low = (
        Program("drive-low")
        .add("BIC.B #DOUT, &P1OUT", costs.imm_abs)
        .add("JMP cont", costs.jump)
    )
    drive_high = Program("drive-high").add("BIS.B #DOUT, &P1OUT", costs.imm_abs)
    not_done = Program("not-done").add("JNZ exit2", costs.jump)
    done = (
        Program("done")
        .add("JNZ exit2", costs.jump)
        .add("MOV #ST_DONE, &state", costs.imm_abs)
    )

    clk_tx_path = (
        Program("clk-tx")
        .add("MOV &state, R14", costs.abs_reg)
        .add("CMP #ST_TX, R14", costs.imm_reg)
        .add("JNE exit", costs.jump)
        .add("MOV &txshift, R12", costs.abs_reg)
        .add("RLA R12", costs.reg_reg)
        .add("MOV R12, &txshift", costs.reg_abs)
        .add("JC high", costs.jump)
        .fork(drive_low, drive_high)
        .add("BIT #DIN, R15", costs.imm_reg)     # interjection guard
        .add("DEC &bitcnt", costs.reg_abs)
        .fork(done, not_done)
    )

    body = (
        Program("mbus-edge")
        .add("PUSH R15", costs.push)
        .add("MOV &P1IV, R15", costs.abs_reg)
        .add("BIC.B #CLK, &P1IFG", costs.imm_abs)
        .add("BIT #CLK, R15", costs.imm_reg)
        .add("JZ data_edge", costs.jump)
        .fork(clk_tx_path, data_edge, not_tx)
        .add("POP R15", costs.pop)
    )
    return isr_wrap(costs, body)


def i2c_bitbang_isr(costs: Msp430Costs = Msp430Costs()) -> Program:
    """Wikipedia's I2C master bitbang, worst path (write-bit + clock
    stretch check), with stub functions converted to MMIO accesses."""
    ack_branch = (
        Program("read-ack")
        .add("BIT.B #SDA, &P1IN", costs.abs_reg)
        .add("JC nack", costs.jump)
    )
    no_ack = Program("no-ack").add("JMP cont", costs.jump)
    body = (
        Program("i2c-write-bit")
        .add("PUSH R15", costs.push)
        .add("MOV &byte, R15", costs.abs_reg)
        .add("RLA R15", costs.reg_reg)
        .add("MOV R15, &byte", costs.reg_abs)
        .add("JC sda_high", costs.jump)
        .add("BIC.B #SDA, &P1OUT", costs.imm_abs)   # set_SDA/clear_SDA
        .add("JMP clk", costs.jump)
        .add("CALL #delay", costs.call)             # I2C_delay()
        .add("BIS.B #SCL, &P1OUT", costs.imm_abs)   # set_SCL
        .add("MOV &P1IN, R14", costs.abs_reg)       # read_SCL (stretch)
        .add("BIT #SCL, R14", costs.imm_reg)
        .add("JZ stretch", costs.jump)
        .add("CALL #delay", costs.call)
        .add("BIC.B #SCL, &P1OUT", costs.imm_abs)   # clear_SCL
        .add("DEC &bitcnt", costs.reg_abs)
        .add("MOV &bitcnt, R13", costs.abs_reg)     # loop bookkeeping
        .add("JNZ next", costs.jump)
        .fork(ack_branch, no_ack)
        .add("POP R15", costs.pop)
    )
    return isr_wrap(costs, body)


@dataclass(frozen=True)
class BitbangAnalysis:
    """Worst-case path summary for one bitbanged protocol."""

    name: str
    worst_path_instructions: int
    worst_path_cycles: int
    cpu_clock_hz: float

    @property
    def response_time_us(self) -> float:
        return self.worst_path_cycles / self.cpu_clock_hz * 1e6

    @property
    def max_bus_clock_hz(self) -> float:
        """The bus clock the MCU can keep up with: it must service an
        edge (and drive its response) within one bus clock period."""
        return self.cpu_clock_hz / self.worst_path_cycles

    @property
    def supported_bus_clock_hz(self) -> int:
        """Derated to a 10 kHz grid, as the paper quotes (120 kHz)."""
        return int(self.max_bus_clock_hz // 10_000) * 10_000


def max_bus_clock_hz(
    cpu_clock_hz: float = MSP430_CLOCK_HZ,
    worst_path_cycles: Optional[int] = None,
) -> float:
    cycles = worst_path_cycles or mbus_edge_isr().worst_case_cycles()
    return cpu_clock_hz / cycles


def analyze_mbus_bitbang(
    cpu_clock_hz: float = MSP430_CLOCK_HZ,
) -> BitbangAnalysis:
    isr = mbus_edge_isr()
    return BitbangAnalysis(
        name="MBus bitbang (MSP430)",
        worst_path_instructions=isr.worst_case_instructions(),
        worst_path_cycles=isr.worst_case_cycles(),
        cpu_clock_hz=cpu_clock_hz,
    )


def analyze_i2c_bitbang(
    cpu_clock_hz: float = MSP430_CLOCK_HZ,
) -> BitbangAnalysis:
    isr = i2c_bitbang_isr()
    return BitbangAnalysis(
        name="I2C bitbang (Wikipedia)",
        worst_path_instructions=isr.worst_case_instructions(),
        worst_path_cycles=isr.worst_case_cycles(),
        cpu_clock_hz=cpu_clock_hz,
    )
