"""Bitbanged MBus on a commodity MCU (Section 6.6).

An instruction-level cost model of an MSP430-class microcontroller
executing the edge-service ISR of a GPIO MBus implementation: four
GPIO pins, two with edge-triggered interrupts, worst-case path of
20 instructions / 65 cycles including interrupt entry and exit, which
at an 8 MHz system clock supports up to a 120 kHz MBus clock.  The
Wikipedia I2C bitbang has a comparable longest path (21 instructions).
"""

from repro.bitbang.mcu import Branch, Instr, Msp430Costs, Program
from repro.bitbang.mbus_bitbang import (
    BitbangAnalysis,
    analyze_i2c_bitbang,
    analyze_mbus_bitbang,
    i2c_bitbang_isr,
    max_bus_clock_hz,
    mbus_edge_isr,
)

__all__ = [
    "Branch",
    "Instr",
    "Msp430Costs",
    "Program",
    "BitbangAnalysis",
    "analyze_i2c_bitbang",
    "analyze_mbus_bitbang",
    "i2c_bitbang_isr",
    "max_bus_clock_hz",
    "mbus_edge_isr",
]
