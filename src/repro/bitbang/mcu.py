"""A tiny instruction-cost model of an MSP430-class MCU.

Cycle counts follow the MSP430 CPU's addressing-mode table: register
operations take 1 cycle, absolute/indexed source adds 2, absolute
destination adds 3, jumps always take 2, push/pop and call/return have
fixed costs, and interrupt entry is 6 cycles with RETI at 5.

Programs are sequences of instructions and branches; the analysis
computes the *longest* path (instructions and cycles), which is what
bounds the achievable bus clock for a bitbanged protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union


@dataclass(frozen=True)
class Msp430Costs:
    """Cycle costs for the MSP430 core (MSP430F1xx family)."""

    reg_reg: int = 1          # MOV R4, R5
    imm_reg: int = 2          # MOV #1, R5
    abs_reg: int = 3          # MOV &addr, R5
    reg_abs: int = 4          # MOV R5, &addr
    abs_abs: int = 6          # MOV &a, &b
    imm_abs: int = 5          # BIS.B #pin, &P1OUT
    jump: int = 2             # all jumps, taken or not
    push: int = 3
    pop: int = 2
    call: int = 5
    ret: int = 3
    interrupt_entry: int = 6
    reti: int = 5


@dataclass(frozen=True)
class Instr:
    """One instruction with a fixed cycle cost.

    ``hardware`` marks CPU sequences (interrupt entry) that consume
    cycles but are not instructions in the program text — the paper's
    "65 cycles including interrupt entry and exit" counts their
    cycles but not their opcodes.
    """

    mnemonic: str
    cycles: int
    hardware: bool = False

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"{self.mnemonic}: cycles must be positive")


@dataclass(frozen=True)
class Branch:
    """A control-flow fork: execution takes exactly one alternative."""

    alternatives: Tuple["Program", ...]

    def worst(self) -> Tuple[int, int]:
        """(instructions, cycles) of the costliest alternative."""
        if not self.alternatives:
            return (0, 0)
        return max(
            (p.worst_case_instructions(), p.worst_case_cycles())
            for p in self.alternatives
        )


Element = Union[Instr, Branch]


@dataclass
class Program:
    """A straight-line program with optional branch points."""

    name: str
    elements: List[Element] = field(default_factory=list)

    def add(self, mnemonic: str, cycles: int, hardware: bool = False) -> "Program":
        self.elements.append(Instr(mnemonic, cycles, hardware))
        return self

    def fork(self, *alternatives: "Program") -> "Program":
        self.elements.append(Branch(tuple(alternatives)))
        return self

    # -- analysis ------------------------------------------------------------
    def worst_case_cycles(self) -> int:
        total = 0
        for element in self.elements:
            if isinstance(element, Instr):
                total += element.cycles
            else:
                total += element.worst()[1]
        return total

    def worst_case_instructions(self) -> int:
        total = 0
        for element in self.elements:
            if isinstance(element, Instr):
                if not element.hardware:
                    total += 1
            else:
                total += element.worst()[0]
        return total

    def flatten_worst_path(self) -> List[Instr]:
        """The instruction sequence along the longest path."""
        path: List[Instr] = []
        for element in self.elements:
            if isinstance(element, Instr):
                path.append(element)
            else:
                best = max(
                    element.alternatives,
                    key=lambda p: (p.worst_case_cycles(), p.worst_case_instructions()),
                )
                path.extend(best.flatten_worst_path())
        return path


def isr_wrap(costs: Msp430Costs, body: Program) -> Program:
    """Wrap a body in interrupt entry / RETI.

    Entry and RETI are hardware sequences, booked as cycles on the
    first/last 'instructions' of the handler the way the paper counts
    them ("65 cycles including interrupt entry and exit").
    """
    isr = Program(f"{body.name}+isr")
    isr.add("(interrupt entry)", costs.interrupt_entry, hardware=True)
    isr.elements.extend(body.elements)
    isr.add("RETI", costs.reti)
    return isr
