"""Fast-path backend: transaction-level MBus simulation.

The edge-accurate engine (:mod:`repro.core.bus` with ``mode="edge"``)
schedules a Python event for every transition of every ring segment —
hundreds of events per transaction.  This backend replaces that with a
handful of events per transaction: each bus round is computed in
closed form by :mod:`repro.core.tlm_engine` and realised as

* one *start* event (the mediator's self-start),
* one power on/off event per hierarchical wakeup or auto-sleep, and
* one *finalize* event that performs deliveries, transaction-result
  assembly and re-arming of queued traffic.

The backend drives the same :class:`~repro.sim.scheduler.Simulator`,
:class:`~repro.core.power_domain.PowerDomain` objects and
:class:`~repro.core.bus.TransactionResult` plumbing as the edge
engine, so ``MBusSystem(mode="fast")`` is a drop-in replacement for
workloads that operate at message granularity.  The edge engine
remains the golden reference: waveform tracing, third-party
interjection and other intra-transaction behaviours require
``mode="edge"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core import constants
from repro.core.bus_controller import TxOutcome
from repro.core.mediator import MediatorReport
from repro.core.messages import Message, ReceivedMessage
from repro.core.tlm_engine import (
    NODE_SETTLE_FACTOR,
    NodeRoundState,
    RingTopology,
    RoundContext,
    TLMNode,
    TransactionPlan,
    plan_round,
)
from repro.obs.state import OBS


class FastPathBackend:
    """Transaction-level executor behind ``MBusSystem(mode="fast")``."""

    def __init__(self, system) -> None:
        self.system = system
        self.sim = system.sim
        self.timing = system.timing
        # The planner roots all ring arithmetic (propagation, break
        # points, control resolution) at the mediator.  The system
        # allows the mediator to be added at any insertion index, so
        # rotate the ring to put it at position 0 — a pure relabelling
        # on a ring, preserving adjacency and topological priority.
        nodes = list(system.nodes)
        mediator_index = next(
            i for i, node in enumerate(nodes) if node.config.is_mediator
        )
        self.nodes = nodes[mediator_index:] + nodes[:mediator_index]
        self._positions = {node.name: pos for pos, node in enumerate(self.nodes)}
        descriptors = [
            TLMNode(
                name=node.name,
                position=position,
                short_prefix=node.config.short_prefix,
                full_prefix=node.config.full_prefix,
                broadcast_channels=frozenset(node.config.broadcast_channels),
                rx_buffer_bytes=node.config.rx_buffer_bytes,
                ack_policy=node.config.ack_policy,
                is_mediator=node.config.is_mediator,
                power_gated=node.config.power_gated,
                auto_sleep=bool(node.config.auto_sleep),
                forward_delay_ps=(
                    node.config.node_delay_ps or self.timing.node_delay_ps
                ),
            )
            for position, node in enumerate(self.nodes)
        ]
        self.topology = RingTopology(descriptors, self.timing)
        self.queues: Dict[int, Deque[Message]] = {
            pos: deque() for pos in range(len(self.nodes))
        }
        self.anchor_pos: Optional[int] = None
        self.max_message_bytes = constants.MIN_MAX_MESSAGE_BYTES
        self.active = False
        self._pulsers: set = set()
        self._start_event = None
        self._start_t0: Optional[int] = None
        self._tx_index = 0
        self._wire_activity = {node.name: 0 for node in self.nodes}
        # The settle every node applies between observing a
        # transaction boundary and acting (MBusNode._settle_ps).
        self._settle_ps = NODE_SETTLE_FACTOR * self.timing.node_delay_ps
        for node in self.nodes:
            node.fast_backend = self

    # ------------------------------------------------------------------
    # Node-facing API (delegated from MBusNode).
    # ------------------------------------------------------------------
    def post_message(self, node, message: Message) -> None:
        pos = self._position(node)
        self.queues[pos].append(message)
        if self.active:
            return  # picked up when the in-flight round finalises
        if node.is_fully_awake:
            self._request_start_from(pos, settle=True)
        else:
            self._raise_pulse(pos)

    def trigger_interrupt(self, node) -> None:
        node.pending_interrupt = True
        if self.active:
            return
        self._raise_pulse(self._position(node))

    def node_busy(self, node) -> bool:
        return self.active

    # ------------------------------------------------------------------
    # System-facing API.
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        return (
            not self.active
            and self._start_event is None
            and not any(self.queues.values())
            and not any(n.pending_interrupt for n in self.nodes)
        )

    def wire_activity(self) -> Dict[str, int]:
        return dict(self._wire_activity)

    def set_anchor(self, name: Optional[str]) -> None:
        """Anchor by node name (positions here are mediator-rooted)."""
        self.anchor_pos = None if name is None else self._positions[name]

    # ------------------------------------------------------------------
    # Round triggering.
    # ------------------------------------------------------------------
    def _position(self, node) -> int:
        return self._positions[node.name]

    def _request_start_from(self, pos: int, settle: bool) -> None:
        """An awake node (re)requests the bus from idle at ``sim.now``.

        Mirrors MBusNode._kick: a settle delay, then either the
        mediator's member starts the clock directly or the node pulls
        DATA low and the falling edge travels to the mediator.
        """
        now = self.sim.now
        delay = self._settle_ps if settle else 0
        if pos == 0:
            trigger = now + delay
        else:
            trigger = now + delay + self.topology.member_to_mediator(pos)
        self._schedule_start(trigger + self.timing.mediator_wakeup_ps)

    def _raise_pulse(self, pos: int) -> None:
        """A sleeping (or layer-gated) node raises its interrupt pulse."""
        node = self.nodes[pos]
        node.pending_interrupt = True
        self._pulsers.add(pos)
        trigger = self.sim.now + self.topology.member_to_mediator(pos)
        self._schedule_start(trigger + self.timing.mediator_wakeup_ps)

    def _schedule_start(self, t0: int) -> None:
        if self.active:
            return
        if self._start_event is not None:
            if self._start_t0 <= t0:
                return
            self._start_event.cancel()
        self._start_t0 = t0
        self._start_event = self.sim.schedule_at(t0, self._begin_round)

    # ------------------------------------------------------------------
    # Round execution.
    # ------------------------------------------------------------------
    def _begin_round(self) -> None:
        self._start_event = None
        self._start_t0 = None
        # A node that raised the null pulse cannot arbitrate in its
        # own pulse round: releasing the pulse at the first clock
        # falling edge switches its line controller back to forwarding,
        # wiping any request it had driven (the edge engine therefore
        # runs a General Error round first and the message goes out in
        # the following one).
        requests = {
            pos: queue[0]
            for pos, queue in self.queues.items()
            if queue
            and self.nodes[pos].is_fully_awake
            and pos not in self._pulsers
        }
        states = {
            pos: NodeRoundState(
                bus_on=node.bus_domain.is_on,
                layer_on=node.layer_domain.is_on,
                pending_interrupt=node.pending_interrupt,
                is_pulser=pos in self._pulsers,
            )
            for pos, node in enumerate(self.nodes)
        }
        self._pulsers.clear()
        ctx = RoundContext(
            topology=self.topology,
            t0=self.sim.now,
            requests=requests,
            states=states,
            anchor_pos=self.anchor_pos,
            max_message_bytes=self.max_message_bytes,
        )
        plan = plan_round(ctx)
        self.active = True
        for pos, at_ps in plan.bus_wake_at.items():
            node = self.nodes[pos]
            reason = "interrupt" if states[pos].is_pulser else "transaction"
            self.sim.schedule_at(
                at_ps, _power_on_fn(node.bus_domain, reason)
            )
        for pos, (at_ps, reason) in plan.layer_wake_at.items():
            node = self.nodes[pos]
            self.sim.schedule_at(
                at_ps, _power_on_fn(node.layer_domain, reason)
            )
        self.sim.schedule_at(
            max(plan.node_end_at.values()), lambda: self._finalize(plan)
        )

    def _finalize(self, plan: TransactionPlan) -> None:
        # Stay "busy" through result/delivery callbacks: the edge
        # engine fires on_tx_done/on_rx_done before its FSM returns to
        # IDLE, so e.g. node.sleep() from an on_receive handler raises
        # on both backends.  Interrupt servicing below happens after
        # the engines idle, so the flag drops first there.
        order = sorted(plan.node_end_at, key=plan.node_end_at.get)

        # Transmit outcome first at the transmitter's end-of-round.
        if plan.winner is not None:
            tx_node = self.nodes[plan.winner]
            queue = self.queues[plan.winner]
            if queue and queue[0] is plan.message:
                queue.popleft()
            outcome = TxOutcome(
                message=plan.message,
                control=plan.tx_control,
                success=plan.tx_success,
                bytes_sent=plan.tx_bytes_sent,
            )
            tx_node.results.append(outcome)
            if tx_node.on_result is not None:
                tx_node.on_result(tx_node, outcome)

        # Deliveries, in ring-arrival order (members, then mediator).
        for delivery in plan.rx:
            if not delivery.delivered:
                continue
            node = self.nodes[delivery.position]
            received = ReceivedMessage(
                source_hint="",
                dest=plan.message.dest,
                payload=delivery.payload,
                broadcast=plan.message.dest.is_broadcast,
                control=delivery.control,
                arrived_at_ps=delivery.arrived_at_ps,
            )
            node.inbox.append(received)
            node.layer.deliver(received)
            if node.on_receive is not None:
                node.on_receive(node, received)

        # Interrupt servicing at each node's observed transaction end.
        self.active = False
        for pos in order:
            node = self.nodes[pos]
            if node.pending_interrupt and node.is_fully_awake:
                node.pending_interrupt = False
                if node.on_interrupt is not None:
                    node.on_interrupt(node)

        report = MediatorReport(
            index=self._tx_index,
            start_ps=plan.t0,
            end_ps=plan.end_ps,
            clock_cycles=plan.clock_cycles,
            control_cycles=plan.control_cycles,
            control_bits=tuple(plan.control.value),
            general_error=plan.general_error,
            error_reason=plan.error_reason,
        )
        self._tx_index += 1
        for pos, count in plan.wire_activity.items():
            self._wire_activity[self.nodes[pos].name] += count
        self.system._assemble_result(report)
        if OBS.enabled:
            OBS.metrics.inc("fastpath.rounds")

        request_falls = self._pump_after_round(plan)
        self._schedule_auto_sleeps(plan, request_falls)

    # ------------------------------------------------------------------
    # Post-round housekeeping.
    # ------------------------------------------------------------------
    def _schedule_auto_sleeps(
        self, plan: TransactionPlan, request_falls: Dict[int, int]
    ) -> None:
        settle = self._settle_ps
        for pos, node in enumerate(self.nodes):
            if not (node.config.power_gated and node.config.auto_sleep):
                continue
            if self.queues[pos] or node.pending_interrupt:
                continue
            at_ps = max(self.sim.now, plan.node_end_at[pos] + settle)
            # The edge engine aborts the sleep if another node's bus
            # request (a DATA falling edge) reaches this node before
            # its settle expires — the engine is "busy" again and the
            # node rides straight into the next round without a fresh
            # wakeup.
            fall_emit = {
                p: t for p, t in request_falls.items() if p != pos
            }
            if fall_emit:
                earliest = min(
                    t + self.topology.hop_delay(p, pos)
                    for p, t in fall_emit.items()
                )
                if earliest <= at_ps:
                    continue
            self.sim.schedule_at(at_ps, _auto_sleep_fn(self, pos))

    def _auto_sleep(self, pos: int) -> None:
        node = self.nodes[pos]
        if self.active or self.queues[pos] or node.pending_interrupt:
            return
        if node.layer_domain.is_on:
            node.layer_domain.power_off("auto-sleep")
        if node.bus_domain.is_on:
            node.bus_domain.power_off("auto-sleep")

    def _pump_after_round(self, plan: TransactionPlan) -> Dict[int, int]:
        """Arm the next round from whatever traffic remains queued.

        Mirrors the edge engine's end-of-transaction choreography:
        nodes re-request a settle delay after observing their final
        control edge; the mediator catches a pending request either at
        its return-to-idle scan (two ring delays after the report) or
        on the request's falling edge, whichever is later.

        Returns the DATA falling edges emitted by re-requesting nodes
        (position -> drive time), which auto-sleep suppression needs.
        """
        n = self.topology.n
        settle = self._settle_ps
        return_to_idle = plan.end_ps + 2 * self.timing.ring_delay_ps(n)
        candidates: List[int] = []
        request_falls: Dict[int, int] = {}
        for pos, node in enumerate(self.nodes):
            wants_bus = bool(self.queues[pos]) or node.pending_interrupt
            if not wants_bus:
                continue
            t_end = plan.node_end_at[pos]
            if node.is_fully_awake and self.queues[pos]:
                if pos == 0:
                    # The mediator's member starts the clock directly;
                    # it never pulls DATA low from idle.
                    candidates.append(t_end + settle)
                else:
                    request_falls[pos] = t_end + settle
                    arrival = (
                        t_end + settle
                        + self.topology.member_to_mediator(pos)
                    )
                    candidates.append(max(arrival, return_to_idle))
            else:
                # Not (fully) awake: the node pulses its interrupt line
                # once it observes the end of the round.
                node.pending_interrupt = True
                self._pulsers.add(pos)
                request_falls[pos] = t_end + settle
                arrival = (
                    t_end + settle + self.topology.member_to_mediator(pos)
                )
                candidates.append(max(arrival, return_to_idle))
        if candidates:
            self._schedule_start(
                min(candidates) + self.timing.mediator_wakeup_ps
            )
        return request_falls


def _power_on_fn(domain, reason):
    return lambda: domain.power_on(reason)


def _auto_sleep_fn(backend, pos):
    return lambda: backend._auto_sleep(pos)
