"""Event scheduler: a deterministic, time-ordered callback queue.

Time is kept in integer picoseconds.  Integer time makes the simulation
fully deterministic (no floating-point tie ambiguity) and is fine-
grained enough for the delays MBus cares about (node-to-node
propagation is specified as at most 10 ns).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, List, Optional

from repro.obs.state import OBS

#: Convenience time constants, all in integer picoseconds.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
S = 1_000_000_000_000


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress or is misused."""


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a global
    insertion counter, so two events at the same instant fire in the
    order they were scheduled.  Cancelling an event is O(1): it is
    flagged and skipped when popped, and the owning simulator's live
    pending counter is decremented immediately.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable[[], None], sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing (safe to call twice).

        Cancelling an event that already fired is a no-op for the
        counter: ``sim`` is cleared when the event is consumed.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._pending_count -= 1
                self.sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time}ps seq={self.seq}{state}>"


class Simulator:
    """A discrete-event simulator with integer-picosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5]
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Event] = []
        self._events_processed = 0
        # Live count of queued, non-cancelled events.  Kept in sync by
        # schedule/pop/Event.cancel so pending() is O(1) instead of a
        # full-queue scan.
        self._pending_count = 0

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute time (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, fn, self)
        self._seq += 1
        self._pending_count += 1
        heapq.heappush(self._queue, event)
        return event

    def pending(self) -> int:
        """Number of queued, non-cancelled events (O(1))."""
        return self._pending_count

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            self._pending_count -= 1
            # Consumed: a cancel() arriving from inside the callback
            # (e.g. the mediator cancelling its own clock event while
            # handling it) must not decrement the counter again.
            event.sim = None
            event.fn()
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        max_events: int = 50_000_000,
        wall_deadline: Optional[float] = None,
    ) -> None:
        """Run until the queue drains, or until absolute time ``until``.

        ``max_events`` guards against runaway feedback loops (e.g. a
        combinational ring oscillating); hitting it raises
        :class:`SimulationError` rather than hanging the test suite.

        ``wall_deadline`` is an absolute :func:`time.perf_counter`
        instant; the loop polls it every 256 events and raises
        :class:`~repro.core.errors.WallClockTimeout` once passed.  The
        check is cooperative — a single long-running callback is not
        preempted — which is exactly what campaign executors need: the
        realistic hang is a simulation that keeps making progress, and
        hard preemption belongs to the process executor's worker kill.
        """
        try:
            self._run_loop(until, max_events, wall_deadline)
        finally:
            # One guard check per run() call (not per event): the
            # scheduler's contribution to the metrics plane is the
            # event count it already maintains.
            if OBS.enabled:
                OBS.metrics.inc("sim.run_calls")
                OBS.metrics.set("sim.events_processed",
                                self._events_processed)
                OBS.metrics.set("sim.now_ps", self._now)

    def _run_loop(
        self,
        until: Optional[int],
        max_events: int,
        wall_deadline: Optional[float],
    ) -> None:
        fired = 0
        check_wall = wall_deadline is not None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            self.step()
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely oscillation"
                )
            if check_wall and not fired & 255:
                if time.perf_counter() > wall_deadline:
                    from repro.core.errors import WallClockTimeout

                    raise WallClockTimeout(
                        f"simulation exceeded its wall-clock budget "
                        f"after {fired} events at t={self._now} ps"
                    )
        if until is not None and until > self._now:
            self._now = until

    def advance(self, delay: int) -> None:
        """Run all events in the next ``delay`` picoseconds."""
        self.run(until=self._now + delay)
