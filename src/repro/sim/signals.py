"""Digital nets with propagation delay and edge callbacks.

A :class:`Net` models one electrical node of the MBus ring — e.g. the
segment of the DATA ring between node *i*'s DOUT pad and node *i+1*'s
DIN pad.  A net holds a binary value, notifies listeners on every
transition, and can be *chained* to downstream nets with a fixed
propagation delay (wire + pad + receiver buffer).

Only one agent should logically drive a net at a time; MBus guarantees
this structurally (each ring segment has exactly one upstream driver).
The net itself does not arbitrate — it simply takes the last scheduled
transition, which mirrors how a totem-pole driver overwrites the wire.

Hot-path notes
--------------
``Net.set`` / ``Net._apply`` run once per transition of every segment
of both rings — millions of times in the burst benchmarks — so this
module avoids per-call allocation:

* the listener chain is stored as an immutable tuple (snapshotted on
  registration, not copied per edge);
* deferred applies reuse one bound method instead of allocating a
  closure per ``set()``;
* :class:`EdgeType` is an :class:`enum.IntEnum` whose two members are
  cached at module level, so edge classification is an index into a
  pair instead of an Enum construction, and hot listeners may compare
  with plain ints (``edge == 0`` for falling).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Tuple

from repro.sim.scheduler import Simulator


class EdgeType(enum.IntEnum):
    """Classification of a net transition.

    An ``IntEnum`` so hot-path dispatch can use the integer value
    (``FALLING == 0``, ``RISING == 1`` — i.e. the new net value)
    while identity comparisons (``edge is EdgeType.RISING``) keep
    working for readability elsewhere.
    """

    FALLING = 0
    RISING = 1

    @staticmethod
    def of(old: int, new: int) -> "EdgeType":
        return _RISING if new > old else _FALLING


#: Module-level singletons: hot paths index ``_EDGES[new_value]``
#: instead of calling the Enum machinery.
_FALLING = EdgeType.FALLING
_RISING = EdgeType.RISING
_EDGES = (_FALLING, _RISING)

#: Signature of an edge callback: ``fn(net, edge_type)``.
EdgeCallback = Callable[["Net", EdgeType], None]


class Net:
    """A single binary net with delayed fan-out.

    Parameters
    ----------
    sim:
        Owning simulator (supplies time and the event queue).
    name:
        Hierarchical name, e.g. ``"n2.dout"``; used by tracers.
    initial:
        Idle MBus lines rest high, so the default is 1.
    """

    __slots__ = (
        "sim",
        "name",
        "_value",
        "_listeners",
        "_pending",
        "_pending_value",
        "_apply_pending",
    )

    def __init__(self, sim: Simulator, name: str, initial: int = 1):
        self.sim = sim
        self.name = name
        self._value = initial
        # Immutable snapshot: rebuilt on registration, never copied on
        # the per-edge hot path.  Registration during notification is
        # still safe — an in-flight iteration keeps the old tuple.
        self._listeners: Tuple[EdgeCallback, ...] = ()
        self._pending = None  # type: Optional[object]
        self._pending_value = 0
        # One reusable bound applier instead of a fresh lambda per
        # delayed set().
        self._apply_pending = self._fire_pending

    @property
    def value(self) -> int:
        """Current logic level (0 or 1)."""
        return self._value

    def on_edge(self, fn: EdgeCallback) -> None:
        """Register ``fn`` to be called on every transition.

        The listener chain is flattened into a tuple here, at
        registration time (all registrations happen during system
        ``build()``), so the per-edge dispatch loop iterates a frozen
        snapshot with no defensive copy.
        """
        self._listeners = self._listeners + (fn,)

    def set(self, value: int, delay: int = 0) -> None:
        """Drive the net to ``value`` after ``delay`` picoseconds.

        A later ``set`` supersedes an earlier pending one (the driver
        changed its mind before the wire settled) — this resolves the
        momentary glitches the paper notes occur when nodes switch
        between driving and forwarding.
        """
        value = 1 if value else 0
        pending = self._pending
        if pending is not None:
            pending.cancel()
            self._pending = None
        if delay == 0:
            self._apply(value)
        else:
            self._pending_value = value
            self._pending = self.sim.schedule(delay, self._apply_pending)

    def _fire_pending(self) -> None:
        self._pending = None
        self._apply(self._pending_value)

    def _apply(self, value: int) -> None:
        if value == self._value:
            return
        self._value = value
        edge = _EDGES[value]
        for fn in self._listeners:
            fn(self, edge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Net {self.name}={self._value}>"


def connect(upstream: Net, downstream: Net, delay: int) -> None:
    """Propagate transitions on ``upstream`` to ``downstream``.

    This models a passive wire of fixed delay.  MBus nodes do *not* use
    this for forwarding (forwarding goes through the node's wire
    controller, which may break the chain); it exists for testbench
    plumbing such as probing a ring segment from two observers.
    """

    def _relay(net: Net, _edge: EdgeType) -> None:
        downstream.set(net.value, delay=delay)

    upstream.on_edge(_relay)
