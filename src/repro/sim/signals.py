"""Digital nets with propagation delay and edge callbacks.

A :class:`Net` models one electrical node of the MBus ring — e.g. the
segment of the DATA ring between node *i*'s DOUT pad and node *i+1*'s
DIN pad.  A net holds a binary value, notifies listeners on every
transition, and can be *chained* to downstream nets with a fixed
propagation delay (wire + pad + receiver buffer).

Only one agent should logically drive a net at a time; MBus guarantees
this structurally (each ring segment has exactly one upstream driver).
The net itself does not arbitrate — it simply takes the last scheduled
transition, which mirrors how a totem-pole driver overwrites the wire.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.sim.scheduler import Simulator


class EdgeType(enum.Enum):
    """Classification of a net transition."""

    RISING = "rising"
    FALLING = "falling"

    @staticmethod
    def of(old: int, new: int) -> "EdgeType":
        return EdgeType.RISING if new > old else EdgeType.FALLING


#: Signature of an edge callback: ``fn(net, edge_type)``.
EdgeCallback = Callable[["Net", EdgeType], None]


class Net:
    """A single binary net with delayed fan-out.

    Parameters
    ----------
    sim:
        Owning simulator (supplies time and the event queue).
    name:
        Hierarchical name, e.g. ``"n2.dout"``; used by tracers.
    initial:
        Idle MBus lines rest high, so the default is 1.
    """

    __slots__ = ("sim", "name", "_value", "_listeners", "_pending")

    def __init__(self, sim: Simulator, name: str, initial: int = 1):
        self.sim = sim
        self.name = name
        self._value = initial
        self._listeners: List[EdgeCallback] = []
        self._pending = None  # type: Optional[object]

    @property
    def value(self) -> int:
        """Current logic level (0 or 1)."""
        return self._value

    def on_edge(self, fn: EdgeCallback) -> None:
        """Register ``fn`` to be called on every transition."""
        self._listeners.append(fn)

    def set(self, value: int, delay: int = 0) -> None:
        """Drive the net to ``value`` after ``delay`` picoseconds.

        A later ``set`` supersedes an earlier pending one (the driver
        changed its mind before the wire settled) — this resolves the
        momentary glitches the paper notes occur when nodes switch
        between driving and forwarding.
        """
        value = 1 if value else 0
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if delay == 0:
            self._apply(value)
        else:
            self._pending = self.sim.schedule(delay, lambda: self._apply(value))

    def _apply(self, value: int) -> None:
        self._pending = None
        if value == self._value:
            return
        old = self._value
        self._value = value
        edge = EdgeType.of(old, value)
        for fn in list(self._listeners):
            fn(self, edge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Net {self.name}={self._value}>"


def connect(upstream: Net, downstream: Net, delay: int) -> None:
    """Propagate transitions on ``upstream`` to ``downstream``.

    This models a passive wire of fixed delay.  MBus nodes do *not* use
    this for forwarding (forwarding goes through the node's wire
    controller, which may break the chain); it exists for testbench
    plumbing such as probing a ring segment from two observers.
    """

    def _relay(net: Net, _edge: EdgeType) -> None:
        downstream.set(net.value, delay=delay)

    upstream.on_edge(_relay)
