"""Waveform capture: record every transition of selected nets.

The tracer exists so tests can assert waveform-level properties that
the paper shows graphically (e.g. Figure 5's arbitration hand-off, or
Figure 7's DATA toggles while CLK is held high during interjection),
and so examples can dump human-readable timing diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.signals import EdgeType, Net


@dataclass(frozen=True)
class Transition:
    """One recorded edge on one net."""

    time: int
    net: str
    value: int

    @property
    def edge(self) -> EdgeType:
        return EdgeType.RISING if self.value else EdgeType.FALLING


class Tracer:
    """Records transitions of every watched net, in time order."""

    def __init__(self) -> None:
        self.transitions: List[Transition] = []
        self._initial: Dict[str, int] = {}
        # Per-net index maintained on record, so edges_of() is a dict
        # lookup instead of an O(total transitions) scan per query.
        self._by_net: Dict[str, List[Transition]] = {}

    def watch(self, net: Net) -> None:
        """Start recording ``net`` (also snapshots its current value)."""
        self._initial[net.name] = net.value
        self._by_net.setdefault(net.name, [])
        net.on_edge(self._record)

    def watch_all(self, nets: Sequence[Net]) -> None:
        for net in nets:
            self.watch(net)

    def _record(self, net: Net, _edge: EdgeType) -> None:
        transition = Transition(net.sim.now, net.name, net.value)
        self.transitions.append(transition)
        self._by_net[net.name].append(transition)

    def edges_of(self, name: str) -> List[Transition]:
        """All recorded transitions of one net."""
        return list(self._by_net.get(name, ()))

    def count_edges(
        self, name: str, edge: Optional[EdgeType] = None
    ) -> int:
        """Number of transitions (optionally of one polarity) on a net.

        Equality, not identity: EdgeType is an IntEnum, so callers may
        pass a plain int (0 falling / 1 rising).
        """
        edges = self.edges_of(name)
        if edge is None:
            return len(edges)
        return sum(1 for t in edges if t.edge == edge)

    def value_at(self, name: str, time: int) -> int:
        """Reconstruct the value a net held at ``time``."""
        if name not in self._initial:
            raise KeyError(f"net {name!r} is not being traced")
        value = self._initial[name]
        for t in self.edges_of(name):
            if t.time > time:
                break
            value = t.value
        return value

    def write_vcd(self, path: str, timescale: str = "1ps") -> None:
        """Dump the recorded transitions as a Value Change Dump file.

        The output opens in GTKWave/Surfer, letting users inspect the
        simulated rings the way the paper's figures show them.
        """
        names = sorted(self._initial)
        codes = {name: self._vcd_code(i) for i, name in enumerate(names)}
        with open(path, "w") as f:
            f.write("$date repro MBus simulation $end\n")
            f.write(f"$timescale {timescale} $end\n")
            f.write("$scope module mbus $end\n")
            for name in names:
                safe = name.replace(" ", "_")
                f.write(f"$var wire 1 {codes[name]} {safe} $end\n")
            f.write("$upscope $end\n$enddefinitions $end\n")
            f.write("#0\n$dumpvars\n")
            for name in names:
                f.write(f"{self._initial[name]}{codes[name]}\n")
            f.write("$end\n")
            for t in self.transitions:
                f.write(f"#{t.time}\n{t.value}{codes[t.net]}\n")

    @staticmethod
    def _vcd_code(index: int) -> str:
        """Short printable identifier codes: !, ", #, ... !!, !" ..."""
        alphabet = [chr(c) for c in range(33, 127)]
        code = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, len(alphabet))
            code = alphabet[rem] + code
        return code

    def ascii_waveform(self, names: Sequence[str], step: int) -> str:
        """Render watched nets as a crude ASCII timing diagram.

        ``step`` is the sampling interval in picoseconds.  Used by the
        examples to show arbitration the way Figure 5 does.
        """
        if not self.transitions:
            return "(no transitions recorded)"
        end = self.transitions[-1].time
        lines = []
        width = max(len(n) for n in names)
        for name in names:
            samples = []
            for t in range(0, end + step, step):
                samples.append("#" if self.value_at(name, t) else "_")
            lines.append(f"{name:>{width}} |{''.join(samples)}|")
        return "\n".join(lines)
