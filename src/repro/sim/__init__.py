"""Discrete-event simulation substrate for digital logic.

This package provides the event-driven machinery on which the
edge-accurate MBus model (:mod:`repro.core`) runs:

* :class:`~repro.sim.scheduler.Simulator` — a time-ordered event queue
  with deterministic tie-breaking.
* :class:`~repro.sim.signals.Net` — a single-driver digital net whose
  transitions fire edge callbacks, and which can be chained to other
  nets through propagation delays (modelling bond wires / pad drivers).
* :class:`~repro.sim.tracer.Tracer` — a VCD-style transition recorder
  used by tests and examples to inspect waveforms.
* :mod:`~repro.sim.fastpath` — the transaction-level backend behind
  ``MBusSystem(mode="fast")``: bus rounds planned in closed form by
  :mod:`repro.core.tlm_engine` and realised as a handful of events
  instead of per-edge simulation (see EXPERIMENTS.md).

The substrate (scheduler, signals, tracer) is deliberately tiny and
dependency-free; everything is pure Python so that the protocol logic
stays easy to audit against the paper's waveform figures (Figs. 5-7).
``fastpath`` is the one exception to the layering: it reaches up into
:mod:`repro.core` for message/plan types, so it is imported lazily by
``MBusSystem.build()`` and must never be imported from this package's
top level (that would close an import cycle).
"""

from repro.sim.scheduler import Event, Simulator, SimulationError
from repro.sim.signals import Net, EdgeType
from repro.sim.tracer import Tracer, Transition

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Net",
    "EdgeType",
    "Tracer",
    "Transition",
]
