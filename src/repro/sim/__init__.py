"""Discrete-event simulation substrate for digital logic.

This package provides the event-driven machinery on which the
edge-accurate MBus model (:mod:`repro.core`) runs:

* :class:`~repro.sim.scheduler.Simulator` — a time-ordered event queue
  with deterministic tie-breaking.
* :class:`~repro.sim.signals.Net` — a single-driver digital net whose
  transitions fire edge callbacks, and which can be chained to other
  nets through propagation delays (modelling bond wires / pad drivers).
* :class:`~repro.sim.tracer.Tracer` — a VCD-style transition recorder
  used by tests and examples to inspect waveforms.

The substrate is deliberately tiny and dependency-free; everything is
pure Python so that the protocol logic stays easy to audit against the
paper's waveform figures (Figs. 5-7).
"""

from repro.sim.scheduler import Event, Simulator, SimulationError
from repro.sim.signals import Net, EdgeType
from repro.sim.tracer import Tracer, Transition

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Net",
    "EdgeType",
    "Tracer",
    "Transition",
]
