"""Content-addressed compiled-system cache.

Campaign trials are content-addressed by the SHA-256 of their
canonical documents (``repro.campaign.trial.Trial.key``); the spec
document is one component of that key.  This cache addresses compiled
systems by the same canonical-JSON digest of the spec document, so a
campaign whose trials share a topology compiles it **once** — and,
because the round-template cache lives on the
:class:`~repro.batch.compiler.CompiledSystem` itself, later trials
start with every round shape the earlier ones discovered.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict

from repro.batch.compiler import CompiledSystem
from repro.obs.state import OBS
from repro.scenario.spec import SystemSpec

#: Bounded LRU: big enough for any realistic campaign mix, small
#: enough that abandoned topologies (e.g. a long fuzz run) are evicted.
MAX_ENTRIES = 64

_lock = threading.Lock()
_cache: "OrderedDict[str, CompiledSystem]" = OrderedDict()
_hits = 0
_misses = 0


def spec_digest(spec: SystemSpec) -> str:
    """SHA-256 of the spec's canonical JSON document (the same
    serialisation Trial keys hash)."""
    doc = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def compile_system_cached(spec: SystemSpec) -> CompiledSystem:
    """Compile ``spec``, memoised by content digest."""
    global _hits, _misses
    key = spec_digest(spec)
    with _lock:
        csys = _cache.get(key)
        if csys is not None:
            _cache.move_to_end(key)
            _hits += 1
            if OBS.enabled:
                OBS.metrics.inc("batch.compile_cache_hits")
            return csys
    # Compile outside the lock (validation may raise; never poison it).
    csys = CompiledSystem(spec)
    with _lock:
        _misses += 1
        if OBS.enabled:
            OBS.metrics.inc("batch.compile_cache_misses")
        _cache[key] = csys
        while len(_cache) > MAX_ENTRIES:
            _cache.popitem(last=False)
    return csys


def cache_stats() -> dict:
    with _lock:
        return {
            "entries": len(_cache),
            "hits": _hits,
            "misses": _misses,
            "templates": sum(
                len(csys.template_list) for csys in _cache.values()
            ),
        }


def clear_cache() -> None:
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
