"""Optional numpy acceleration seam for the batch backend.

Every array primitive the batch tier needs lives behind this module's
three functions; each has a pure-Python implementation and a numpy
implementation with *identical* results (integer-for-integer — the
quantizer in particular must reproduce ``int(round(x))`` exactly,
which works because both CPython's ``round`` and ``numpy.rint`` use
round-half-even on doubles).  The active implementation is chosen
once by :func:`configure`:

* ``REPRO_BATCH_NUMPY=1`` forces numpy (ImportError if absent),
* ``REPRO_BATCH_NUMPY=0`` forces pure Python,
* unset: numpy when importable, pure Python otherwise.

Keeping the seam this narrow means equivalence tests can run the same
workload through both implementations and diff the outputs directly
(``tests/unit/test_batch_compiler.py``).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

_np = None            # the numpy module when the numpy backend is active
_backend = "python"   # "python" | "numpy"


def configure(force: Optional[str] = None) -> str:
    """Select the array implementation; returns the active name.

    ``force`` overrides the ``REPRO_BATCH_NUMPY`` environment variable
    (``"numpy"`` / ``"python"`` / ``None`` = re-read the env var).
    """
    global _np, _backend
    choice = force
    if choice is None:
        env = os.environ.get("REPRO_BATCH_NUMPY")
        if env is None:
            choice = "auto"
        else:
            choice = "numpy" if env not in ("0", "false", "no") else "python"
    if choice == "python":
        _np, _backend = None, "python"
        return _backend
    try:
        import numpy
    except ImportError:
        if choice == "numpy":
            raise
        _np, _backend = None, "python"
        return _backend
    _np, _backend = numpy, "numpy"
    return _backend


def backend_name() -> str:
    """The active implementation: ``"python"`` or ``"numpy"``."""
    return _backend


def quantize_times(seconds: Sequence[float], scale: int) -> List[int]:
    """``[int(round(s * scale)) for s in seconds]`` — the schedule
    quantizer, byte-compatible with the event-loop backends."""
    if _np is not None and len(seconds) >= 8:
        arr = _np.rint(_np.asarray(seconds, dtype=_np.float64) * scale)
        return [int(v) for v in arr.astype(_np.int64)]
    return [int(round(s * scale)) for s in seconds]


def prefix_sums(values: Sequence[int]) -> List[int]:
    """Exclusive-then-inclusive running totals: ``out[i] = sum(values[:i+1])``."""
    if _np is not None and len(values) >= 8:
        return [int(v) for v in _np.cumsum(_np.asarray(values, dtype=_np.int64))]
    out, total = [], 0
    for v in values:
        total += v
        out.append(total)
    return out


def weighted_sum_rows(
    rows: Sequence[Sequence[int]], weights: Sequence[int]
) -> List[int]:
    """``sum(w * row for row, w in zip(rows, weights))`` element-wise.

    The wire-activity reducer: each row is one round template's
    per-node toggle counts, each weight is how many times that
    template executed.
    """
    if not rows:
        return []
    if _np is not None and len(rows) * len(rows[0]) >= 64:
        mat = _np.asarray(rows, dtype=_np.int64)
        w = _np.asarray(weights, dtype=_np.int64)
        return [int(v) for v in (mat * w[:, None]).sum(axis=0)]
    width = len(rows[0])
    out = [0] * width
    for row, w in zip(rows, weights):
        for i in range(width):
            out[i] += w * row[i]
    return out


configure()
