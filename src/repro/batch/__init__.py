"""Tier-3 batch backend: compiled fleet-scale campaign execution.

The third simulation tier (after the edge-accurate engine and the
transaction-level fast path): :mod:`repro.batch` compiles a
:class:`~repro.scenario.spec.SystemSpec` plus a workload schedule into
flat integer arrays and executes whole bus-round sequences without a
simulator, nets, or node objects — see :mod:`repro.batch.compiler`
and :mod:`repro.batch.executor`.  Selected via ``backend="batch"`` in
:func:`repro.scenario.run`; equivalence with the fast path (identical
transaction signatures, delivery sets, wake counts) is enforced by the
three-way differential harness in :mod:`repro.diffcheck`.
"""

from repro.batch import accel
from repro.batch.cache import (
    cache_stats,
    clear_cache,
    compile_system_cached,
    spec_digest,
)
from repro.batch.compiler import (
    KIND_INTERRUPT,
    KIND_POST,
    CompiledSystem,
    CompiledWorkload,
    compile_workload,
)
from repro.batch.executor import (
    BatchExecutor,
    BatchResult,
    RoundTemplate,
    materialize,
)

__all__ = [
    "accel",
    "BatchExecutor",
    "BatchResult",
    "CompiledSystem",
    "CompiledWorkload",
    "KIND_INTERRUPT",
    "KIND_POST",
    "RoundTemplate",
    "cache_stats",
    "clear_cache",
    "compile_system_cached",
    "compile_workload",
    "materialize",
    "spec_digest",
]
