"""Batch executor: whole-campaign bus-round replay over flat arrays.

The fast path realises each bus round as simulator events (a start, a
few power-ons, a finalize).  This executor removes the event queue and
the object graph entirely: it merges three integer streams — the
compiled workload arrays, a single pending round-start slot, and a
heap of pending auto-sleeps — in exactly the ``(time, seq)`` order the
:class:`~repro.sim.scheduler.Simulator` would have used, and resolves
each round from a **template**.

A template is one round shape planned *once* at ``t0 = 0`` by the same
analytic :func:`~repro.core.tlm_engine.plan_round` the fast path uses.
Every timestamp the planner produces is ``t0``-linear (a constant
offset from the round start for a fixed topology, request set, power
state and pulser set), so a template keyed by

    (sorted (position, message) requests,
     sorted non-default power/interrupt states,
     sorted pulser positions)

replays at any ``t0`` by pure integer addition.  Campaign bursts
resolve to a handful of templates executed thousands of times, which
is where the tier-3 throughput comes from; the template cache lives on
the :class:`~repro.batch.compiler.CompiledSystem`, so trials sharing a
compiled spec share warm templates.

Equivalence contract (enforced by ``tests/integration`` and the
three-way diffcheck fuzz): byte-identical transaction signatures,
delivery sets and wake counts versus the fast path.  The post-round
choreography below — pulser exclusion, keep-earliest start merging,
return-to-idle pumping, auto-sleep suppression by in-flight request
falls — mirrors :class:`~repro.sim.fastpath.FastPathBackend` line for
line; deviations are bugs, not optimisations.
"""

from __future__ import annotations

import time as _time
from collections import deque
from heapq import heappop, heappush
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.batch import accel
from repro.batch.compiler import (
    KIND_POST,
    CompiledSystem,
    CompiledWorkload,
)
from repro.core.bus import TransactionResult
from repro.core.errors import BusLockedError, WallClockTimeout
from repro.core.messages import ControlCode, ReceivedMessage
from repro.core.tlm_engine import NodeRoundState, RoundContext, plan_round
from repro.obs.state import OBS
from repro.sim.scheduler import SimulationError

#: Same runaway guard as ``Simulator.run(max_events=...)``.
MAX_STEPS = 50_000_000


class RoundTemplate:
    """One planned round shape; every time field is a ``t0`` offset."""

    __slots__ = (
        "tid", "key", "winner", "message", "ok", "control", "general_error",
        "error_reason", "clock_cycles", "control_cycles", "end_off",
        "fin_off", "node_end_off", "end_order", "bus_wake", "layer_wake",
        "rx", "rx_broadcast", "wire_row",
    )

    def __init__(self, tid: int, key: tuple, csys: CompiledSystem, plan) -> None:
        self.tid = tid
        self.key = key
        self.winner = plan.winner
        self.message = plan.message
        self.control = plan.control
        self.ok = (
            plan.control is ControlCode.EOM_ACK and not plan.general_error
        )
        self.general_error = plan.general_error
        self.error_reason = plan.error_reason
        self.clock_cycles = plan.clock_cycles
        self.control_cycles = plan.control_cycles
        self.end_off = plan.end_ps
        self.fin_off = max(plan.node_end_at.values())
        self.node_end_off = tuple(
            plan.node_end_at[q] for q in range(csys.n)
        )
        self.end_order = tuple(
            sorted(plan.node_end_at, key=plan.node_end_at.get)
        )
        self.bus_wake = tuple(plan.bus_wake_at.items())
        self.layer_wake = tuple(
            (pos, at) for pos, (at, _reason) in plan.layer_wake_at.items()
        )
        self.rx = tuple(
            (csys.names[d.position], d.payload, d.control, d.arrived_at_ps)
            for d in plan.rx
            if d.delivered
        )
        self.rx_broadcast = (
            plan.message is not None and plan.message.dest.is_broadcast
        )
        self.wire_row = tuple(
            plan.wire_activity.get(q, 0) for q in range(csys.n)
        )


class BatchResult:
    """Raw executor output, before report materialisation."""

    __slots__ = (
        "round_log", "hit_counts", "end_ps", "steps",
        "bus_on_ps", "layer_on_ps", "bus_wakeups", "layer_wakeups",
    )

    def __init__(self, round_log, hit_counts, end_ps, steps,
                 bus_on_ps, layer_on_ps, bus_wakeups, layer_wakeups):
        self.round_log = round_log            # [(t0, RoundTemplate), ...]
        self.hit_counts = hit_counts          # {tid: executions this run}
        self.end_ps = end_ps
        self.steps = steps
        self.bus_on_ps = bus_on_ps            # per-position totals
        self.layer_on_ps = layer_on_ps
        self.bus_wakeups = bus_wakeups
        self.layer_wakeups = layer_wakeups


class BatchExecutor:
    """Merge-loop executor over one compiled (system, workload) pair."""

    def __init__(self, csys: CompiledSystem, cwl: CompiledWorkload) -> None:
        self.csys = csys
        self.cwl = cwl
        n = csys.n
        self.queues: List[deque] = [deque() for _ in range(n)]
        self.backlog: set = set()
        self.pulsers: set = set()
        self.pending = [False] * n
        self.pending_set: set = set()
        # Power state; non-gated domains come up at t=0 exactly like
        # PowerDomain construction ("not-power-gated" → wake_count 1).
        self.bus_on = [g == 0 for g in csys.power_gated]
        self.layer_on = [g == 0 for g in csys.power_gated]
        self.bus_since = [0] * n
        self.layer_since = [0] * n
        self.bus_total = [0] * n
        self.layer_total = [0] * n
        self.bus_wakes = [0 if g else 1 for g in csys.power_gated]
        self.layer_wakes = [0 if g else 1 for g in csys.power_gated]
        # Positions whose (bus, layer, pending) state differs from the
        # always-on default — the only ones a template key must name.
        self.dirty: set = {p for p in range(n) if csys.power_gated[p]}
        self.gated_auto = tuple(
            p for p in range(n)
            if csys.power_gated[p] and csys.auto_sleep[p]
        )
        # Event sources.  Workload events occupy seqs [0, len) — they
        # were "scheduled" before the run, so at equal timestamps they
        # fire before anything scheduled at runtime, exactly like the
        # event-loop runner.  Runtime seqs count up from len(cwl).
        self.wi = 0
        self.wl_n = len(cwl)
        self.seq = self.wl_n
        self.start_t0: Optional[int] = None
        self.start_seq = 0
        self.sleeps: List[Tuple[int, int, int]] = []
        self.now = 0
        self.steps = 0
        self.until: Optional[int] = None
        self.max_steps = MAX_STEPS
        self.round_log: List[Tuple[int, RoundTemplate]] = []
        self.hit_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Main merge loop.
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        wall_deadline: Optional[float] = None,
        max_steps: int = MAX_STEPS,
    ) -> BatchResult:
        wl_t, wl_pos, wl_kind, wl_ref = (
            self.cwl.t_ps, self.cwl.pos, self.cwl.kind, self.cwl.ref
        )
        self.until = until
        self.max_steps = max_steps
        check_wall = wall_deadline is not None
        sleeps = self.sleeps
        while True:
            if self.wi < self.wl_n:
                best_t, best_seq, src = wl_t[self.wi], self.wi, 1
            else:
                best_t = best_seq = None
                src = 0
            start_t0 = self.start_t0
            if start_t0 is not None and (
                src == 0
                or start_t0 < best_t
                or (start_t0 == best_t and self.start_seq < best_seq)
            ):
                best_t, best_seq, src = start_t0, self.start_seq, 2
            if sleeps:
                sleep_t, sleep_seq, _p = sleeps[0]
                if (
                    src == 0
                    or sleep_t < best_t
                    or (sleep_t == best_t and sleep_seq < best_seq)
                ):
                    best_t, best_seq, src = sleep_t, sleep_seq, 3
            if src == 0:
                break
            if until is not None and best_t > until:
                break
            self.steps += 1
            if self.steps > max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} events; likely oscillation"
                )
            if check_wall and not self.steps & 255:
                if _time.perf_counter() > wall_deadline:
                    raise WallClockTimeout(
                        f"batch execution exceeded its wall-clock budget "
                        f"after {self.steps} steps at t={best_t} ps"
                    )
            self.now = best_t
            if src == 1:
                i = self.wi
                self.wi += 1
                if wl_kind[i] == KIND_POST:
                    self._post(best_t, wl_pos[i], wl_ref[i])
                else:
                    self._interrupt(best_t, wl_pos[i])
            elif src == 2:
                self.start_t0 = None
                self._run_round(best_t)
            else:
                _t, _s, p = heappop(sleeps)
                self._auto_sleep(best_t, p)
        # Simulator.run(until=...) leaves now == until whether the
        # queue drained or stopped at the horizon.
        end_ps = until if until is not None and until > self.now else self.now
        if not self._is_idle():
            raise BusLockedError(
                "bus did not return to idle: traffic still queued "
                "on the batch backend"
            )
        bus_on_ps = list(self.bus_total)
        layer_on_ps = list(self.layer_total)
        for p in range(self.csys.n):
            if self.bus_on[p]:
                bus_on_ps[p] += end_ps - self.bus_since[p]
            if self.layer_on[p]:
                layer_on_ps[p] += end_ps - self.layer_since[p]
        if OBS.enabled:
            OBS.metrics.inc("batch.run_calls")
            OBS.metrics.set("batch.steps", self.steps)
            OBS.metrics.set("batch.rounds", len(self.round_log))
        return BatchResult(
            round_log=self.round_log,
            hit_counts=self.hit_counts,
            end_ps=end_ps,
            steps=self.steps,
            bus_on_ps=bus_on_ps,
            layer_on_ps=layer_on_ps,
            bus_wakeups=list(self.bus_wakes),
            layer_wakeups=list(self.layer_wakes),
        )

    def _is_idle(self) -> bool:
        return (
            self.start_t0 is None
            and not self.backlog
            and not self.pending_set
        )

    # ------------------------------------------------------------------
    # Out-of-round event handlers (post / interrupt / auto-sleep).
    # ------------------------------------------------------------------
    def _refresh(self, p: int) -> None:
        if self.bus_on[p] and self.layer_on[p] and not self.pending[p]:
            self.dirty.discard(p)
        else:
            self.dirty.add(p)

    def _post(self, t: int, p: int, ref: int) -> None:
        self.queues[p].append(ref)
        self.backlog.add(p)
        if self.bus_on[p] and self.layer_on[p]:
            csys = self.csys
            trigger = t + csys.settle_ps + (
                0 if p == 0 else csys.topology.member_to_mediator(p)
            )
            self._schedule_start(trigger + csys.timing.mediator_wakeup_ps)
        else:
            self._raise_pulse(t, p)

    def _interrupt(self, t: int, p: int) -> None:
        self.pending[p] = True
        self.pending_set.add(p)
        self.dirty.add(p)
        self._raise_pulse(t, p)

    def _raise_pulse(self, t: int, p: int) -> None:
        self.pending[p] = True
        self.pending_set.add(p)
        self.dirty.add(p)
        self.pulsers.add(p)
        csys = self.csys
        trigger = t + csys.topology.member_to_mediator(p)
        self._schedule_start(trigger + csys.timing.mediator_wakeup_ps)

    def _schedule_start(self, t0: int) -> None:
        # Keep-earliest merge of the single start slot; a reschedule
        # takes a fresh seq like the cancelled-and-replaced event.
        if self.start_t0 is not None and self.start_t0 <= t0:
            return
        self.start_t0 = t0
        self.seq += 1
        self.start_seq = self.seq

    def _auto_sleep(self, t: int, p: int) -> None:
        if self.queues[p] or self.pending[p]:
            return
        if self.layer_on[p]:
            self.layer_on[p] = False
            self.layer_total[p] += t - self.layer_since[p]
        if self.bus_on[p]:
            self.bus_on[p] = False
            self.bus_total[p] += t - self.bus_since[p]
        self.dirty.add(p)

    # ------------------------------------------------------------------
    # Round execution.
    # ------------------------------------------------------------------
    def _template(self) -> RoundTemplate:
        csys = self.csys
        bus_on, layer_on = self.bus_on, self.layer_on
        pulsers = self.pulsers
        queues = self.queues
        # Requests keyed by the system-interned message id: integer-
        # only keys, stable across every trial sharing this csys.
        req_items = tuple(
            (p, queues[p][0])
            for p in sorted(self.backlog)
            if bus_on[p] and layer_on[p] and p not in pulsers
        )
        dirty = self.dirty
        state_key = tuple(sorted(
            (p, bus_on[p], layer_on[p], self.pending[p])
            for p in dirty
        )) if dirty else ()
        key = (
            req_items,
            state_key,
            tuple(sorted(pulsers)) if pulsers else (),
        )
        tpl = csys.templates.get(key)
        if OBS.enabled:
            OBS.metrics.inc(
                "batch.template_hits" if tpl is not None
                else "batch.template_misses"
            )
        if tpl is None:
            messages = csys.message_table
            states = {
                q: NodeRoundState(
                    bus_on=bus_on[q],
                    layer_on=layer_on[q],
                    pending_interrupt=self.pending[q],
                    is_pulser=q in pulsers,
                )
                for q in range(csys.n)
            }
            plan = plan_round(RoundContext(
                topology=csys.topology,
                t0=0,
                requests={p: messages[r] for p, r in req_items},
                states=states,
                anchor_pos=csys.anchor_pos,
                max_message_bytes=csys.max_message_bytes,
            ))
            tpl = RoundTemplate(len(csys.template_list), key, csys, plan)
            csys.templates[key] = tpl
            csys.template_list.append(tpl)
        return tpl

    def _run_round(self, t0: int) -> None:
        csys = self.csys
        tpl = self._template()
        self.pulsers.clear()
        fin_t = t0 + tpl.fin_off
        # Hierarchical wakeups, applied eagerly: nothing reads power
        # state again until the round has finished.
        for p, off in tpl.bus_wake:
            self.bus_on[p] = True
            self.bus_wakes[p] += 1
            self.bus_since[p] = t0 + off
            self.steps += 1
            self._refresh(p)
        for p, off in tpl.layer_wake:
            self.layer_on[p] = True
            self.layer_wakes[p] += 1
            self.layer_since[p] = t0 + off
            self.steps += 1
            self._refresh(p)
        # Workload arriving while the round is in flight is absorbed
        # passively (post/interrupt on an active fast path only queue).
        wl_t, wl_pos, wl_kind, wl_ref = (
            self.cwl.t_ps, self.cwl.pos, self.cwl.kind, self.cwl.ref
        )
        while self.wi < self.wl_n and wl_t[self.wi] <= fin_t:
            i = self.wi
            self.wi += 1
            self.steps += 1
            p = wl_pos[i]
            if wl_kind[i] == KIND_POST:
                self.queues[p].append(wl_ref[i])
                self.backlog.add(p)
            else:
                self.pending[p] = True
                self.pending_set.add(p)
                self.dirty.add(p)
        # Auto-sleeps that fire inside the round are no-ops there (the
        # backend is busy); they predate this round's finalize, so any
        # heap entry at or before fin_t is spent.
        while self.sleeps and self.sleeps[0][0] <= fin_t:
            heappop(self.sleeps)
            self.steps += 1
        # Finalize.
        self.steps += 1
        queues = self.queues
        backlog = self.backlog
        if tpl.winner is not None:
            queue = queues[tpl.winner]
            queue.popleft()
            if not queue:
                backlog.discard(tpl.winner)
        self.round_log.append((t0, tpl))
        self.hit_counts[tpl.tid] = self.hit_counts.get(tpl.tid, 0) + 1
        bus_on, layer_on = self.bus_on, self.layer_on
        pending, pending_set = self.pending, self.pending_set
        # Interrupt servicing at each node's observed transaction end.
        if pending_set:
            for p in tpl.end_order:
                if pending[p] and bus_on[p] and layer_on[p]:
                    pending[p] = False
                    pending_set.discard(p)
                    self._refresh(p)
        # Re-arm queued traffic (FastPathBackend._pump_after_round,
        # inlined: this runs once per round on the hot path).
        topology = csys.topology
        settle = csys.settle_ps
        return_to_idle = (
            t0 + tpl.end_off + 2 * csys.timing.ring_delay_ps(csys.n)
        )
        candidates: List[int] = []
        request_falls: Dict[int, int] = {}
        node_end_off = tpl.node_end_off
        actors = (
            sorted(backlog) if not pending_set
            else sorted(backlog | pending_set)
        )
        for p in actors:
            t_end = t0 + node_end_off[p]
            if bus_on[p] and layer_on[p] and queues[p]:
                if p == 0:
                    candidates.append(t_end + settle)
                else:
                    request_falls[p] = t_end + settle
                    arrival = (
                        t_end + settle + topology.member_to_mediator(p)
                    )
                    candidates.append(max(arrival, return_to_idle))
            else:
                pending[p] = True
                pending_set.add(p)
                self.dirty.add(p)
                self.pulsers.add(p)
                request_falls[p] = t_end + settle
                arrival = t_end + settle + topology.member_to_mediator(p)
                candidates.append(max(arrival, return_to_idle))
        if candidates:
            self._schedule_start(
                min(candidates) + csys.timing.mediator_wakeup_ps
            )
        # Auto-sleep scheduling (FastPathBackend's per-round sleep
        # timers, inlined).  Another node's request fall reaching a
        # node before its settle expires cancels the sleep (the node
        # rides into the next round without a fresh wakeup).
        hop = topology.hop_delay
        for p in self.gated_auto:
            if queues[p] or pending[p]:
                continue
            at = t0 + node_end_off[p] + settle
            if at < fin_t:
                at = fin_t
            suppressed = False
            for q, tq in request_falls.items():
                if q != p and tq + hop(q, p) <= at:
                    suppressed = True
                    break
            if suppressed:
                continue
            self.seq += 1
            heappush(self.sleeps, (at, self.seq, p))
        self.now = fin_t
        # Steady-state replay: when the round leaves the system in a
        # state that reproduces it — one active requester, no pending
        # pulses, no dirty power state — each following identical-
        # message round is this template shifted by a constant period,
        # so a whole run of them resolves with integer arithmetic
        # instead of re-entering the merge loop per round.  Two shapes
        # qualify: the all-on steady state (fleet campaigns), and the
        # wake/sleep limit cycle (the fig14 burst: one gated receiver
        # wakes for each delivery and auto-sleeps between rounds).
        w = tpl.winner
        start_t0 = self.start_t0
        if (
            w is None
            or start_t0 is None
            or pending_set
            or self.pulsers
            or self.dirty
            or backlog != {w}
        ):
            return
        sleeps = self.sleeps
        queue = queues[w]
        head = queue[0]
        if sleeps:
            # Limit-cycle shape: exactly one gated node sleeps between
            # rounds and is rewoken by each delivery.  The sleep must
            # genuinely fire before the next start (strictly earlier),
            # and the template must wake exactly that node.
            if len(sleeps) != 1:
                return
            t_sl, _sseq, p_s = sleeps[0]
            if (
                p_s == w
                or t_sl >= start_t0
                or len(tpl.bus_wake) != 1
                or len(tpl.layer_wake) != 1
                or tpl.bus_wake[0][0] != p_s
                or tpl.layer_wake[0][0] != p_s
                or tpl.key != (
                    ((w, head),), ((p_s, False, False, False),), ()
                )
            ):
                return
            # sleep + start + two wakes + finalize per cycle.
            steps_per = 5
        else:
            if tpl.bus_wake or tpl.layer_wake:
                return
            if tpl.key != (((w, head),), (), ()):
                return
            p_s = None
            steps_per = 2     # start dispatch + finalize per round
        delta = start_t0 - t0
        if delta <= 0:
            return
        # Bound the window: stay inside the horizon, stop before any
        # round that would absorb a workload event (absorption uses
        # ``<= fin_t``, hence the strict inequality), and always leave
        # one queued message so the closing round runs the full
        # post-round choreography — its pump decides what the steady
        # state suppresses or schedules next.
        k = len(queue) - 1
        if self.until is not None:
            k = min(k, (self.until - t0) // delta)
        if self.wi < self.wl_n:
            te = wl_t[self.wi]
            k = min(k, (te - t0 - tpl.fin_off - 1) // delta)
        if k <= 0:
            return
        run_len = 0
        for r in islice(queue, k):
            if r != head:
                break
            run_len += 1
        k = run_len
        if k <= 0:
            return
        self.steps += steps_per * k
        if self.steps > self.max_steps:
            raise SimulationError(
                f"exceeded {self.max_steps} events; likely oscillation"
            )
        if OBS.enabled:
            OBS.metrics.inc("batch.steady_replays")
            OBS.metrics.inc("batch.steady_rounds", k)
        log_append = self.round_log.append
        s = t0
        for _ in range(k):
            s += delta
            log_append((s, tpl))
            queue.popleft()
        self.hit_counts[tpl.tid] += k
        self.seq += 1
        self.start_t0 = s + delta
        self.start_seq = self.seq
        if p_s is not None:
            # Each cycle the sleeper is on from its wake offset until
            # the sleep instant — a constant span — and both domains
            # wake exactly once.  Leave the node powered with a fresh
            # pending sleep, exactly as round k's pump would have.
            off_b = tpl.bus_wake[0][1]
            off_l = tpl.layer_wake[0][1]
            d_sleep = t_sl - t0
            self.bus_total[p_s] += k * (d_sleep - off_b)
            self.layer_total[p_s] += k * (d_sleep - off_l)
            self.bus_wakes[p_s] += k
            self.layer_wakes[p_s] += k
            self.bus_since[p_s] = s + off_b
            self.layer_since[p_s] = s + off_l
            self.seq += 1
            sleeps[0] = (s + d_sleep, self.seq, p_s)
        self.now = s + tpl.fin_off


# ----------------------------------------------------------------------
# Report materialisation.
# ----------------------------------------------------------------------
def materialize(csys: CompiledSystem, result: BatchResult):
    """Expand a round log into the event-loop backends' report shape:
    (transactions, power report, wire activity)."""
    names = csys.names
    transactions: List[TransactionResult] = []
    append = transactions.append
    for index, (t0, tpl) in enumerate(result.round_log):
        rx_deliveries = []
        if tpl.message is not None and tpl.rx:
            dest = tpl.message.dest
            broadcast = tpl.rx_broadcast
            rx_deliveries = [
                (
                    name,
                    ReceivedMessage(
                        source_hint="",
                        dest=dest,
                        payload=payload,
                        broadcast=broadcast,
                        control=control,
                        arrived_at_ps=t0 + arr_off,
                    ),
                )
                for name, payload, control, arr_off in tpl.rx
            ]
        append(TransactionResult(
            index=index,
            ok=tpl.ok,
            control=tpl.control,
            tx_node=None if tpl.winner is None else names[tpl.winner],
            message=tpl.message,
            rx_deliveries=rx_deliveries,
            clock_cycles=tpl.clock_cycles,
            control_cycles=tpl.control_cycles,
            start_ps=t0,
            end_ps=t0 + tpl.end_off,
            general_error=tpl.general_error,
            error_reason=tpl.error_reason,
        ))
    power = {}
    for name in csys.spec_order_names:
        p = csys.position_of[name]
        power[name] = {
            "bus_on_s": result.bus_on_ps[p] / 1e12,
            "layer_on_s": result.layer_on_ps[p] / 1e12,
            "bus_wakeups": result.bus_wakeups[p],
            "layer_wakeups": result.layer_wakeups[p],
        }
    tids = sorted(result.hit_counts)
    if tids:
        totals = accel.weighted_sum_rows(
            [csys.template_list[tid].wire_row for tid in tids],
            [result.hit_counts[tid] for tid in tids],
        )
    else:
        totals = [0] * csys.n
    wire = {names[p]: totals[p] for p in range(csys.n)}
    return transactions, power, wire
