"""Tier-3 compiler: lower a spec + schedule into flat arrays.

The batch backend never instantiates :class:`~repro.sim.scheduler.Simulator`,
:class:`~repro.sim.signals.Net`, :class:`~repro.core.node.MBusNode` or
either engine.  Instead this module lowers

* a :class:`~repro.scenario.spec.SystemSpec` into a
  :class:`CompiledSystem` — a node table of parallel integer tuples
  (positions, prefixes, buffer sizes, gating flags, per-hop delays)
  rooted at the mediator exactly like the fast path, plus the derived
  :class:`~repro.core.tlm_engine.RingTopology` the analytic round
  planner needs; and
* a compiled workload schedule into a :class:`CompiledWorkload` —
  sorted parallel ``(t_ps, position, kind, payload-ref)`` arrays with
  every distinct :class:`~repro.core.messages.Message` interned once.

All spec-level validation that the event-loop backends perform at
``MBusSystem`` construction time (duplicate/reserved short prefixes,
the 14-node short-address budget, power-gated arbitration anchors,
unknown node names) is replicated here with the *same*
:class:`~repro.core.errors.ConfigurationError` messages, so the
differential harness's error-symmetry check holds across all three
tiers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch import accel
from repro.core import constants
from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.tlm_engine import NODE_SETTLE_FACTOR, RingTopology, TLMNode
from repro.scenario.spec import NodeSpec, SystemSpec
from repro.scenario.workload import InterruptEvent, PostEvent, ScheduleEvent

PS_PER_S = 1_000_000_000_000

#: Workload event kinds in the compiled ``kind`` array.
KIND_POST = 0
KIND_INTERRUPT = 1


class CompiledSystem:
    """A spec lowered to flat per-position arrays (mediator at 0).

    Everything the executor touches per event is an integer indexed by
    ring position; the only object-valued companions are the interned
    node names (for report assembly) and the planner-facing
    :class:`RingTopology`.  Instances also carry the mutable round
    ``templates`` cache, so a spec compiled once per campaign shares
    warm templates across every trial that uses it.
    """

    __slots__ = (
        "spec", "timing", "n",
        # node table — parallel tuples of ints, one entry per position
        "positions", "short_prefixes", "full_prefixes", "rx_buffer_bytes",
        "power_gated", "auto_sleep", "forward_delay_ps",
        "broadcast_channels",
        # derived
        "names", "spec_order_names", "position_of", "topology",
        "anchor_pos", "max_message_bytes", "settle_ps",
        # mutable caches shared by every workload compiled against
        # this system: round templates (see executor) and the global
        # message intern table (workload ``ref`` values index it, so
        # template keys are pure-integer and stable across trials)
        "templates", "template_list", "message_ids", "message_table",
    )

    def __init__(self, spec: SystemSpec) -> None:
        spec.validate()
        self.spec = spec
        self.timing = spec.timing()
        nodes = list(spec.nodes)
        _validate_node_specs(nodes)
        _validate_prefixes(nodes)
        mediator_index = next(
            i for i, node in enumerate(nodes) if node.is_mediator
        )
        # Mediator-rooted rotation: same relabelling as the fast path.
        ring = nodes[mediator_index:] + nodes[:mediator_index]
        self.n = len(ring)
        self.positions = tuple(range(self.n))
        self.short_prefixes = tuple(
            -1 if node.short_prefix is None else node.short_prefix
            for node in ring
        )
        self.full_prefixes = tuple(
            -1 if node.full_prefix is None else node.full_prefix
            for node in ring
        )
        self.rx_buffer_bytes = tuple(node.rx_buffer_bytes for node in ring)
        self.power_gated = tuple(int(node.power_gated) for node in ring)
        self.auto_sleep = tuple(
            int(node.power_gated if node.auto_sleep is None
                else node.auto_sleep)
            for node in ring
        )
        self.forward_delay_ps = tuple(
            node.node_delay_ps or self.timing.node_delay_ps for node in ring
        )
        self.broadcast_channels = tuple(
            tuple(sorted(node.broadcast_channels)) for node in ring
        )
        self.names = tuple(node.name for node in ring)
        self.spec_order_names = tuple(node.name for node in nodes)
        self.position_of = {name: pos for pos, name in enumerate(self.names)}
        descriptors = [
            TLMNode(
                name=self.names[pos],
                position=pos,
                short_prefix=(
                    None if self.short_prefixes[pos] < 0
                    else self.short_prefixes[pos]
                ),
                full_prefix=(
                    None if self.full_prefixes[pos] < 0
                    else self.full_prefixes[pos]
                ),
                broadcast_channels=frozenset(self.broadcast_channels[pos]),
                rx_buffer_bytes=self.rx_buffer_bytes[pos],
                ack_policy=None,
                is_mediator=pos == 0,
                power_gated=bool(self.power_gated[pos]),
                auto_sleep=bool(self.auto_sleep[pos]),
                forward_delay_ps=self.forward_delay_ps[pos],
            )
            for pos in range(self.n)
        ]
        self.topology = RingTopology(descriptors, self.timing)
        self.anchor_pos = self._resolve_anchor(spec, ring)
        self.max_message_bytes = (
            constants.MIN_MAX_MESSAGE_BYTES
            if spec.max_message_bytes is None
            else constants.clamp_max_message_bytes(spec.max_message_bytes)
        )
        self.settle_ps = NODE_SETTLE_FACTOR * self.timing.node_delay_ps
        self.templates: Dict[tuple, object] = {}
        self.template_list: List[object] = []
        self.message_ids: Dict[Message, int] = {}
        self.message_table: List[Message] = []

    def _resolve_anchor(
        self, spec: SystemSpec, ring: List[NodeSpec]
    ) -> Optional[int]:
        name = spec.arbitration_anchor
        if name is None:
            return None
        anchor = spec.node(name)
        if anchor.power_gated:
            raise ConfigurationError(
                "the arbitration anchor holds always-on wire-"
                "controller state; it cannot be power-gated"
            )
        if anchor.is_mediator:
            return None   # anchoring at the mediator is the default
        return next(i for i, node in enumerate(ring) if node.name == name)


def _validate_node_specs(nodes: Sequence[NodeSpec]) -> None:
    """The NodeConfig constructor checks, replicated verbatim."""
    for node in nodes:
        if node.short_prefix is None and node.full_prefix is None:
            if not node.is_mediator:
                raise ConfigurationError(
                    f"node {node.name!r} needs a short or full prefix"
                )
        if node.is_mediator and node.power_gated:
            raise ConfigurationError(
                "the mediator's frontend must be able to self-start; "
                "model it as a non-power-gated node"
            )


def _validate_prefixes(nodes: Sequence[NodeSpec]) -> None:
    """``MBusSystem._validate_prefixes``, replicated verbatim."""
    seen_short: Dict[int, str] = {}
    short_count = 0
    for node in nodes:
        prefix = node.short_prefix
        if prefix is None:
            continue
        short_count += 1
        if prefix in seen_short:
            raise ConfigurationError(
                f"short prefix {prefix:#x} used by both "
                f"{seen_short[prefix]!r} and {node.name!r}; run "
                "enumeration to disambiguate duplicate chips (4.7)"
            )
        if prefix in (
            constants.BROADCAST_PREFIX_VALUE,
            constants.FULL_ADDR_MARKER_VALUE,
        ):
            raise ConfigurationError(
                f"short prefix {prefix:#x} is reserved"
            )
        seen_short[prefix] = node.name
    if short_count > constants.MAX_SHORT_ADDRESSED_NODES:
        raise ConfigurationError(
            "at most 14 short-addressed nodes per system (4.7)"
        )


class CompiledWorkload:
    """A compiled schedule as sorted parallel ``(t, node, kind, ref)``
    arrays with an interned message table.

    ``t_ps[i]`` is the quantized post/interrupt instant (the same
    ``int(round(at_s * 1e12))`` the event-loop runner applies),
    ``pos[i]`` the mediator-rooted ring position, ``kind[i]`` one of
    :data:`KIND_POST` / :data:`KIND_INTERRUPT`, and ``ref[i]`` an
    index into ``messages`` (``-1`` for interrupts).  Messages are
    interned on the *compiled system* (``messages`` is a snapshot of
    its table), so equal messages share one integer id across every
    workload compiled against the same system — which keeps the
    executor's template keys integer-only and valid across campaign
    trials.  Index order *is* scheduler order: the runner schedules
    all workload events before the simulation starts, so their
    insertion sequence — and therefore their priority at equal
    timestamps — is exactly this array order.
    """

    __slots__ = ("t_ps", "pos", "kind", "ref", "messages")

    def __init__(
        self,
        t_ps: Sequence[int],
        pos: Sequence[int],
        kind: Sequence[int],
        ref: Sequence[int],
        messages: Tuple[Message, ...],
    ) -> None:
        self.t_ps = tuple(t_ps)
        self.pos = tuple(pos)
        self.kind = tuple(kind)
        self.ref = tuple(ref)
        self.messages = messages

    def __len__(self) -> int:
        return len(self.t_ps)


def compile_workload(
    schedule: Sequence[ScheduleEvent], csys: CompiledSystem
) -> CompiledWorkload:
    """Lower a compiled schedule against ``csys``'s node table."""
    position_of = csys.position_of
    t_s: List[float] = []
    pos: List[int] = []
    kind: List[int] = []
    ref: List[int] = []
    interned = csys.message_ids
    messages = csys.message_table
    for event in schedule:
        if isinstance(event, PostEvent):
            source = event.source
            kind.append(KIND_POST)
            message = Message(
                dest=event.dest,
                payload=event.payload,
                priority=event.priority,
            )
            index = interned.get(message)
            if index is None:
                index = len(messages)
                interned[message] = index
                messages.append(message)
            ref.append(index)
        elif isinstance(event, InterruptEvent):
            source = event.node
            kind.append(KIND_INTERRUPT)
            ref.append(-1)
        else:
            raise ConfigurationError(
                f"workload items must be schedule events, got {event!r}"
            )
        position = position_of.get(source)
        if position is None:
            raise ConfigurationError(f"no node named {source!r}")
        pos.append(position)
        t_s.append(event.at_s)
    return CompiledWorkload(
        t_ps=accel.quantize_times(t_s, PS_PER_S),
        pos=pos,
        kind=kind,
        ref=ref,
        messages=tuple(messages),
    )
