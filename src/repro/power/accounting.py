"""Energy ledger: named energy contributions for a scenario.

Used by the microbenchmark systems (Section 6.3) to break a
"sense and send" event into its parts — bus transfers, processor
cycles, sensing, radio — the way the paper's arithmetic does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple


class EnergyLedger:
    """An ordered map of contribution name -> energy in nanojoules."""

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, float]" = OrderedDict()

    def add(self, name: str, energy_nj: float) -> None:
        """Accumulate ``energy_nj`` under ``name``."""
        if energy_nj < 0:
            raise ValueError("energy contributions must be non-negative")
        self._entries[name] = self._entries.get(name, 0.0) + energy_nj

    def __getitem__(self, name: str) -> float:
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self._entries.items())

    @property
    def total_nj(self) -> float:
        return sum(self._entries.values())

    @property
    def total_uj(self) -> float:
        return self.total_nj * 1e-3

    def fraction(self, name: str) -> float:
        """Share of the total contributed by one entry."""
        total = self.total_nj
        if total == 0:
            return 0.0
        return self._entries.get(name, 0.0) / total

    def as_dict(self) -> Dict[str, float]:
        return dict(self._entries)

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Return a new ledger combining both sets of entries."""
        merged = EnergyLedger()
        for name, value in self:
            merged.add(name, value)
        for name, value in other:
            merged.add(name, value)
        return merged

    def summary(self) -> str:
        """Human-readable breakdown, largest contribution first."""
        lines = [f"total: {self.total_nj:10.2f} nJ"]
        for name, value in sorted(
            self._entries.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * self.fraction(name)
            lines.append(f"  {name:<28s} {value:10.2f} nJ  ({share:5.1f}%)")
        return "\n".join(lines)
