"""System standby power accounting (Sections 3 and 6.2).

The paper's standby requirement is < 100 pW for the interconnect
itself; the realised three-chip temperature system idles at 8 nW
total, "three orders of magnitude above the expected static leakage
of MBus (5.6 pW)", so MBus contributes negligibly to standby.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.power.energy_model import MBUS_IDLE_PW_PER_CHIP

#: Measured idle power of the 3-chip temperature system (Section 6.2).
TEMPERATURE_SYSTEM_STANDBY_NW = 8.0

#: Requirement from Section 3 ("any new bus must draw less than
#: 100 pW to be competitive").
STANDBY_REQUIREMENT_PW = 100.0


@dataclass(frozen=True)
class StandbyProfile:
    """Standby draw of one chip, split into MBus and non-MBus parts."""

    name: str
    chip_standby_nw: float
    mbus_idle_pw: float = MBUS_IDLE_PW_PER_CHIP

    @property
    def total_nw(self) -> float:
        return self.chip_standby_nw + self.mbus_idle_pw * 1e-3

    @property
    def mbus_fraction(self) -> float:
        """Fraction of chip standby attributable to MBus."""
        return (self.mbus_idle_pw * 1e-3) / self.total_nw


def system_standby_nw(profiles: Iterable[StandbyProfile]) -> float:
    """Total standby power of a stack of chips, in nW."""
    return sum(p.total_nw for p in profiles)


def mbus_standby_meets_requirement(n_chips: int) -> bool:
    """Does an n-chip MBus meet the < 100 pW interconnect budget?"""
    return MBUS_IDLE_PW_PER_CHIP * n_chips < STANDBY_REQUIREMENT_PW
