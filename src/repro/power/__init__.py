"""Power and energy models for MBus systems (Section 6.2).

Three models at different fidelity levels:

* :class:`~repro.power.energy_model.SimulatedEnergyModel` — the
  paper's PrimeTime-style estimate: 3.5 pJ/bit/chip active,
  5.6 pW/chip idle.
* :class:`~repro.power.energy_model.MeasuredEnergyModel` — the
  paper's empirical per-role measurements (Table 3): 27.45 pJ/bit for
  a sending member+mediator, 22.71 pJ/bit receiving, 17.55 pJ/bit
  forwarding, ~6.5x above simulation due to un-isolatable system
  overhead.
* :class:`~repro.power.energy_model.ActivityEnergyModel` — CV²
  switching arithmetic over the edge-accurate simulator's recorded
  wire transitions (2 pF/pad, 0.25 pF/wire, 1.2 V — the paper's
  simulation parameters).
"""

from repro.power.accounting import EnergyLedger
from repro.power.battery import Battery
from repro.power.energy_model import (
    ActivityEnergyModel,
    MBUS_IDLE_PW_PER_CHIP,
    MeasuredEnergyModel,
    RoleEnergy,
    SimulatedEnergyModel,
)
from repro.power.power_states import (
    StandbyProfile,
    TEMPERATURE_SYSTEM_STANDBY_NW,
    system_standby_nw,
)

__all__ = [
    "EnergyLedger",
    "Battery",
    "ActivityEnergyModel",
    "MeasuredEnergyModel",
    "SimulatedEnergyModel",
    "RoleEnergy",
    "MBUS_IDLE_PW_PER_CHIP",
    "StandbyProfile",
    "TEMPERATURE_SYSTEM_STANDBY_NW",
    "system_standby_nw",
]
