"""Battery capacity and lifetime arithmetic (Section 6.3.1).

The paper approximates battery energy as capacity x voltage — "the
crude battery capacity approximation of 2 uAh x 3.8 V = 27.4 mJ" — and
derives node lifetime from average event energy and rate.  The same
arithmetic produces the famous 71-hour lifetime improvement
(~44.5 -> ~47.5 days) of the temperature-sensing system.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


@dataclass(frozen=True)
class Battery:
    """A coin/thin-film cell described by capacity and voltage."""

    capacity_uah: float
    voltage: float

    def __post_init__(self) -> None:
        if self.capacity_uah <= 0 or self.voltage <= 0:
            raise ValueError("capacity and voltage must be positive")

    @property
    def energy_mj(self) -> float:
        """Stored energy in millijoules: uAh x 3600 x V / 1000."""
        return self.capacity_uah * 1e-6 * 3600.0 * self.voltage * 1e3

    @property
    def energy_j(self) -> float:
        return self.energy_mj * 1e-3

    # -- lifetimes ---------------------------------------------------------
    def lifetime_s(self, average_power_w: float) -> float:
        if average_power_w <= 0:
            raise ValueError("average power must be positive")
        return self.energy_j / average_power_w

    def lifetime_days(self, average_power_w: float) -> float:
        return self.lifetime_s(average_power_w) / SECONDS_PER_DAY

    def lifetime_days_for_events(
        self,
        event_energy_nj: float,
        event_period_s: float,
        standby_power_nw: float = 0.0,
    ) -> float:
        """Lifetime with a periodic event plus constant standby draw."""
        if event_period_s <= 0:
            raise ValueError("event period must be positive")
        average_w = (
            event_energy_nj * 1e-9 / event_period_s + standby_power_nw * 1e-9
        )
        return self.lifetime_days(average_w)


#: The batteries used by the paper's two systems (Figures 12 and 13).
TEMPERATURE_SYSTEM_BATTERY = Battery(capacity_uah=2.0, voltage=3.8)
IMAGER_SYSTEM_BATTERY = Battery(capacity_uah=5.0, voltage=3.8)
