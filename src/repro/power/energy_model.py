"""MBus energy models: simulated, measured, and activity-based.

All constants are the paper's (Section 6.2 / Table 3):

========================  ==========  =========================
quantity                  value       provenance
========================  ==========  =========================
simulated active energy   3.5 pJ/bit/chip   PrimeTime, post-APR
simulated idle power      5.6 pW/chip       PrimeTime
measured TX (+mediator)   27.45 pJ/bit      3-chip system, Table 3
measured RX               22.71 pJ/bit      Table 3
measured forwarding       17.55 pJ/bit      Table 3
measured average          22.6  pJ/bit      Table 3
pad capacitance           2 pF              simulation parameter
wire capacitance          0.25 pF/segment   simulation parameter
supply voltage            1.2 V             all chips in the paper
========================  ==========  =========================

The ~6.5x gap between simulation and measurement is, per the paper,
"overhead such as internal memory buses and other integrated
components that could not be isolated"; :data:`MEASURED_OVERHEAD_FACTOR`
makes the relationship explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.constants import (
    OVERHEAD_CYCLES_FULL,
    OVERHEAD_CYCLES_SHORT,
)

# Paper constants (pJ per bit per chip).
SIMULATED_PJ_PER_BIT_PER_CHIP = 3.5
MBUS_IDLE_PW_PER_CHIP = 5.6
MEASURED_TX_PJ_PER_BIT = 27.45      # member + mediator, sending
MEASURED_RX_PJ_PER_BIT = 22.71
MEASURED_FWD_PJ_PER_BIT = 17.55
MEASURED_AVG_PJ_PER_BIT = 22.6
MEASURED_OVERHEAD_FACTOR = MEASURED_AVG_PJ_PER_BIT / SIMULATED_PJ_PER_BIT_PER_CHIP

# Physical simulation parameters.
PAD_CAPACITANCE_PF = 2.0
WIRE_CAPACITANCE_PF = 0.25
SUPPLY_VOLTAGE = 1.2


@dataclass(frozen=True)
class RoleEnergy:
    """Per-role energy cost of one bus cycle, in pJ/bit/chip."""

    tx: float
    rx: float
    fwd: float

    def system_pj_per_bit(self, n_nodes: int, n_receivers: int = 1) -> float:
        """Total system energy to move one bit across ``n_nodes`` chips.

        One transmitter (which in the measured numbers includes the
        mediator), ``n_receivers`` receivers, and everyone else
        forwarding.
        """
        if n_nodes < 2:
            raise ValueError("a bus has at least two nodes")
        if not 1 <= n_receivers <= n_nodes - 1:
            raise ValueError("receivers must be between 1 and n_nodes-1")
        n_fwd = n_nodes - 1 - n_receivers
        return self.tx + n_receivers * self.rx + n_fwd * self.fwd


class _BaseEnergyModel:
    """Shared arithmetic for the simulated and measured models."""

    def overhead_cycles(self, full_address: bool = False) -> int:
        return OVERHEAD_CYCLES_FULL if full_address else OVERHEAD_CYCLES_SHORT

    def system_pj_per_bit(self, n_nodes: int, n_receivers: int = 1) -> float:
        raise NotImplementedError

    def message_energy_pj(
        self,
        n_bytes: int,
        n_nodes: int,
        full_address: bool = False,
        n_receivers: int = 1,
    ) -> float:
        """Energy for one whole message, overhead included.

        Reproduces Section 6.3.1's example: an 8-byte short-addressed
        message in the 3-chip temperature system costs
        (64 + 19) x (27.45 + 22.71 + 17.55) pJ = 5.6 nJ.
        """
        cycles = self.overhead_cycles(full_address) + 8 * n_bytes
        return cycles * self.system_pj_per_bit(n_nodes, n_receivers)

    def power_uw(self, clock_hz: float, n_nodes: int) -> float:
        """Total bus power while continuously clocking (Figure 11a)."""
        return self.system_pj_per_bit(n_nodes) * 1e-12 * clock_hz * 1e6

    def energy_per_goodput_bit_pj(
        self, n_bytes: int, n_nodes: int, full_address: bool = False
    ) -> float:
        """Energy amortised over payload bits only (Figure 11b)."""
        if n_bytes <= 0:
            return float("inf")
        return self.message_energy_pj(n_bytes, n_nodes, full_address) / (8 * n_bytes)


class SimulatedEnergyModel(_BaseEnergyModel):
    """The paper's PrimeTime estimate: E = 3.5 pJ x cycles x chips."""

    def __init__(
        self,
        pj_per_bit_per_chip: float = SIMULATED_PJ_PER_BIT_PER_CHIP,
        idle_pw_per_chip: float = MBUS_IDLE_PW_PER_CHIP,
    ):
        self.pj_per_bit_per_chip = pj_per_bit_per_chip
        self.idle_pw_per_chip = idle_pw_per_chip

    def system_pj_per_bit(self, n_nodes: int, n_receivers: int = 1) -> float:
        if n_nodes < 2:
            raise ValueError("a bus has at least two nodes")
        return self.pj_per_bit_per_chip * n_nodes

    def idle_power_pw(self, n_nodes: int) -> float:
        return self.idle_pw_per_chip * n_nodes


class MeasuredEnergyModel(_BaseEnergyModel):
    """Empirical per-role energies from the 3-chip system (Table 3)."""

    def __init__(self, roles: Optional[RoleEnergy] = None):
        self.roles = roles or RoleEnergy(
            tx=MEASURED_TX_PJ_PER_BIT,
            rx=MEASURED_RX_PJ_PER_BIT,
            fwd=MEASURED_FWD_PJ_PER_BIT,
        )

    def system_pj_per_bit(self, n_nodes: int, n_receivers: int = 1) -> float:
        return self.roles.system_pj_per_bit(n_nodes, n_receivers)

    def average_pj_per_bit(self) -> float:
        """The paper's headline 22.6 pJ/bit/chip (3-chip average)."""
        return (self.roles.tx + self.roles.rx + self.roles.fwd) / 3


class ActivityEnergyModel:
    """CV² switching energy over recorded wire transitions.

    Each output transition charges or discharges the load seen by a
    node's pad driver: its own output pad, the ring-segment wire, and
    the downstream input pad.  Per transition the driver dissipates
    half the swing energy and the load stores/dumps the other half,
    so one full charge/discharge pair costs C·V² and a single
    transition is booked at C·V²/2.
    """

    def __init__(
        self,
        pad_pf: float = PAD_CAPACITANCE_PF,
        wire_pf: float = WIRE_CAPACITANCE_PF,
        voltage: float = SUPPLY_VOLTAGE,
    ):
        self.pad_pf = pad_pf
        self.wire_pf = wire_pf
        self.voltage = voltage

    @property
    def segment_capacitance_pf(self) -> float:
        """Load per ring segment: out pad + wire + downstream in pad."""
        return 2 * self.pad_pf + self.wire_pf

    def energy_per_transition_pj(self) -> float:
        return 0.5 * self.segment_capacitance_pf * self.voltage ** 2

    def system_energy_pj(self, transitions_by_node: Dict[str, int]) -> float:
        """Total wire energy for the recorded transition counts
        (output of :meth:`repro.core.bus.MBusSystem.wire_activity`)."""
        total_transitions = sum(transitions_by_node.values())
        return total_transitions * self.energy_per_transition_pj()
