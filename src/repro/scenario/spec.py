"""Declarative topology specs: :class:`NodeSpec` and :class:`SystemSpec`.

A spec is a plain data description of an MBus system — the ring
membership, addressing, power gating, timing, watchdog and
arbitration-anchor configuration — with none of the simulation
machinery attached.  Specs are:

* **backend-agnostic** — :meth:`SystemSpec.build` instantiates the
  same topology on either the edge-accurate engine (``mode="edge"``)
  or the transaction-level fast path (``mode="fast"``);
* **round-trippable** — :meth:`SystemSpec.to_dict` emits a
  JSON-friendly dict and ``SystemSpec.from_dict(spec.to_dict())``
  reconstructs an equal spec, so scenarios can live in version-
  controlled ``.json`` files and be fed to ``python -m repro run``;
* **immutable** — both dataclasses are frozen; derive variants with
  :meth:`SystemSpec.replace` (used by :func:`repro.scenario.runner.sweep`
  to map parameter grids over runs).

Behavioural chips (layer handlers, interrupt handlers) are code, not
data, and therefore live outside the spec: pass a ``setup`` callable
to :func:`repro.scenario.runner.run` to attach them after the system
is built.  Likewise ``NodeConfig.ack_policy`` (a callable) is not
representable here; nodes needing one must be configured imperatively.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core import constants
from repro.core.bus import MBusSystem
from repro.core.errors import ConfigurationError


def _take_keys(
    data: dict, allowed: frozenset, what: str, lenient: bool
) -> dict:
    """Strict mode rejects unknown keys; lenient mode drops them.

    Lenient loading is how cached documents written by a *newer*
    schema (extra fields) remain readable — see
    :mod:`repro.core.schema`.
    """
    unknown = set(data) - allowed
    if not unknown:
        return dict(data)
    if lenient:
        return {k: v for k, v in data.items() if k in allowed}
    raise ConfigurationError(
        f"unknown {what} key(s): {', '.join(sorted(unknown))}"
    )


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one chip on the ring.

    Mirrors :class:`repro.core.node.NodeConfig` field for field,
    minus the non-serialisable ``ack_policy`` callable.  Ring position
    follows the order of the spec's ``nodes`` tuple, which determines
    topological arbitration priority (Section 4.3).
    """

    name: str
    short_prefix: Optional[int] = None
    full_prefix: Optional[int] = None
    broadcast_channels: frozenset = frozenset({0})
    power_gated: bool = False
    auto_sleep: Optional[bool] = None
    rx_buffer_bytes: int = constants.MIN_MAX_MESSAGE_BYTES
    memory_words: int = 1024
    is_mediator: bool = False
    node_delay_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.broadcast_channels, frozenset):
            object.__setattr__(
                self, "broadcast_channels", frozenset(self.broadcast_channels)
            )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "short_prefix": self.short_prefix,
            "full_prefix": self.full_prefix,
            "broadcast_channels": sorted(self.broadcast_channels),
            "power_gated": self.power_gated,
            "auto_sleep": self.auto_sleep,
            "rx_buffer_bytes": self.rx_buffer_bytes,
            "memory_words": self.memory_words,
            "is_mediator": self.is_mediator,
            "node_delay_ps": self.node_delay_ps,
        }

    _KEYS = frozenset({
        "name", "short_prefix", "full_prefix", "broadcast_channels",
        "power_gated", "auto_sleep", "rx_buffer_bytes", "memory_words",
        "is_mediator", "node_delay_ps",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "NodeSpec":
        kwargs = _take_keys(data, cls._KEYS, "NodeSpec", lenient)
        if "name" not in kwargs:
            raise ConfigurationError("NodeSpec requires a 'name'")
        if "broadcast_channels" in kwargs:
            kwargs["broadcast_channels"] = frozenset(
                kwargs["broadcast_channels"]
            )
        return cls(**kwargs)

    def config_kwargs(self) -> Dict:
        """Keyword arguments for ``MBusSystem.add_node`` / NodeConfig."""
        kwargs = {
            "short_prefix": self.short_prefix,
            "full_prefix": self.full_prefix,
            "broadcast_channels": self.broadcast_channels,
            "power_gated": self.power_gated,
            "rx_buffer_bytes": self.rx_buffer_bytes,
            "memory_words": self.memory_words,
        }
        if self.auto_sleep is not None:
            kwargs["auto_sleep"] = self.auto_sleep
        if self.node_delay_ps is not None:
            kwargs["node_delay_ps"] = self.node_delay_ps
        return kwargs


@dataclass(frozen=True)
class SystemSpec:
    """A complete MBus topology plus bus-level configuration.

    ``None`` for any timing field means "use the
    :class:`~repro.core.constants.MBusTiming` default"; only
    ``clock_hz`` is always explicit because every scenario cares
    about it.  ``max_message_bytes`` configures the runaway watchdog;
    ``arbitration_anchor`` names a member node to hold the Section 7
    mutable-priority break point (``None`` keeps it at the mediator).
    """

    nodes: Tuple[NodeSpec, ...] = ()
    name: str = ""
    clock_hz: float = constants.DEFAULT_CLOCK_HZ
    node_delay_ps: Optional[int] = None
    drive_delay_ps: Optional[int] = None
    mediator_wakeup_ps: Optional[int] = None
    interjection_threshold: Optional[int] = None
    max_message_bytes: Optional[int] = None
    arbitration_anchor: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))

    # ------------------------------------------------------------------
    # Introspection used by workload compilation and the runner.
    # ------------------------------------------------------------------
    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(f"spec has no node named {name!r}")

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    @property
    def mediator_name(self) -> str:
        for node in self.nodes:
            if node.is_mediator:
                return node.name
        raise ConfigurationError("spec has no mediator node")

    def validate(self) -> "SystemSpec":
        """Spec-level sanity checks (cheap; full protocol validation
        happens in :meth:`build` via NodeConfig / MBusSystem)."""
        mediators = [n.name for n in self.nodes if n.is_mediator]
        if len(mediators) != 1:
            raise ConfigurationError(
                f"a SystemSpec needs exactly one mediator, got {mediators!r}"
            )
        if len(self.nodes) < 2:
            raise ConfigurationError("a SystemSpec needs at least two nodes")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names in {names!r}")
        if (
            self.arbitration_anchor is not None
            and self.arbitration_anchor not in names
        ):
            raise ConfigurationError(
                f"arbitration anchor {self.arbitration_anchor!r} "
                "names no node in the spec"
            )
        return self

    # ------------------------------------------------------------------
    # Materialisation.
    # ------------------------------------------------------------------
    def timing(self) -> constants.MBusTiming:
        kwargs = {"clock_hz": self.clock_hz}
        for field_name in (
            "node_delay_ps",
            "drive_delay_ps",
            "mediator_wakeup_ps",
            "interjection_threshold",
        ):
            value = getattr(self, field_name)
            if value is not None:
                kwargs[field_name] = value
        return constants.MBusTiming(**kwargs)

    def build(self, mode: str = "edge", trace: bool = False) -> MBusSystem:
        """Instantiate the spec on the chosen simulation backend."""
        self.validate()
        system = MBusSystem(timing=self.timing(), trace=trace, mode=mode)
        for node in self.nodes:
            if node.is_mediator:
                system.add_mediator_node(node.name, **node.config_kwargs())
            else:
                system.add_node(node.name, **node.config_kwargs())
        system.build()
        if self.max_message_bytes is not None:
            system.set_max_message_bytes(self.max_message_bytes)
        if self.arbitration_anchor is not None:
            system.set_arbitration_anchor(self.arbitration_anchor)
        return system

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "clock_hz": self.clock_hz,
            "node_delay_ps": self.node_delay_ps,
            "drive_delay_ps": self.drive_delay_ps,
            "mediator_wakeup_ps": self.mediator_wakeup_ps,
            "interjection_threshold": self.interjection_threshold,
            "max_message_bytes": self.max_message_bytes,
            "arbitration_anchor": self.arbitration_anchor,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    _KEYS = frozenset({
        "name", "clock_hz", "node_delay_ps", "drive_delay_ps",
        "mediator_wakeup_ps", "interjection_threshold",
        "max_message_bytes", "arbitration_anchor", "nodes",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "SystemSpec":
        kwargs = _take_keys(data, cls._KEYS, "SystemSpec", lenient)
        kwargs["nodes"] = tuple(
            NodeSpec.from_dict(node, lenient=lenient)
            for node in kwargs.get("nodes", ())
        )
        return cls(**kwargs)

    def replace(self, **overrides: Any) -> "SystemSpec":
        """A copy with the given fields replaced (sweep-friendly)."""
        return dataclasses.replace(self, **overrides)
