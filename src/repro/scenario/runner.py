"""Backend-agnostic scenario execution: :func:`run` and :func:`sweep`.

``run(spec, workload)`` builds the topology described by a
:class:`~repro.scenario.spec.SystemSpec` on the selected simulation
backend, replays the workload's compiled schedule through the
simulator's event queue, runs the bus to idle and returns a
structured :class:`RunReport`.

Backend selection (``backend=``)
--------------------------------
* ``"edge"`` / ``"fast"`` — force the edge-accurate engine or the
  transaction-level fast path.
* ``"batch"`` — the tier-3 compiled executor (:mod:`repro.batch`):
  the spec and workload are lowered to flat arrays and whole
  bus-round sequences execute without simulator or node objects.
  Fastest by a wide margin for large campaigns; no ``setup`` hooks,
  tracing or fault injection.
* ``"auto"`` (default) — tracing implies ``"edge"`` (the fast path
  never toggles nets, so there is nothing to trace); otherwise the
  throughput-oriented ``"fast"`` backend is chosen.  ``auto`` never
  resolves to ``"batch"`` — opting into the compiled tier is always
  explicit, keeping campaign trial keys stable.  All tiers are
  result-equivalent for message-granularity workloads (enforced by
  ``tests/integration/`` and the :mod:`repro.diffcheck` fuzzer), so
  ``auto`` only ever changes speed, not answers.

The backend registry below is table-driven: :data:`BACKEND_TABLE` is
the single source of truth for names, capabilities and help text, and
``BACKENDS``, :func:`select_backend` errors and the CLI ``--backend``
options all derive from it.

Parameter studies live in :mod:`repro.campaign` (grids, pluggable
executors, content-addressed caching, queryable results); the old
:func:`sweep` remains as a deprecated shim over a serial
:class:`~repro.campaign.Campaign`.
"""

from __future__ import annotations

import functools
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.bus import MBusSystem, TransactionResult
from repro.core.errors import ConfigurationError
from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.faults.injector import FaultInjector
from repro.faults.primitives import FaultSpec, normalize_faults
from repro.faults.report import ReliabilityReport, build_reliability_report
from repro.obs.state import OBS
from repro.power.energy_model import MeasuredEnergyModel
from repro.scenario.spec import SystemSpec
from repro.scenario.workload import (
    InterruptEvent,
    PostEvent,
    ScheduleEvent,
    Workload,
)

PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class BackendInfo:
    """One row of the backend registry.

    ``selector`` marks pseudo-backends that resolve to a concrete tier
    (only ``"auto"``).  Capability flags gate :func:`select_backend`
    and :func:`run` validation; ``description`` feeds CLI help.
    """

    name: str
    description: str
    selector: bool = False
    supports_trace: bool = False
    supports_faults: bool = False
    supports_setup: bool = False


#: Single source of truth for backend registration: ``BACKENDS``,
#: the :func:`select_backend` error message and the CLI ``--backend``
#: choices/help all derive from this table.
BACKEND_TABLE: Tuple[BackendInfo, ...] = (
    BackendInfo(
        "auto",
        "pick for me: edge when tracing or injecting faults, else fast",
        selector=True,
        supports_trace=True,
        supports_faults=True,
        supports_setup=True,
    ),
    BackendInfo(
        "edge",
        "edge-accurate engine (every CLK/DATA transition; golden "
        "reference, tracing, faults)",
        supports_trace=True,
        supports_faults=True,
        supports_setup=True,
    ),
    BackendInfo(
        "fast",
        "transaction-level fast path (closed-form rounds, ~2 events "
        "per transaction)",
        supports_setup=True,
    ),
    BackendInfo(
        "batch",
        "tier-3 compiled executor (flat arrays, round templates; "
        "fleet-scale campaigns)",
    ),
)

BACKEND_REGISTRY: Dict[str, BackendInfo] = {
    info.name: info for info in BACKEND_TABLE
}

BACKENDS = tuple(BACKEND_REGISTRY)


def backend_help() -> str:
    """One-line-per-backend help text for CLI ``--backend`` options."""
    return "; ".join(
        f"{info.name}: {info.description}" for info in BACKEND_TABLE
    )


def select_backend(
    backend: str = "auto", trace: bool = False, faults_active: bool = False
) -> str:
    """Resolve ``backend`` to a concrete execution tier.

    An *active* (non-empty) fault set forces the edge engine: faults
    disturb wires and power domains, which neither the transaction-
    level fast path nor the compiled batch tier models.  Requesting a
    backend without fault support while faults are active is a hard
    error rather than a silent downgrade; an empty
    :class:`FaultSpec` never constrains the choice.
    """
    info = BACKEND_REGISTRY.get(backend)
    if info is None:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, not {backend!r}"
        )
    if faults_active and not info.supports_faults:
        raise ConfigurationError(
            "fault injection requires the edge-accurate backend: the "
            f"{info.name!r} path has no wires or mid-transaction power "
            "state to disturb; use backend='edge' or 'auto'"
        )
    if info.selector:
        return "edge" if (trace or faults_active) else "fast"
    if trace and not info.supports_trace:
        raise ConfigurationError(
            "tracing requires the edge backend; use backend='edge' or 'auto'"
        )
    return backend


@dataclass
class RunReport:
    """Structured outcome of one scenario run.

    Raw observations (the transaction stream, deliveries, power-domain
    report, wire activity) plus derived throughput/goodput/energy
    statistics.  ``to_dict()`` is JSON-friendly for the CLI;
    ``transaction_signatures()`` / ``delivery_set()`` are the stable,
    timing-free projections used for cross-backend equivalence checks.
    """

    backend: str
    spec: SystemSpec
    transactions: List[TransactionResult]
    power: Dict[str, Dict[str, float]]
    wire_activity: Dict[str, int]
    sim_time_s: float
    wall_s: float
    events_processed: int
    #: The workload that produced this report (when given as a
    #: :class:`Workload`; raw event iterables are not retained), so
    #: ``to_dict()`` output is reproducible from itself.
    workload: Optional[Workload] = None
    #: The fault set applied to the run (``None`` = faults never
    #: requested; an empty spec = clean baseline of a fault study).
    faults: Optional[FaultSpec] = None
    #: Recovery analytics; present whenever ``faults`` was passed to
    #: :func:`run`, even as an empty spec.
    reliability: Optional[ReliabilityReport] = None
    #: The live system (tracer access, node inboxes); excluded from
    #: comparisons and repr.
    system: Optional[MBusSystem] = field(
        default=None, repr=False, compare=False
    )

    # -- raw projections ---------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    @property
    def n_ok(self) -> int:
        return sum(1 for t in self.transactions if t.ok)

    @functools.cached_property
    def deliveries(self) -> List[Tuple[str, bytes]]:
        """(receiver, payload) for every delivery, in bus order.

        Cached: the transaction list is fixed once the run completes,
        and several derived statistics walk this list.
        """
        return [
            (name, bytes(message.payload))
            for t in self.transactions
            for name, message in t.rx_deliveries
        ]

    def delivery_set(self) -> Tuple[Tuple[str, str, int], ...]:
        """Order-insensitive delivery fingerprint: sorted
        (receiver, payload hex, count-preserving index)."""
        seen: Dict[Tuple[str, str], int] = {}
        fingerprint = []
        for name, payload in self.deliveries:
            key = (name, payload.hex())
            seen[key] = seen.get(key, 0) + 1
            fingerprint.append((name, payload.hex(), seen[key]))
        return tuple(sorted(fingerprint))

    def transaction_signatures(self) -> Tuple[Tuple, ...]:
        """Timing-free view of the transaction stream, identical
        across backends for any message-granularity workload."""
        return tuple(
            (
                t.index,
                t.ok,
                t.control,
                t.tx_node,
                None if t.message is None else bytes(t.message.payload),
                t.clock_cycles,
                t.control_cycles,
                t.general_error,
                t.error_reason,
                tuple(sorted(t.rx_nodes)),
            )
            for t in self.transactions
        )

    # -- derived statistics ------------------------------------------------
    @property
    def delivered_payload_bits(self) -> int:
        return sum(8 * len(payload) for _, payload in self.deliveries)

    @property
    def throughput_tps(self) -> float:
        """Successful transactions per simulated second."""
        if self.sim_time_s <= 0:
            return 0.0
        return self.n_ok / self.sim_time_s

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per simulated second."""
        if self.sim_time_s <= 0:
            return 0.0
        return self.delivered_payload_bits / self.sim_time_s

    @property
    def wall_throughput_tps(self) -> float:
        """Transactions resolved per *wall-clock* second.

        The host-side rate (all transactions, not just successful
        ones): this is what backend tiering changes, so it is the
        number that makes batch-vs-fast speedups visible in
        ``summary()`` output and benchmark JSON.
        """
        if self.wall_s <= 0:
            return 0.0
        return self.n_transactions / self.wall_s

    def energy_pj(self, model: Optional[MeasuredEnergyModel] = None) -> float:
        """Message energy of the completed traffic (Section 6.2 model)."""
        model = model or MeasuredEnergyModel()
        n_nodes = len(self.spec.nodes)
        total = 0.0
        for t in self.transactions:
            if not t.ok or t.message is None:
                continue
            total += model.message_energy_pj(
                len(t.message.payload),
                n_nodes,
                full_address=not t.message.dest.is_short,
                n_receivers=max(1, len(t.rx_deliveries)),
            )
        return total

    def energy_per_delivered_bit_pj(
        self, model: Optional[MeasuredEnergyModel] = None
    ) -> float:
        bits = self.delivered_payload_bits
        if bits == 0:
            return 0.0
        return self.energy_pj(model) / bits

    # -- presentation ------------------------------------------------------
    # lint: disable=schema -- one-way analytic report; records are re-derived from runs, never loaded back
    def to_dict(self) -> Dict:
        energy_pj = self.energy_pj()
        bits = self.delivered_payload_bits
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "backend": self.backend,
            "spec": self.spec.to_dict(),
            "workload": (
                self.workload.to_dict()
                if isinstance(self.workload, Workload)
                else None
            ),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "reliability": (
                None if self.reliability is None
                else self.reliability.to_dict()
            ),
            "n_transactions": self.n_transactions,
            "n_ok": self.n_ok,
            "sim_time_s": self.sim_time_s,
            "wall_s": self.wall_s,
            "events_processed": self.events_processed,
            "throughput_tps": self.throughput_tps,
            "wall_throughput_tps": self.wall_throughput_tps,
            "goodput_bps": self.goodput_bps,
            "energy_pj": energy_pj,
            "energy_per_delivered_bit_pj": energy_pj / bits if bits else 0.0,
            "wire_activity": dict(self.wire_activity),
            "power": self.power,
            "transactions": [
                {
                    "index": t.index,
                    "ok": t.ok,
                    "control": None if t.control is None else t.control.name,
                    "tx_node": t.tx_node,
                    "payload_hex": (
                        None if t.message is None else t.message.payload.hex()
                    ),
                    "rx_nodes": t.rx_nodes,
                    "clock_cycles": t.clock_cycles,
                    "control_cycles": t.control_cycles,
                    "duration_ps": t.duration_ps,
                    "general_error": t.general_error,
                    "error_reason": t.error_reason,
                }
                for t in self.transactions
            ],
        }

    def summary(self) -> str:
        name = self.spec.name or f"{len(self.spec.nodes)}-node system"
        energy_pj = self.energy_pj()
        bits = self.delivered_payload_bits
        lines = [
            f"scenario: {name} [{self.backend} backend]",
            f"  transactions: {self.n_ok}/{self.n_transactions} ok, "
            f"{self.delivered_payload_bits // 8} payload bytes delivered",
            f"  simulated {self.sim_time_s * 1e3:.3f} ms of bus time in "
            f"{self.wall_s * 1e3:.1f} ms wall "
            f"({self.events_processed} events)",
            f"  throughput: {self.throughput_tps:,.0f} txn/s sim "
            f"({self.wall_throughput_tps:,.0f} txn/s wall); "
            f"goodput: {self.goodput_bps / 1e3:,.1f} kbit/s",
            f"  energy: {energy_pj / 1e3:.2f} nJ "
            f"({energy_pj / bits if bits else 0.0:.1f} pJ per delivered bit)",
        ]
        for node, domains in self.power.items():
            lines.append(
                f"  {node}: bus {domains['bus_on_s'] * 1e3:.3f} ms on "
                f"({domains['bus_wakeups']:.0f} wakeups), layer "
                f"{domains['layer_on_s'] * 1e3:.3f} ms on "
                f"({domains['layer_wakeups']:.0f} wakeups)"
            )
        if self.reliability is not None:
            lines.append(self.reliability.summary())
        return "\n".join(lines)


def _compile(workload, spec) -> Tuple[ScheduleEvent, ...]:
    if isinstance(workload, Workload):
        return workload.compile(spec)
    events = tuple(workload)
    for event in events:
        if not isinstance(event, (PostEvent, InterruptEvent)):
            raise ConfigurationError(
                f"workload items must be schedule events, got {event!r}"
            )
    return tuple(sorted(events, key=lambda e: e.at_s))


def _post_fn(system: MBusSystem, event: PostEvent):
    return lambda: system.post(
        event.source, event.dest, event.payload, priority=event.priority
    )


def _interrupt_fn(system: MBusSystem, event: InterruptEvent):
    return lambda: system.interrupt(event.node)


def run(
    spec: SystemSpec,
    workload: Union[Workload, Iterable[ScheduleEvent]],
    backend: str = "auto",
    trace: bool = False,
    timeout_s: Optional[float] = None,
    setup: Optional[Callable[[MBusSystem], Any]] = None,
    faults: Any = None,
    wall_timeout_s: Optional[float] = None,
) -> RunReport:
    """Execute ``workload`` on the system described by ``spec``.

    ``setup``, if given, is called with the built :class:`MBusSystem`
    before any traffic is scheduled — the hook for attaching
    behavioural chips, layer handlers or observers that are code
    rather than data.  ``timeout_s`` bounds simulated (not wall)
    time, as in :meth:`MBusSystem.run_until_idle`.

    ``faults`` — a :class:`~repro.faults.FaultSpec` (or a fault /
    iterable of faults) injected deterministically during the run.  A
    non-empty set forces the edge backend under ``backend="auto"``
    and rejects an explicit ``"fast"``; any ``faults`` argument,
    including an empty spec, attaches a
    :class:`~repro.faults.ReliabilityReport` to the result.

    ``wall_timeout_s`` bounds *host* time: the event loop raises
    :class:`~repro.core.errors.WallClockTimeout` (cooperatively,
    checked every 256 events) once the budget is spent.  Campaign
    executors convert this into a recorded ``timeout`` failure.
    """
    wall_deadline = (
        None
        if wall_timeout_s is None
        else time.perf_counter() + wall_timeout_s
    )
    fault_spec = normalize_faults(faults)
    faults_active = bool(fault_spec)
    mode = select_backend(backend, trace, faults_active=faults_active)
    if not OBS.enabled:
        return _run_on(
            mode, spec, workload, trace, timeout_s, setup,
            fault_spec, faults_active, wall_deadline,
        )
    OBS.metrics.inc("run.calls", labels={"backend": mode})
    tracer = OBS.tracer
    if tracer is None:
        return _run_on(
            mode, spec, workload, trace, timeout_s, setup,
            fault_spec, faults_active, wall_deadline,
        )
    with tracer.span("run", cat="phase", backend=mode):
        report = _run_on(
            mode, spec, workload, trace, timeout_s, setup,
            fault_spec, faults_active, wall_deadline,
        )
        # Bus rounds and transactions re-expressed as deterministic
        # sim-time spans (integer picoseconds, no wall noise).  The
        # transaction list is equivalence-checked across backends, so
        # the span tree below is structurally identical on edge, fast
        # and batch — the cross-backend contract the obs tests pin.
        for txn in report.transactions:
            with tracer.sim_span(
                "bus-round", txn.start_ps, txn.duration_ps, index=txn.index
            ):
                with tracer.sim_span(
                    "transaction", txn.start_ps, txn.duration_ps, ok=txn.ok
                ):
                    pass
    return report


def _run_on(
    mode: str,
    spec: SystemSpec,
    workload: Union[Workload, Iterable[ScheduleEvent]],
    trace: bool,
    timeout_s: Optional[float],
    setup: Optional[Callable[[MBusSystem], Any]],
    fault_spec: Any,
    faults_active: bool,
    wall_deadline: Optional[float],
) -> RunReport:
    """The backend dispatch body of :func:`run`, factored out so the
    observability wrapper above can enclose it in a ``run`` span."""
    if mode == "batch":
        if setup is not None:
            raise ConfigurationError(
                "setup hooks attach code to a live MBusSystem; the batch "
                "backend never builds one — use backend='edge' or 'fast'"
            )
        if fault_spec is not None:
            raise ConfigurationError(
                "reliability analytics require a live system; the batch "
                "backend never builds one — drop faults= or use "
                "backend='edge' or 'fast'"
            )
        return _run_batch(
            spec, workload, timeout_s=timeout_s, wall_deadline=wall_deadline
        )
    with OBS.phase("compile"):
        system = spec.build(mode=mode, trace=trace)
        injector = None
        if faults_active:
            injector = FaultInjector(system, fault_spec, spec)
            injector.arm()
        if setup is not None:
            setup(system)
        for event in _compile(workload, spec):
            at_ps = int(round(event.at_s * PS_PER_S))
            if isinstance(event, PostEvent):
                system.sim.schedule_at(at_ps, _post_fn(system, event))
            else:
                system.sim.schedule_at(at_ps, _interrupt_fn(system, event))
    start = time.perf_counter()
    with OBS.phase("execute"):
        try:
            # Under active faults a run may legitimately end with member
            # engines desynchronised (e.g. dropped CLK edges leave them
            # mid-control until the next transaction resyncs them); that
            # is a *finding*, recorded as ``reliability.bus_idle``, not a
            # simulation error.
            system.run_until_idle(
                timeout_s=timeout_s,
                require_idle=not faults_active,
                wall_deadline=wall_deadline,
            )
        finally:
            if injector is not None:
                injector.finalize()
    wall_s = time.perf_counter() - start
    with OBS.phase("serialize"):
        reliability = None
        if fault_spec is not None:
            reliability = build_reliability_report(
                spec,
                workload,
                fault_spec,
                list(system.transactions),
                injector=injector,
                system=system,
            )
        report = RunReport(
            backend=mode,
            spec=spec,
            transactions=list(system.transactions),
            power=system.power_domain_report(),
            wire_activity=system.wire_activity(),
            sim_time_s=system.sim.now / PS_PER_S,
            wall_s=wall_s,
            events_processed=system.sim.events_processed,
            workload=workload if isinstance(workload, Workload) else None,
            faults=fault_spec,
            reliability=reliability,
            system=system,
        )
    return report


def _run_batch(
    spec: SystemSpec,
    workload,
    timeout_s: Optional[float],
    wall_deadline: Optional[float],
) -> RunReport:
    """The tier-3 path of :func:`run`: compile, execute, materialise.

    Compilation sits outside the timed window (it is the analogue of
    ``spec.build()`` + workload compilation, which the event-loop
    backends also do before their clock starts) and is memoised by
    spec content digest, so a campaign compiles each topology once.
    """
    from repro.batch import (
        BatchExecutor,
        compile_system_cached,
        compile_workload,
        materialize,
    )

    with OBS.phase("compile"):
        schedule = _compile(workload, spec)
        csys = compile_system_cached(spec)
        cwl = compile_workload(schedule, csys)
    # Matches run_until_idle's horizon arithmetic (sim starts at 0).
    until = None if timeout_s is None else int(timeout_s * 1e12)
    start = time.perf_counter()
    with OBS.phase("execute"):
        result = BatchExecutor(csys, cwl).run(
            until=until, wall_deadline=wall_deadline
        )
    with OBS.phase("serialize"):
        transactions, power, wire = materialize(csys, result)
        wall_s = time.perf_counter() - start
        report = RunReport(
            backend="batch",
            spec=spec,
            transactions=transactions,
            power=power,
            wire_activity=wire,
            sim_time_s=result.end_ps / PS_PER_S,
            wall_s=wall_s,
            events_processed=result.steps,
            workload=workload if isinstance(workload, Workload) else None,
            faults=None,
            reliability=None,
            system=None,
        )
    return report


@dataclass
class SweepPoint:
    """One grid point of a :func:`sweep`: its parameters and report."""

    params: Dict[str, Any]
    report: RunReport


def sweep(
    spec: SystemSpec,
    workload: Union[Workload, Callable[[Dict[str, Any]], Workload]],
    grid: Dict[str, Iterable[Any]],
    backend: str = "auto",
    trace: bool = False,
    timeout_s: Optional[float] = None,
    setup: Optional[Callable[[MBusSystem], Any]] = None,
    faults: Any = None,
) -> List[SweepPoint]:
    """Deprecated: use :class:`repro.campaign.Campaign`.

    Kept as a thin shim that compiles the same (spec, workload,
    grid, faults) study into a :class:`Campaign` and runs it with
    the serial executor, uncached and with live reports — exactly
    the old serial in-memory loop, point for point.  The campaign
    API adds what this never had: process-parallel execution,
    content-addressed on-disk memoisation, resume after
    interruption, and a queryable
    :class:`~repro.campaign.resultset.ResultSet`::

        Campaign(spec, workload, grid=grid, faults=faults).run(
            executor="process", store="out/study")
    """
    warnings.warn(
        "repro.scenario.sweep() is deprecated; use "
        "repro.campaign.Campaign (serial executor = old behaviour, "
        "plus process pools, on-disk caching and resume)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.campaign import Campaign

    results = Campaign(
        spec=spec,
        workload=workload,
        grid=grid,
        faults=faults,
        backend=backend,
        timeout_s=timeout_s,
    ).run(
        executor="serial",
        store=None,
        resume=False,
        dedupe=False,
        keep_reports=True,
        setup=setup,
        trace=trace,
    )
    return [
        SweepPoint(params=dict(result.params), report=result.live)
        for result in results
    ]
