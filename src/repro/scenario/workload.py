"""Composable workload primitives that compile to event schedules.

A :class:`Workload` is a declarative description of bus traffic.
Calling :meth:`Workload.compile` against a :class:`~repro.scenario.spec.SystemSpec`
yields a deterministic, time-sorted tuple of schedule events —
:class:`PostEvent` (queue a message at a node) and
:class:`InterruptEvent` (assert a node's always-on interrupt wire) —
with **no reference to any simulation backend**.  The same compiled
schedule drives the edge-accurate engine and the transaction-level
fast path identically, which is what makes cross-backend equivalence
checks (and fair benchmarks) possible.

Primitives
----------
* :class:`OneShot` — a single message at a given time.
* :class:`Burst` — ``count`` back-to-back messages (optionally with a
  fixed inter-post gap), the Figure 14 saturation shape.
* :class:`Periodic` — a fixed-interval stream, the Section 6.3.1
  sense-and-send shape.
* :class:`RandomTraffic` — seeded pseudo-random traffic over the
  spec's addressable nodes; deterministic for a given (seed, spec).
* :class:`Broadcast` — a channel broadcast (Section 4.6), with the
  priority flag available.
* :class:`Interrupt` — an always-on interrupt-wire assertion
  (Section 4.5), the motion-imager wake shape.

Workloads compose with ``+`` (schedules are merged and re-sorted) and
round-trip through :meth:`Workload.to_dict` /
:func:`workload_from_dict` so a whole scenario — topology and
traffic — can live in one JSON document.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.core.addresses import Address

if TYPE_CHECKING:
    from repro.scenario.spec import SystemSpec
from repro.core.errors import ConfigurationError


# ----------------------------------------------------------------------
# Schedule events (the compilation target).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PostEvent:
    """Queue ``payload`` for ``dest`` at node ``source`` at ``at_s``."""

    at_s: float
    source: str
    dest: Address
    payload: bytes = b""
    priority: bool = False


@dataclass(frozen=True)
class InterruptEvent:
    """Assert ``node``'s always-on interrupt port at ``at_s``."""

    at_s: float
    node: str


ScheduleEvent = Union[PostEvent, InterruptEvent]


def _address_to_dict(dest: Address) -> Dict:
    return {
        "short_prefix": dest.short_prefix,
        "full_prefix": dest.full_prefix,
        "fu_id": dest.fu_id,
    }


def _address_from_dict(data: Dict) -> Address:
    return Address(
        fu_id=data.get("fu_id", 0),
        short_prefix=data.get("short_prefix"),
        full_prefix=data.get("full_prefix"),
    )


# ----------------------------------------------------------------------
# Workload base and registry.
# ----------------------------------------------------------------------
class Workload:
    """Base class: a declarative traffic description.

    Subclasses implement :meth:`_events` (unsorted event generation)
    and :meth:`_params` (JSON-friendly constructor arguments); the
    base class provides sorting, composition and serialisation.
    """

    kind: str = ""

    def compile(self, spec: "SystemSpec") -> Tuple[ScheduleEvent, ...]:
        """The deterministic, time-sorted schedule for ``spec``."""
        return tuple(sorted(self._events(spec), key=lambda e: e.at_s))

    def _events(self, spec):
        raise NotImplementedError

    def _params(self) -> Dict:
        raise NotImplementedError

    def __add__(self, other: "Workload") -> "Workload":
        if not isinstance(other, Workload):
            return NotImplemented
        mine = self.parts if isinstance(self, Combined) else (self,)
        theirs = other.parts if isinstance(other, Combined) else (other,)
        return Combined(parts=mine + theirs)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, **self._params()}


def _message_params(
    dest: Address, payload: bytes, priority: bool
) -> Dict:
    return {
        "dest": _address_to_dict(dest),
        "payload": bytes(payload).hex(),
        "priority": priority,
    }


@dataclass(frozen=True)
class OneShot(Workload):
    """One message from ``source`` to ``dest`` at ``at_s``."""

    source: str
    dest: Address
    payload: bytes = b""
    at_s: float = 0.0
    priority: bool = False
    kind = "one_shot"

    def _events(self, spec):
        yield PostEvent(
            at_s=self.at_s,
            source=self.source,
            dest=self.dest,
            payload=self.payload,
            priority=self.priority,
        )

    def _params(self) -> Dict:
        return {
            "source": self.source,
            "at_s": self.at_s,
            **_message_params(self.dest, self.payload, self.priority),
        }


@dataclass(frozen=True)
class Burst(Workload):
    """``count`` copies posted back to back (saturating traffic).

    With ``gap_s == 0`` every message is queued at ``at_s`` and the
    transmitter's queue keeps the bus saturated; a positive ``gap_s``
    spaces the posts out instead.
    """

    source: str
    dest: Address
    payload: bytes = b""
    count: int = 1
    at_s: float = 0.0
    gap_s: float = 0.0
    priority: bool = False
    kind = "burst"

    def _events(self, spec):
        for i in range(self.count):
            yield PostEvent(
                at_s=self.at_s + i * self.gap_s,
                source=self.source,
                dest=self.dest,
                payload=self.payload,
                priority=self.priority,
            )

    def _params(self) -> Dict:
        return {
            "source": self.source,
            "count": self.count,
            "at_s": self.at_s,
            "gap_s": self.gap_s,
            **_message_params(self.dest, self.payload, self.priority),
        }


@dataclass(frozen=True)
class Periodic(Workload):
    """``count`` messages at a fixed ``period_s`` starting at ``start_s``."""

    source: str
    dest: Address
    payload: bytes = b""
    period_s: float = 1.0
    count: int = 1
    start_s: float = 0.0
    priority: bool = False
    kind = "periodic"

    def _events(self, spec):
        for i in range(self.count):
            yield PostEvent(
                at_s=self.start_s + i * self.period_s,
                source=self.source,
                dest=self.dest,
                payload=self.payload,
                priority=self.priority,
            )

    def _params(self) -> Dict:
        return {
            "source": self.source,
            "period_s": self.period_s,
            "count": self.count,
            "start_s": self.start_s,
            **_message_params(self.dest, self.payload, self.priority),
        }


@dataclass(frozen=True)
class RandomTraffic(Workload):
    """Seeded pseudo-random traffic over the spec's short-addressed nodes.

    Sources default to every short-addressed node; each message picks
    a different node as destination, a payload length uniform in
    ``[min_bytes, max_bytes]``, random payload bytes, a random FU-ID,
    and carries the priority flag with probability
    ``priority_fraction``.  Inter-post gaps are uniform in
    ``[0.5, 1.5] x mean_gap_s``.  The schedule is a pure function of
    ``(seed, spec)`` — identical on every backend and every run.
    """

    seed: int = 0
    count: int = 10
    mean_gap_s: float = 0.01
    start_s: float = 0.0
    min_bytes: int = 1
    max_bytes: int = 8
    sources: Optional[Tuple[str, ...]] = None
    priority_fraction: float = 0.0
    kind = "random"

    def _events(self, spec):
        rng = random.Random(self.seed)
        addressable = [
            node for node in spec.nodes if node.short_prefix is not None
        ]
        if len(addressable) < 2:
            raise ConfigurationError(
                "RandomTraffic needs at least two short-addressed nodes"
            )
        sources = self.sources or tuple(node.name for node in addressable)
        t = self.start_s
        for _ in range(self.count):
            t += rng.uniform(0.5, 1.5) * self.mean_gap_s
            source = rng.choice(sources)
            dest_node = rng.choice(
                [node for node in addressable if node.name != source]
            )
            n_bytes = rng.randint(self.min_bytes, self.max_bytes)
            payload = bytes(rng.randrange(256) for _ in range(n_bytes))
            yield PostEvent(
                at_s=t,
                source=source,
                dest=Address.short(dest_node.short_prefix, rng.randint(0, 15)),
                payload=payload,
                priority=rng.random() < self.priority_fraction,
            )

    def _params(self) -> Dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "mean_gap_s": self.mean_gap_s,
            "start_s": self.start_s,
            "min_bytes": self.min_bytes,
            "max_bytes": self.max_bytes,
            "sources": list(self.sources) if self.sources else None,
            "priority_fraction": self.priority_fraction,
        }


@dataclass(frozen=True)
class Broadcast(Workload):
    """A broadcast on ``channel`` (Section 4.6) at ``at_s``."""

    source: str
    channel: int = 0
    payload: bytes = b""
    at_s: float = 0.0
    priority: bool = False
    kind = "broadcast"

    def _events(self, spec):
        yield PostEvent(
            at_s=self.at_s,
            source=self.source,
            dest=Address.broadcast(self.channel),
            payload=self.payload,
            priority=self.priority,
        )

    def _params(self) -> Dict:
        return {
            "source": self.source,
            "channel": self.channel,
            "payload": bytes(self.payload).hex(),
            "at_s": self.at_s,
            "priority": self.priority,
        }


@dataclass(frozen=True)
class Interrupt(Workload):
    """Assert ``node``'s always-on interrupt wire at ``at_s``."""

    node: str
    at_s: float = 0.0
    kind = "interrupt"

    def _events(self, spec):
        yield InterruptEvent(at_s=self.at_s, node=self.node)

    def _params(self) -> Dict:
        return {"node": self.node, "at_s": self.at_s}


@dataclass(frozen=True)
class Combined(Workload):
    """Several workloads merged into one schedule (built by ``+``)."""

    parts: Tuple[Workload, ...] = ()
    kind = "combined"

    def _events(self, spec):
        for part in self.parts:
            yield from part.compile(spec)

    def _params(self) -> Dict:
        return {"parts": [part.to_dict() for part in self.parts]}


# ----------------------------------------------------------------------
# Deserialisation.
# ----------------------------------------------------------------------
_WORKLOAD_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        OneShot, Burst, Periodic, RandomTraffic, Broadcast, Interrupt,
        Combined,
    )
}


def register_workload_kind(cls: type) -> type:
    """Register an out-of-tree :class:`Workload` subclass for
    :func:`workload_from_dict` dispatch (e.g. the campaign layer's
    chaos drill workload).  Returns ``cls`` so it can be used as a
    decorator.  Re-registering the same class is a no-op; claiming an
    existing kind with a different class is an error."""
    if not (isinstance(cls, type) and issubclass(cls, Workload) and cls.kind):
        raise ConfigurationError(
            "register_workload_kind needs a Workload subclass with a "
            f"non-empty 'kind', got {cls!r}"
        )
    existing = _WORKLOAD_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"workload kind {cls.kind!r} is already registered to "
            f"{existing.__name__}"
        )
    _WORKLOAD_KINDS[cls.kind] = cls
    return cls


def workload_from_dict(data: Dict, lenient: bool = False) -> Workload:
    """Rebuild a workload from :meth:`Workload.to_dict` output.

    ``lenient=True`` drops unknown parameters instead of failing, so
    documents written by a future schema (extra fields) still load —
    an unknown *kind* is always an error, because there is nothing to
    fall back to.
    """
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _WORKLOAD_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; expected one of "
            f"{sorted(_WORKLOAD_KINDS)}"
        )
    if lenient:
        known = {f.name for f in dataclasses.fields(cls)}
        data = {k: v for k, v in data.items() if k in known}
    if cls is Combined:
        return Combined(
            parts=tuple(
                workload_from_dict(part, lenient=lenient)
                for part in data["parts"]
            )
        )
    if "dest" in data:
        data["dest"] = _address_from_dict(data["dest"])
    if "payload" in data:
        data["payload"] = bytes.fromhex(data["payload"])
    if "sources" in data and data["sources"] is not None:
        data["sources"] = tuple(data["sources"])
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad {kind} workload parameters: {exc}"
        ) from None
