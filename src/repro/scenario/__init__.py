"""Declarative scenario API: specs, workloads, and a backend-agnostic runner.

This package turns every MBus experiment into a data structure
instead of a script:

* :mod:`repro.scenario.spec` — :class:`NodeSpec` / :class:`SystemSpec`
  describe a topology (membership, addressing, power gating, timing,
  watchdog, arbitration anchor) and round-trip through JSON.
* :mod:`repro.scenario.workload` — composable traffic primitives
  (:class:`OneShot`, :class:`Burst`, :class:`Periodic`, seeded
  :class:`RandomTraffic`, :class:`Broadcast`, :class:`Interrupt`)
  that compile to deterministic post/interrupt schedules with no
  backend dependence.
* :mod:`repro.scenario.runner` — :func:`run` executes a (spec,
  workload) pair on either simulation engine and returns a
  :class:`RunReport`.  Parameter studies live in
  :mod:`repro.campaign`; the old :func:`sweep` remains as a
  deprecated shim over a serial campaign.

A complete scenario fits in one JSON document (see
:func:`load_scenario` and ``python -m repro run`` / ``sweep``)::

    {
      "system":   { ... SystemSpec.to_dict() ... },
      "workload": { ... Workload.to_dict() ... },
      "sweep":    {"clock_hz": [100000.0, 400000.0]}   // optional
    }
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.scenario.runner import (
    BACKEND_REGISTRY,
    BACKEND_TABLE,
    BACKENDS,
    BackendInfo,
    RunReport,
    SweepPoint,
    backend_help,
    run,
    select_backend,
    sweep,
)
from repro.scenario.spec import NodeSpec, SystemSpec
from repro.scenario.workload import (
    Broadcast,
    Burst,
    Combined,
    Interrupt,
    InterruptEvent,
    OneShot,
    Periodic,
    PostEvent,
    RandomTraffic,
    Workload,
    register_workload_kind,
    workload_from_dict,
)


def load_scenario(
    source: Union[str, Dict],
) -> Tuple[SystemSpec, Workload, Optional[Dict]]:
    """Load ``(spec, workload, sweep_grid)`` from a JSON file or dict.

    ``source`` is a path to a scenario JSON document or an
    already-parsed dict with ``"system"`` and ``"workload"`` keys
    (``"sweep"`` optional, returned as-is or ``None``).
    """
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = source
    if "system" not in document or "workload" not in document:
        raise ConfigurationError(
            "a scenario document needs 'system' and 'workload' keys"
        )
    spec = SystemSpec.from_dict(document["system"])
    workload = workload_from_dict(document["workload"])
    return spec, workload, document.get("sweep")


__all__ = [
    "BACKEND_REGISTRY",
    "BACKEND_TABLE",
    "BACKENDS",
    "BackendInfo",
    "backend_help",
    "Broadcast",
    "Burst",
    "Combined",
    "Interrupt",
    "InterruptEvent",
    "NodeSpec",
    "OneShot",
    "Periodic",
    "PostEvent",
    "RandomTraffic",
    "RunReport",
    "SweepPoint",
    "SystemSpec",
    "Workload",
    "load_scenario",
    "run",
    "select_backend",
    "sweep",
    "register_workload_kind",
    "workload_from_dict",
]
