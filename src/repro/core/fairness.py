"""Fairness policies over mutable arbitration priority (Section 7).

"MBus does not guarantee fairness (nor does I2C) ... If mutable
priority is available, one fair scheme could automatically rotate
priority on every message."  This module implements exactly that
scheme on top of :meth:`MBusSystem.set_arbitration_anchor`, announcing
each rotation on the broadcast configuration channel the way the
runaway-length configuration travels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.addresses import Address
from repro.core.bus import MBusSystem, TransactionResult

#: Configuration-channel command: the next byte names the new anchor's
#: short prefix (0 = revert to the mediator-anchored default).
CMD_SET_ANCHOR = 0x02


class RotatingPriority:
    """Rotate the arbitration anchor across members on every message.

    Parameters
    ----------
    system:
        The bus to manage (built on attach).
    members:
        Names eligible to anchor, in rotation order.  Defaults to all
        non-power-gated, non-mediator members (the anchor holds
        always-on state).
    announce:
        When True, each rotation is also published as a broadcast on
        the configuration channel, as the paper suggests for MBus
        configuration state.  Announcements themselves complete as
        transactions and therefore advance the rotation too — just as
        they would on real hardware.
    """

    def __init__(
        self,
        system: MBusSystem,
        members: Optional[List[str]] = None,
        announce: bool = False,
    ):
        system.build()
        self.system = system
        self.announce = announce
        if members is None:
            members = [
                node.name
                for node in system.nodes
                if not node.config.is_mediator and not node.config.power_gated
            ]
        if not members:
            raise ValueError("rotating priority needs at least one member")
        self.members = list(members)
        self._index = 0
        self.rotations = 0
        self.wins_by_node: Dict[str, int] = {}
        system.on_transaction_complete.append(self._on_transaction)
        self._apply()

    # -- policy ------------------------------------------------------------
    @property
    def current_anchor(self) -> str:
        return self.members[self._index]

    def _on_transaction(self, result: TransactionResult) -> None:
        if result.tx_node is not None:
            self.wins_by_node[result.tx_node] = (
                self.wins_by_node.get(result.tx_node, 0) + 1
            )
        self.rotate()

    def rotate(self) -> None:
        """Advance to the next anchor (called after every message)."""
        self._index = (self._index + 1) % len(self.members)
        self.rotations += 1
        self._apply()

    def _apply(self) -> None:
        self.system.set_arbitration_anchor(self.current_anchor)
        if self.announce:
            anchor_prefix = self.system.node(self.current_anchor).config.short_prefix
            self.system.post(
                self.system.mediator.name,
                Address.broadcast(0),
                bytes([CMD_SET_ANCHOR, anchor_prefix or 0]),
            )

    def detach(self) -> None:
        """Stop rotating and restore the default priority scheme."""
        self.system.on_transaction_complete.remove(self._on_transaction)
        self.system.set_arbitration_anchor(None)


def fairness_index(wins_by_node: Dict[str, int]) -> float:
    """Jain's fairness index over per-node win counts (1.0 = fair)."""
    values = [v for v in wins_by_node.values() if v >= 0]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)
