"""Exception hierarchy for the MBus reproduction."""


class MBusError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(MBusError):
    """A system was assembled in a way the MBus spec forbids.

    Examples: two mediators, more than 14 short-prefixed nodes,
    duplicate short prefixes without enumeration, zero nodes.
    """


class AddressError(MBusError):
    """An address is malformed or outside its field's range."""


class ProtocolError(MBusError):
    """The bus observed a sequence of events the protocol forbids.

    The edge-accurate simulator raises this instead of silently
    mis-simulating — e.g. a node trying to transmit while a
    transaction it is part of is still in flight.
    """


class BusLockedError(MBusError):
    """A transaction failed to return the bus to idle.

    The paper's fault-tolerance requirement says this must be
    impossible for transient faults; the simulator raises it if a test
    scenario ever produces a hung bus, making regressions loud.
    """


class WallClockTimeout(MBusError):
    """A run exceeded its wall-clock budget.

    Raised cooperatively by the event loop when a per-trial
    ``wall_timeout_s`` expires (see
    :meth:`repro.sim.scheduler.Simulator.run`); campaign executors
    record it as a ``timeout`` outcome instead of aborting the
    campaign.  Distinct from the *simulated-time* ``timeout_s``, which
    bounds bus time, not host time.
    """


class TransientTrialError(MBusError):
    """Marker base class for errors worth retrying.

    Campaign executors treat subclasses (and :class:`OSError` /
    :class:`MemoryError`) as transient: the trial is re-attempted with
    exponential backoff up to the retry policy's ``max_attempts``
    before a failure record is written.
    """
