"""Hierarchical power domains and the four-edge wakeup sequence.

Figure 8 colours the MBus modules by power domain:

* **always-on** (green): sleep controller, wire controller, interrupt
  controller — powered continuously, drawing only leakage;
* **bus** (red): bus controller — powered during MBus transactions;
* **layer** (blue): layer controller and local clock — powered only
  when the node is active.

Section 3 ("Power-Aware") specifies that powering a gated circuit on
reliably requires four successive edges: release power gate, release
clock, release isolation, release reset.  MBus's key insight
(Section 4.4) is that the CLK edges of arbitration provide exactly
this sequence for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.constants import WAKEUP_EDGES, WAKEUP_STEPS
from repro.sim.scheduler import Simulator


@dataclass(frozen=True)
class PowerEvent:
    """One entry in a domain's power log."""

    time_ps: int
    domain: str
    action: str      # "on", "off", or a wakeup step name
    reason: str


@dataclass
class PowerDomain:
    """One power-gated region of a node, with on-time accounting."""

    sim: Simulator
    name: str
    always_on: bool = False
    is_on: bool = False
    _on_since_ps: Optional[int] = None
    on_time_ps: int = 0
    wake_count: int = 0
    log: List[PowerEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.always_on:
            self.is_on = True
            self._on_since_ps = 0

    def power_on(self, reason: str) -> None:
        if self.is_on:
            return
        self.is_on = True
        self.wake_count += 1
        self._on_since_ps = self.sim.now
        self.log.append(PowerEvent(self.sim.now, self.name, "on", reason))

    def power_off(self, reason: str) -> None:
        if self.always_on:
            raise ValueError(f"domain {self.name} is always-on")
        if not self.is_on:
            return
        self.is_on = False
        self.on_time_ps += self.sim.now - self._on_since_ps
        self._on_since_ps = None
        self.log.append(PowerEvent(self.sim.now, self.name, "off", reason))

    def total_on_time_ps(self) -> int:
        """Accumulated on-time including a currently-open interval."""
        total = self.on_time_ps
        if self.is_on and self._on_since_ps is not None:
            total += self.sim.now - self._on_since_ps
        return total


class WakeupSequencer:
    """Steps a power domain through the four-edge wakeup sequence.

    One step is taken per bus-clock edge (Section 4.4 / Figure 6); on
    the fourth edge the domain is powered and ``on_awake`` fires.  The
    sequencer is idempotent: arming an already-on domain is a no-op,
    matching hardware where the gates are already released.
    """

    def __init__(
        self,
        domain: PowerDomain,
        on_awake: Optional[Callable[[], None]] = None,
    ):
        self.domain = domain
        self.on_awake = on_awake
        self._step = 0
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def in_progress(self) -> bool:
        return self._armed and self._step > 0

    def arm(self, reason: str = "wakeup") -> None:
        """Begin a wakeup; subsequent :meth:`edge` calls advance it.

        Re-arming while a sequence is in flight is a no-op, so feeding
        ``arm`` on every observed edge is safe.
        """
        if self.domain.is_on or self._armed:
            return
        self._armed = True
        self._step = 0
        self._reason = reason

    def disarm(self) -> None:
        self._armed = False
        self._step = 0

    def edge(self) -> None:
        """Feed one bus-clock edge to the sequencer."""
        if not self._armed or self.domain.is_on:
            return
        step_name = WAKEUP_STEPS[self._step]
        self.domain.log.append(
            PowerEvent(
                self.domain.sim.now,
                self.domain.name,
                f"release_{step_name}",
                self._reason,
            )
        )
        self._step += 1
        if self._step >= WAKEUP_EDGES:
            self._armed = False
            self._step = 0
            self.domain.power_on(self._reason)
            if self.on_awake is not None:
                self.on_awake()
