"""Resumable messages (Section 7, "Long Messages and Latency").

"The design of MBus lends itself well to resuming an interrupted
transmission (both TX and RX nodes know how far through a message
they were) ... One idea is to leverage one or more functional units
as well-known resumable message destinations to indicate to all nodes
that this message may be opportunistically interrupted."

This module implements that idea: functional unit 15 is the
well-known resumable destination.  A transfer is chunked behind a
small offset header; if a transaction is killed (third-party
interjection, receiver abort, general error) the sender resumes from
its conservative progress estimate, and the receiver reassembles by
offset — tolerating overlap, since a resend may repeat bytes the
receiver already holds.

The paper also notes the costs: "nodes must have buffer(s) for
multiple in-flight transactions and preserve state across
transactions" — which is exactly the state these two classes carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.addresses import Address
from repro.core.bus import MBusSystem
from repro.core.errors import ProtocolError
from repro.core.messages import ControlCode, Message, ReceivedMessage
from repro.core.node import MBusNode

#: The well-known resumable functional unit.
FU_RESUMABLE = 15

#: Header: [stream_id, offset_hi, offset_mid, offset_lo]
HEADER_BYTES = 4


def _header(stream_id: int, offset: int) -> bytes:
    if not 0 <= stream_id <= 0xFF:
        raise ProtocolError("stream id must fit one byte")
    if not 0 <= offset < (1 << 24):
        raise ProtocolError("offset must fit 24 bits")
    return bytes([stream_id]) + offset.to_bytes(3, "big")


@dataclass
class _Stream:
    """Receiver-side reassembly state for one stream id."""

    total: Optional[int] = None
    chunks: Dict[int, bytes] = field(default_factory=dict)

    def add(self, offset: int, data: bytes) -> None:
        self.chunks[offset] = data

    def assembled(self) -> bytes:
        """Merge chunks by offset; later writes win on overlap."""
        if not self.chunks:
            return b""
        end = max(off + len(d) for off, d in self.chunks.items())
        buffer = bytearray(end)
        have = bytearray(end)
        for offset in sorted(self.chunks):
            data = self.chunks[offset]
            buffer[offset : offset + len(data)] = data
            have[offset : offset + len(data)] = b"\x01" * len(data)
        if not all(have):
            raise ProtocolError("stream has gaps; transfer incomplete")
        return bytes(buffer)

    def contiguous_prefix(self) -> int:
        """Bytes received without gaps from offset 0."""
        have = 0
        for offset in sorted(self.chunks):
            if offset > have:
                break
            have = max(have, offset + len(self.chunks[offset]))
        return have


class ResumableReceiver:
    """Attach to a node to accept resumable transfers on FU 15."""

    def __init__(self, node: MBusNode) -> None:
        self.node = node
        self.streams: Dict[int, _Stream] = {}
        self.completed: Dict[int, bytes] = {}
        self.on_complete: Optional[Callable[[int, bytes], None]] = None
        node.layer.register_handler(FU_RESUMABLE, self._on_chunk)

    def _on_chunk(self, message: ReceivedMessage) -> None:
        payload = message.payload
        if len(payload) < HEADER_BYTES:
            return  # a truncated fragment that lost even its header
        stream_id = payload[0]
        offset = int.from_bytes(payload[1:4], "big")
        data = payload[HEADER_BYTES:]
        stream = self.streams.setdefault(stream_id, _Stream())
        if data:
            stream.add(offset, data)

    def finish(self, stream_id: int) -> bytes:
        """Close a stream and return the reassembled payload."""
        stream = self.streams.pop(stream_id, None)
        if stream is None:
            raise ProtocolError(f"no stream {stream_id}")
        payload = stream.assembled()
        self.completed[stream_id] = payload
        if self.on_complete is not None:
            self.on_complete(stream_id, payload)
        return payload

    def progress(self, stream_id: int) -> int:
        stream = self.streams.get(stream_id)
        return stream.contiguous_prefix() if stream else 0


class ResumableSender:
    """Send a long payload as an interruptible, resumable stream."""

    def __init__(self, system: MBusSystem, source: str):
        self.system = system
        self.source = source
        self._next_stream = 0

    def send(
        self,
        dest_prefix: int,
        payload: bytes,
        chunk_bytes: int = 256,
        max_attempts: int = 64,
    ) -> int:
        """Deliver ``payload``, resuming across interruptions.

        Returns the stream id.  Each attempt sends one chunk; a killed
        chunk is retried from the sender's conservative progress
        estimate (``TxOutcome.bytes_sent`` minus the header).
        """
        if chunk_bytes <= HEADER_BYTES:
            raise ProtocolError("chunk size must exceed the header")
        stream_id = self._next_stream & 0xFF
        self._next_stream += 1
        node = self.system.node(self.source)
        offset = 0
        attempts = 0
        while offset < len(payload):
            if attempts >= max_attempts:
                raise ProtocolError(
                    f"stream {stream_id} stalled after {attempts} attempts"
                )
            attempts += 1
            data = payload[offset : offset + chunk_bytes - HEADER_BYTES]
            message = Message(
                dest=Address.short(dest_prefix, FU_RESUMABLE),
                payload=_header(stream_id, offset) + data,
            )
            results_before = len(node.results)
            node.post(message)
            self.system.run_until_idle()
            outcome = self._outcome_for(node, message, results_before)
            if outcome is not None and outcome.success:
                offset += len(data)
            elif outcome is not None and outcome.control in (
                ControlCode.EOM_ACK,
                ControlCode.RX_ABORT,
            ):
                # Resume from confirmed progress within this chunk.
                # Only these codes imply the receiver retained a
                # prefix: an RX abort delivers the truncated fragment,
                # and a non-success EOM_ACK is a forged/partial
                # completion whose fragment was likewise delivered.
                # After a NAK or general error the receiver kept
                # nothing, so the whole chunk is resent.
                confirmed = max(0, outcome.bytes_sent - HEADER_BYTES)
                offset += min(confirmed, len(data))
        return stream_id

    @staticmethod
    def _outcome_for(node, message, results_before):
        for outcome in node.results[results_before:]:
            if outcome.message is message:
                return outcome
        return None
