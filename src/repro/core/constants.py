"""Protocol constants and timing parameters.

Everything here is traceable to a specific statement in the paper;
the section reference is given next to each constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.scheduler import NS

# --------------------------------------------------------------------------
# Protocol structure (Section 6.1: "MBus transactions require arbitration
# (3 cycles), addressing (8 or 32 cycles), interjection (5 cycles), and
# control (3 cycles), an overhead of 19 or 43 cycles").
# --------------------------------------------------------------------------
ARBITRATION_CYCLES = 3
ADDR_CYCLES_SHORT = 8
ADDR_CYCLES_FULL = 32
INTERJECTION_CYCLES = 5
CONTROL_CYCLES = 3

OVERHEAD_CYCLES_SHORT = (
    ARBITRATION_CYCLES + ADDR_CYCLES_SHORT + INTERJECTION_CYCLES + CONTROL_CYCLES
)
OVERHEAD_CYCLES_FULL = (
    ARBITRATION_CYCLES + ADDR_CYCLES_FULL + INTERJECTION_CYCLES + CONTROL_CYCLES
)
assert OVERHEAD_CYCLES_SHORT == 19
assert OVERHEAD_CYCLES_FULL == 43

# --------------------------------------------------------------------------
# Addressing (Sections 4.6, 4.7).
# --------------------------------------------------------------------------
SHORT_PREFIX_BITS = 4
FULL_PREFIX_BITS = 20
FU_ID_BITS = 4
SHORT_ADDR_BITS = SHORT_PREFIX_BITS + FU_ID_BITS            # 8
FULL_ADDR_BITS = 32                                          # RX_ADDR[31:0]
BROADCAST_PREFIX_VALUE = 0x0       # prefix 0 reserved for broadcast
FULL_ADDR_MARKER_VALUE = 0xF       # short prefix 0xF flags a full address
USABLE_SHORT_PREFIXES = 14         # 16 minus broadcast minus 0xF marker
GLOBAL_ADDRESS_SPACE = 2 ** (FULL_PREFIX_BITS + FU_ID_BITS)  # 2^24 (Table 1)

# --------------------------------------------------------------------------
# Wakeup (Section 3, "Power-Aware": four successive edges).
# --------------------------------------------------------------------------
WAKEUP_EDGES = 4
WAKEUP_STEPS = ("power_gate", "clock", "isolation", "reset")

# --------------------------------------------------------------------------
# Policy (Section 7).
# --------------------------------------------------------------------------
MIN_PROGRESS_BYTES = 4             # arbitration winner may send >= 4 bytes
MIN_MAX_MESSAGE_BYTES = 1024       # runaway watchdog: minimum maximum length


def clamp_max_message_bytes(n_bytes: int) -> int:
    """Runaway-watchdog limit floor (Section 7), shared by both
    backends so the cutoff can never diverge between modes."""
    return max(n_bytes, MIN_MAX_MESSAGE_BYTES)


#: Settle delay between a node observing a transaction boundary and it
#: acting (re-requesting, pulsing, auto-sleeping), in node delays.
#: Shared by MBusNode._settle_ps and the transaction-level planner so
#: the two backends agree on inter-transaction spacing.
NODE_SETTLE_FACTOR = 4

# --------------------------------------------------------------------------
# Physical timing (Section 6.1: max node-to-node delay 10 ns; Section
# 6.3.2: implemented clock tunable 10 kHz .. 6.67 MHz, default 400 kHz).
# --------------------------------------------------------------------------
MAX_NODE_TO_NODE_DELAY_NS = 10
DEFAULT_CLOCK_HZ = 400_000
MIN_CLOCK_HZ = 10_000
MAX_IMPLEMENTED_CLOCK_HZ = 6_670_000
MAX_SHORT_ADDRESSED_NODES = 14

# Interjection detector: DATA toggles counted while CLK is held high
# (Section 4.9, "a saturating counter clocked by DATA and reset by CLK").
INTERJECTION_DETECT_TOGGLES = 3


@dataclass(frozen=True)
class ProtocolOverheads:
    """Cycle overheads for one MBus transaction (Section 6.1)."""

    arbitration: int = ARBITRATION_CYCLES
    addressing_short: int = ADDR_CYCLES_SHORT
    addressing_full: int = ADDR_CYCLES_FULL
    interjection: int = INTERJECTION_CYCLES
    control: int = CONTROL_CYCLES

    def total(self, full_address: bool = False) -> int:
        """Total non-data cycles: 19 short / 43 full."""
        addressing = self.addressing_full if full_address else self.addressing_short
        return self.arbitration + addressing + self.interjection + self.control


@dataclass(frozen=True)
class MBusTiming:
    """Physical timing configuration for the edge-accurate simulator.

    The default clock is deliberately slow relative to the ring delay
    (as in the real 400 kHz systems of Section 6.3) so that functional
    behaviour is insensitive to propagation skew; the analytic maximum
    frequency model lives in :mod:`repro.timing.ring_timing`.
    """

    clock_hz: float = DEFAULT_CLOCK_HZ
    node_delay_ps: int = MAX_NODE_TO_NODE_DELAY_NS * NS
    drive_delay_ps: int = 1 * NS        # pad driver turn-on
    mediator_wakeup_ps: int = 2_000 * NS  # mediator self-start latency
    #: Interjection-detector depth (DATA toggles while CLK high).
    interjection_threshold: int = INTERJECTION_DETECT_TOGGLES

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.node_delay_ps <= 0:
            raise ValueError("node_delay_ps must be positive")

    @property
    def period_ps(self) -> int:
        """Full bus clock period in picoseconds."""
        return int(round(1e12 / self.clock_hz))

    @property
    def half_period_ps(self) -> int:
        return self.period_ps // 2

    def ring_delay_ps(self, n_nodes: int) -> int:
        """Worst-case propagation once around a ring of ``n_nodes``.

        Deliberately a bare multiply: a per-count memo dict was
        benchmarked here and lost (dict lookup + branch costs ~2x the
        integer multiplication it would avoid).
        """
        return n_nodes * self.node_delay_ps
