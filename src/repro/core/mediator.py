"""Mediator: clock generation, arbitration mediation, interjection.

Section 4.2: every MBus system has exactly one mediator, responsible
for generating the bus clock and resolving arbitration.  The mediator
is the only component that must self-start — "the mediator allows that
self-start requirement to be contained within a single, reusable
component."

Responsibilities implemented here:

* watch DATA-in while idle and self-start on a falling edge (4.3);
* refuse to forward DATA during arbitration so the ring is broken at
  a fixed point, giving nodes a topological priority (4.3);
* detect "no winner" at the arbitration latch and raise a general
  error via a mediator-initiated interjection (Figure 6);
* detect interjection requests (CLK-in stuck high) and run the
  interjection sequence — toggling DATA while CLK is held high (4.9);
* impose a maximum message length via a runaway-message counter
  (Section 7), configurable over the broadcast configuration channel;
* clock the two-cycle control sequence and return the bus to idle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import constants
from repro.core.errors import BusLockedError
from repro.core.interjection import InterjectionDetector
from repro.core.wire_controller import LineController
from repro.sim.scheduler import Simulator
from repro.sim.signals import EdgeType, Net


class MediatorPhase(enum.Enum):
    IDLE = "idle"
    WAKING = "waking"          # self-start latency after DATA fell
    ACTIVE = "active"          # generating the bus clock
    INTERJECT = "interject"    # toggling DATA while CLK held high
    CONTROL = "control"        # clocking the 2-bit control sequence


@dataclass
class MediatorReport:
    """Per-transaction summary emitted when the bus returns to idle."""

    index: int
    start_ps: int
    end_ps: int
    clock_cycles: int           # rising edges generated before control
    control_cycles: int
    control_bits: tuple
    general_error: bool
    error_reason: str = ""


@dataclass
class MediatorStats:
    transactions: int = 0
    general_errors: int = 0
    runaway_aborts: int = 0
    interjection_sequences: int = 0
    clock_edges_generated: int = 0


class MediatorLogic:
    """The mediator state machine, sharing a node's pads.

    ``member_requesting`` is a callable letting the attached member
    engine (if any) claim top arbitration priority: when it reports
    True at self-start, the mediator drives DATA low (its own request)
    instead of high, so every downstream requester loses (Section 7:
    "the mediator always has top priority").
    """

    def __init__(
        self,
        sim: Simulator,
        timing: constants.MBusTiming,
        data_ctl: LineController,
        clk_ctl: LineController,
        data_in: Net,
        clk_in: Net,
        n_nodes_hint: Callable[[], int],
        member_requesting: Callable[[], bool] = lambda: False,
        on_member_should_arbitrate: Optional[Callable[[], None]] = None,
        on_complete: Optional[Callable[[MediatorReport], None]] = None,
    ):
        self.sim = sim
        self.timing = timing
        self.data_ctl = data_ctl
        self.clk_ctl = clk_ctl
        self.data_in = data_in
        self.clk_in = clk_in
        self.n_nodes_hint = n_nodes_hint
        self.member_requesting = member_requesting
        self.on_member_should_arbitrate = on_member_should_arbitrate
        self.on_complete = on_complete

        self.phase = MediatorPhase.IDLE
        self.max_message_bytes = constants.MIN_MAX_MESSAGE_BYTES
        self.stats = MediatorStats()
        #: Mutable priority (Section 7): when an external arbitration
        #: anchor is configured, the mediator keeps forwarding DATA
        #: through arbitration and delegates the no-winner check to
        #: the anchor node.
        self.external_anchor = False

        self._rising = 0
        self._start_ps = 0
        self._self_tx = False
        self._general_error = False
        self._error_reason = ""
        self._toggle_event = None
        self._toggle_count = 0
        self._ctl_rising = 0
        self._ctl_bits: List[int] = []
        self._transaction_index = 0
        self._clock_event = None
        self._wake_event = None
        self._forward_data_pending = False
        self._member_start_pending = False

        self._detector = InterjectionDetector(
            data_in,
            clk_in,
            threshold=timing.interjection_threshold,
            on_detect=self._on_own_detector,
        )
        data_in.on_edge(self._on_data_edge)

    # ------------------------------------------------------------------
    # Idle watching & self-start (4.2, 4.3).
    # ------------------------------------------------------------------
    def _on_data_edge(self, net: Net, edge: EdgeType) -> None:
        # Hot path: EdgeType is an IntEnum; FALLING == 0.
        if edge == 0 and self.phase is MediatorPhase.IDLE:
            self._schedule_self_start()

    def _schedule_self_start(self) -> None:
        if self.phase is not MediatorPhase.IDLE:
            return
        self.phase = MediatorPhase.WAKING
        self._wake_event = self.sim.schedule(
            self.timing.mediator_wakeup_ps, self._self_start
        )

    def start_for_member(self) -> None:
        """Begin a transaction on behalf of the local member engine.

        The member does not need to pull DATA low and wait for the
        mediator to notice — it *is* on the mediator node.
        """
        if self.phase is MediatorPhase.IDLE:
            self.phase = MediatorPhase.WAKING
            self._wake_event = self.sim.schedule(
                self.timing.mediator_wakeup_ps, self._self_start
            )
        else:
            # The member re-requested while the previous transaction is
            # still winding down (control cycles or the return-to-idle
            # settle).  A *wire* requester in that window is caught by
            # the DATA-low check in _return_to_idle; the co-located
            # member never touches DATA, so latch its request here and
            # service it the same way.
            self._member_start_pending = True

    def _self_start(self) -> None:
        self.phase = MediatorPhase.ACTIVE
        self._member_start_pending = False
        self._rising = 0
        self._start_ps = self.sim.now
        self._general_error = False
        self._error_reason = ""
        self._ctl_bits = []
        self._forward_data_pending = False
        self._self_tx = self.member_requesting()
        if self._self_tx and self.on_member_should_arbitrate is not None:
            self.on_member_should_arbitrate()
        if self.external_anchor:
            # Mutable priority: the anchor node breaks the ring; the
            # mediator only clocks (its member, if requesting, drove
            # DATA low itself like any other member).
            pass
        else:
            # Break the DATA ring: drive high so the topologically
            # first requester sees DATAIN = 1 — or low when the local
            # member is requesting, so every downstream requester
            # loses.
            self.data_ctl.drive(0 if self._self_tx else 1)
        self.clk_ctl.drive(1)  # take ownership of CLK (already high)
        self._schedule_clock_toggle(0)

    # ------------------------------------------------------------------
    # Clock generation (toggling every half period).
    # ------------------------------------------------------------------
    def _schedule_clock_toggle(self, value: int) -> None:
        # Bound methods, not lambdas: this runs twice per bus cycle for
        # the lifetime of the system, so avoid a closure per half period.
        self._clock_event = self.sim.schedule(
            self.timing.half_period_ps,
            self._clock_toggle_high if value else self._clock_toggle_low,
        )

    def _clock_toggle_low(self) -> None:
        self._clock_toggle(0)

    def _clock_toggle_high(self) -> None:
        self._clock_toggle(1)

    def _clock_toggle(self, value: int) -> None:
        if self.phase is not MediatorPhase.ACTIVE:
            return
        if value == 1:
            # About to drive a rising edge: if CLK-in has not followed
            # our previous falling edge, a node is holding CLK high —
            # an interjection request (4.9).
            if self.clk_in.value != 0:
                self._start_interjection(general=False)
                return
            self.clk_ctl.drive(1)
            self.stats.clock_edges_generated += 1
            self._rising += 1
            self._after_rising(self._rising)
            if self.phase is MediatorPhase.ACTIVE:
                self._schedule_clock_toggle(0)
        else:
            self.clk_ctl.drive(0)
            self.stats.clock_edges_generated += 1
            if self._forward_data_pending:
                # Deferred from the arbitration latch: resume
                # forwarding on a falling edge so no node's latch is
                # disturbed mid-sample.
                self._forward_data_pending = False
                self.data_ctl.forward()
            self._schedule_clock_toggle(1)

    def _after_rising(self, r: int) -> None:
        if r == 1 and not self.external_anchor:
            # Arbitration latch: no requester means a null transaction
            # (Figure 6) -> general error.
            if not self._self_tx and self.data_in.value == 1:
                self._start_interjection(
                    general=True, reason="no-arbitration-winner"
                )
                return
            if not self._self_tx:
                # Resume forwarding (at the next falling edge) so
                # priority requests and, later, data bits can cross
                # the mediator (Figure 5).
                self._forward_data_pending = True
        if r > self._watchdog_limit_cycles():
            self.stats.runaway_aborts += 1
            self._start_interjection(general=True, reason="runaway-message")

    def _watchdog_limit_cycles(self) -> int:
        return (
            constants.ARBITRATION_CYCLES
            + constants.ADDR_CYCLES_FULL
            + 8 * self.max_message_bytes
            + 8
        )

    def request_interjection_from_member(self) -> None:
        """The co-located member engine finished its message (EoM).

        A normal transmitter holds its CLK-out high; the mediator's
        own member cannot (it *generates* CLK), so it calls in here
        instead and the mediator runs the interjection directly.
        """
        if self.phase is MediatorPhase.ACTIVE:
            self._start_interjection(general=False)

    def set_max_message_bytes(self, n_bytes: int) -> None:
        """Runaway watchdog limit (Section 7), min-max 1 kB."""
        self.max_message_bytes = constants.clamp_max_message_bytes(n_bytes)

    # ------------------------------------------------------------------
    # Interjection sequence (4.9, Figures 6 and 7).
    # ------------------------------------------------------------------
    def _start_interjection(self, general: bool, reason: str = "") -> None:
        self.phase = MediatorPhase.INTERJECT
        self.stats.interjection_sequences += 1
        if general:
            self._general_error = True
            self._error_reason = reason
            if reason == "no-arbitration-winner":
                self.stats.general_errors += 1
        if self._clock_event is not None:
            self._clock_event.cancel()
        # Hold CLK high ring-wide (restoring it if we had driven the
        # falling edge that a holder absorbed).
        self.clk_ctl.drive(1)
        self._toggle_count = 0
        settle = 2 * self.timing.ring_delay_ps(max(self.n_nodes_hint(), 2))
        self.sim.schedule(settle, self._toggle_data)

    def _toggle_data(self) -> None:
        if self.phase is not MediatorPhase.INTERJECT:
            return
        max_toggles = 8 * constants.INTERJECTION_DETECT_TOGGLES + 16
        if self._toggle_count > max_toggles:
            raise BusLockedError(
                "interjection toggles did not circulate the ring"
            )
        self._toggle_count += 1
        next_value = self._toggle_count % 2  # 1, 0, 1, 0 ... ends high
        self.data_ctl.drive(next_value)
        interval = 2 * self.timing.ring_delay_ps(max(self.n_nodes_hint(), 2))
        self._toggle_event = self.sim.schedule(interval, self._toggle_data)

    def _on_own_detector(self) -> None:
        """Our own detector fired: the toggles circulated the ring."""
        if self.phase is not MediatorPhase.INTERJECT:
            return
        if self._toggle_event is not None:
            self._toggle_event.cancel()
        self.data_ctl.drive(1)  # park DATA high before control
        settle = 2 * self.timing.ring_delay_ps(max(self.n_nodes_hint(), 2))
        self.sim.schedule(settle, self._begin_control)

    # ------------------------------------------------------------------
    # Control sequence: 2 bits + return to idle (3 cycles).
    # ------------------------------------------------------------------
    def _begin_control(self) -> None:
        self.phase = MediatorPhase.CONTROL
        self._ctl_rising = 0
        self._ctl_bits = []
        if not self._general_error:
            # Forward so the transmitter's and receiver's control bits
            # circulate; in the general-error case we keep driving.
            self.data_ctl.forward()
        self._schedule_control_toggle(0)

    def _schedule_control_toggle(self, value: int) -> None:
        self.sim.schedule(
            self.timing.half_period_ps,
            self._control_toggle_high if value else self._control_toggle_low,
        )

    def _control_toggle_low(self) -> None:
        self._control_toggle(0)

    def _control_toggle_high(self) -> None:
        self._control_toggle(1)

    def _control_toggle(self, value: int) -> None:
        if self.phase is not MediatorPhase.CONTROL:
            return
        if value == 0:
            falling_slot = self._ctl_rising + 1
            if self._general_error and falling_slot in (1, 2):
                self.data_ctl.drive(0)
            elif falling_slot == 3:
                # Idle-return cycle: drive DATA high (Figure 7 step 7).
                self.data_ctl.drive(1)
            self.clk_ctl.drive(0)
            self.stats.clock_edges_generated += 1
            self._schedule_control_toggle(1)
        else:
            self.clk_ctl.drive(1)
            self.stats.clock_edges_generated += 1
            self._ctl_rising += 1
            if self._ctl_rising in (1, 2):
                self._ctl_bits.append(self.data_in.value)
                self._schedule_control_toggle(0)
            else:
                self._finish_transaction()

    def _finish_transaction(self) -> None:
        report = MediatorReport(
            index=self._transaction_index,
            start_ps=self._start_ps,
            end_ps=self.sim.now,
            clock_cycles=self._rising,
            control_cycles=self._ctl_rising,
            control_bits=tuple(self._ctl_bits),
            general_error=self._general_error,
            error_reason=self._error_reason,
        )
        self._transaction_index += 1
        self.stats.transactions += 1
        settle = 2 * self.timing.ring_delay_ps(max(self.n_nodes_hint(), 2))
        self.sim.schedule(settle, self._return_to_idle)
        if self.on_complete is not None:
            self.on_complete(report)

    def _return_to_idle(self) -> None:
        self.phase = MediatorPhase.IDLE
        self.data_ctl.forward()
        self.clk_ctl.forward()
        # A request may already be pending on the wire (a node pulled
        # DATA low while we were finishing) or latched by the local
        # member (start_for_member during wind-down); catch either.
        if self._member_start_pending or self.data_in.value == 0:
            self._member_start_pending = False
            self._schedule_self_start()
