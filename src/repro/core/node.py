"""Node shell: one MBus chip, composed of the Figure-8 modules.

A node owns four pads (DATA-in/out, CLK-in/out), two line controllers
(the always-on wire controller), an interjection detector, a sleep
controller (wakeup sequencers over three power domains), an interrupt
controller (null-transaction generator), a bus-controller engine, and
a generic layer controller.

Power domains follow Figure 8's colouring:

* ``always_on``  — sleep + wire + interrupt controllers (green);
* ``bus``        — bus controller, powered during transactions (red);
* ``layer``      — layer controller + local clock, powered only while
  the node is active (blue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import constants
from repro.core.addresses import Address
from repro.core.bus_controller import (
    EngineConfig,
    EngineHooks,
    MemberEngine,
    Phase,
    Role,
    TxOutcome,
)
from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.interjection import InterjectionDetector
from repro.core.layer_controller import GenericLayerController
from repro.core.mediator import MediatorLogic
from repro.core.messages import ControlCode, Message, ReceivedMessage
from repro.core.power_domain import PowerDomain, WakeupSequencer
from repro.core.wire_controller import LineController
from repro.sim.scheduler import Simulator
from repro.sim.signals import EdgeType, Net


@dataclass
class NodeConfig:
    """Static configuration of one MBus node."""

    name: str
    short_prefix: Optional[int] = None
    full_prefix: Optional[int] = None
    broadcast_channels: frozenset = frozenset({0})
    power_gated: bool = False
    auto_sleep: Optional[bool] = None     # default: same as power_gated
    rx_buffer_bytes: int = constants.MIN_MAX_MESSAGE_BYTES
    ack_policy: Optional[Callable[[bytes], bool]] = None
    memory_words: int = 1024
    is_mediator: bool = False
    #: Per-node forwarding delay override (ps).  Chips from different
    #: processes (65/130/180 nm, FPGA) have different pad/mux delays;
    #: the spec only requires each to stay under 10 ns (Section 6.5).
    node_delay_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.short_prefix is None and self.full_prefix is None:
            if not self.is_mediator:
                raise ConfigurationError(
                    f"node {self.name!r} needs a short or full prefix"
                )
        if self.auto_sleep is None:
            self.auto_sleep = self.power_gated
        if self.is_mediator and self.power_gated:
            raise ConfigurationError(
                "the mediator's frontend must be able to self-start; "
                "model it as a non-power-gated node"
            )


class MBusNode:
    """One chip on the ring.  Created by :class:`repro.core.bus.MBusSystem`."""

    def __init__(self, sim: Simulator, timing: constants.MBusTiming, config: NodeConfig):
        self.sim = sim
        self.timing = timing
        self.config = config
        self.name = config.name

        # Power domains (Figure 8 colouring).
        self.always_on = PowerDomain(sim, f"{self.name}.always_on", always_on=True)
        self.bus_domain = PowerDomain(sim, f"{self.name}.bus")
        self.layer_domain = PowerDomain(sim, f"{self.name}.layer")
        if not config.power_gated:
            self.bus_domain.power_on("not-power-gated")
            self.layer_domain.power_on("not-power-gated")

        self.layer = GenericLayerController(memory_words=config.memory_words)
        self.inbox: List[ReceivedMessage] = []
        self.results: List[TxOutcome] = []
        self.dropped: List[ReceivedMessage] = []
        self.pending_interrupt = False
        self.on_interrupt: Optional[Callable[["MBusNode"], None]] = None
        self.on_result: Optional[Callable[["MBusNode", TxOutcome], None]] = None
        self.on_receive: Optional[Callable[["MBusNode", ReceivedMessage], None]] = None

        #: Set by MBusSystem when the system runs on the transaction-
        #: level fast path; node-level APIs then delegate to it instead
        #: of the edge-accurate engine (which is never attached).
        self.fast_backend = None

        # Wired in attach().
        self.din: Optional[Net] = None
        self.dout: Optional[Net] = None
        self.clkin: Optional[Net] = None
        self.clkout: Optional[Net] = None
        self.data_ctl: Optional[LineController] = None
        self.clk_ctl: Optional[LineController] = None
        self.detector: Optional[InterjectionDetector] = None
        self.engine: Optional[MemberEngine] = None
        self.mediator: Optional[MediatorLogic] = None

        self._bus_seq = WakeupSequencer(self.bus_domain, on_awake=self._on_bus_awake)
        self._layer_seq = WakeupSequencer(self.layer_domain)
        self._null_pulse_active = False

    # ------------------------------------------------------------------
    # Ring attachment (called once by the system builder).
    # ------------------------------------------------------------------
    def attach(self, din: Net, dout: Net, clkin: Net, clkout: Net) -> None:
        self.din, self.dout = din, dout
        self.clkin, self.clkout = clkin, clkout
        delay = self.config.node_delay_ps or self.timing.node_delay_ps
        self.data_ctl = LineController(
            din, dout, delay, self.timing.drive_delay_ps
        )
        self.clk_ctl = LineController(
            clkin, clkout, delay, self.timing.drive_delay_ps
        )
        hooks = EngineHooks(
            on_tx_done=self._on_tx_done,
            on_rx_done=self._on_rx_done,
            on_address_match=self._on_address_match,
            on_transaction_end=self._on_transaction_end,
            is_powered=lambda: self.bus_domain.is_on,
            request_mediator_interjection=self._request_mediator_interjection,
        )
        self.engine = MemberEngine(
            self.sim,
            EngineConfig(
                name=self.name,
                short_prefix=self.config.short_prefix,
                full_prefix=self.config.full_prefix,
                broadcast_channels=frozenset(self.config.broadcast_channels),
                rx_buffer_bytes=self.config.rx_buffer_bytes,
                ack_policy=self.config.ack_policy,
                is_mediator_member=self.config.is_mediator,
            ),
            self.data_ctl,
            self.clk_ctl,
            din,
            hooks,
        )
        self.detector = InterjectionDetector(
            din,
            clkin,
            threshold=self.timing.interjection_threshold,
            on_detect=self._on_interjection_detected,
        )
        din.on_edge(self._on_din_edge)
        clkin.on_edge(self._on_clk_edge)

    def attach_mediator_logic(
        self,
        n_nodes_hint: Callable[[], int],
        on_complete: Callable[..., None],
    ) -> None:
        """Instantiate the mediator FSM sharing this node's pads."""
        if not self.config.is_mediator:
            raise ConfigurationError(f"{self.name} is not the mediator node")
        self.mediator = MediatorLogic(
            self.sim,
            self.timing,
            self.data_ctl,
            self.clk_ctl,
            self.din,
            self.clkin,
            n_nodes_hint=n_nodes_hint,
            member_requesting=lambda: self.engine.role is Role.REQUESTER,
            on_complete=on_complete,
        )

    # ------------------------------------------------------------------
    # Application API.
    # ------------------------------------------------------------------
    def post(self, message: Message) -> None:
        """Queue a message; the node transmits it when it can.

        If the node is asleep the interrupt controller raises a null
        transaction first (Section 4.5) — the bus wakes the node, and
        the queued message goes out on the following transaction.
        """
        if self.fast_backend is not None:
            self.fast_backend.post_message(self, message)
            return
        self.engine.queue_message(message)
        self._kick()

    def trigger_interrupt(self) -> None:
        """Assert the always-on interrupt port (Section 4.5)."""
        if self.fast_backend is not None:
            self.fast_backend.trigger_interrupt(self)
            return
        self.pending_interrupt = True
        if not self.engine.busy:
            self._start_null_pulse()

    def request_interjection(self, reason: str = "latency-sensitive") -> None:
        """Kill the in-flight transaction from a third party (4.9).

        "This allows a node with a latency-sensitive message to
        interrupt an active transaction."  The request honours the
        minimum-progress policy (Section 7) and takes effect at the
        next latch edge once the winner has moved four bytes.
        """
        if self.fast_backend is not None:
            raise ProtocolError(
                "third-party interjection is an intra-transaction event; "
                "it requires the edge-accurate backend (mode='edge')"
            )
        self.engine.request_interjection(reason)

    def sleep(self) -> None:
        """Power-gate the layer and bus domains (application decision)."""
        if not self.config.power_gated:
            raise ProtocolError(f"{self.name} is not a power-gated design")
        if self._busy_for_sleep():
            raise ProtocolError("cannot sleep mid-transaction")
        if self.layer_domain.is_on:
            self.layer_domain.power_off("application-sleep")
        if self.bus_domain.is_on:
            self.bus_domain.power_off("application-sleep")

    def _busy_for_sleep(self) -> bool:
        if self.fast_backend is not None:
            return self.fast_backend.node_busy(self)
        return self.engine.busy

    def power_loss(self) -> None:
        """Brown-out: both gated domains collapse *right now*, even
        mid-transaction (the Section 3 robustness scenario).

        Unlike :meth:`sleep` this is not an application decision — it
        models the supply failing, so it ignores ``power_gated`` and
        busy-ness.  Transaction state in the bus domain is lost
        (:meth:`MemberEngine.power_loss_reset`), queued messages
        survive (they live in the layer's retained memory), and the
        always-on wire controllers revert to forwarding so the ring
        stays whole.  The node re-wakes through the normal four-edge
        sequence on subsequent bus activity.
        """
        if self.fast_backend is not None:
            raise ProtocolError(
                "mid-transaction power loss is an intra-transaction event; "
                "it requires the edge-accurate backend (mode='edge')"
            )
        if self.config.is_mediator:
            raise ProtocolError(
                "the mediator frontend must always self-start; member-node "
                "power loss is the supported fault (Section 4.2)"
            )
        self.engine.power_loss_reset()
        self.data_ctl.forward()
        self.clk_ctl.forward()
        self._bus_seq.disarm()
        self._layer_seq.disarm()
        self._null_pulse_active = False
        if self.bus_domain.is_on:
            self.bus_domain.power_off("fault:power-loss")
        if self.layer_domain.is_on:
            self.layer_domain.power_off("fault:power-loss")

    @property
    def is_fully_awake(self) -> bool:
        return self.bus_domain.is_on and self.layer_domain.is_on

    # ------------------------------------------------------------------
    # Wire events.
    # ------------------------------------------------------------------
    def _on_din_edge(self, _net: Net, edge: EdgeType) -> None:
        # Hot path: EdgeType is an IntEnum; FALLING == 0.
        if edge == 0 and self.engine.phase is Phase.IDLE:
            if not (self.config.is_mediator or self._null_pulse_active):
                self.engine.on_data_falling_idle()
                if not self.bus_domain.is_on:
                    self._bus_seq.arm("transaction")

    def _on_clk_edge(self, _net: Net, edge: EdgeType) -> None:
        if self.config.is_mediator:
            # The mediator node generates CLK; its member engine reacts
            # to the returning edges like everyone else, but its sleep
            # controller never gates the bus controller.
            self.engine.on_clk_edge(edge)
            return
        if edge == 0 and self._null_pulse_active:
            # Null transaction: resume forwarding before the
            # arbitration edge (Figure 6).
            self.data_ctl.forward()
            self._null_pulse_active = False
        if not self.bus_domain.is_on:
            self._bus_seq.arm("transaction")
        self._bus_seq.edge()
        self._layer_seq.edge()
        self.engine.on_clk_edge(edge)

    def _on_interjection_detected(self) -> None:
        self.engine.on_interjection_detected()

    # ------------------------------------------------------------------
    # Engine hooks.
    # ------------------------------------------------------------------
    def _on_bus_awake(self) -> None:
        if self.pending_interrupt:
            self._layer_seq.arm("interrupt")

    def _on_address_match(self, address: Address) -> None:
        if not self.layer_domain.is_on:
            self._layer_seq.arm("rx-wakeup")

    def _on_rx_done(self, message: ReceivedMessage) -> None:
        message.source_hint = ""
        if self.layer_domain.is_on:
            self.inbox.append(message)
            self.layer.deliver(message)
            if self.on_receive is not None:
                self.on_receive(self, message)
        else:
            # Must be unreachable: the wakeup edges always suffice.
            self.dropped.append(message)

    def _on_tx_done(self, outcome: TxOutcome) -> None:
        self.results.append(outcome)
        if self.on_result is not None:
            self.on_result(self, outcome)

    def _request_mediator_interjection(self) -> None:
        if self.mediator is None:
            raise ProtocolError("member requested mediator interjection "
                                "but no mediator logic is attached")
        self.mediator.request_interjection_from_member()

    def _on_transaction_end(self, code: ControlCode) -> None:
        # Service a pending interrupt now that the wakeup edges ran.
        if self.pending_interrupt and self.is_fully_awake:
            self.pending_interrupt = False
            if self.on_interrupt is not None:
                self.on_interrupt(self)
        if self.pending_interrupt and not self.engine.busy:
            self._schedule(self._start_null_pulse)
        if self.engine.has_pending:
            self._schedule(self._try_request)
            return
        # Aggressive duty cycling: power-gated nodes return to sleep
        # once nothing more is queued (Section 6.3.2's imager pattern).
        if (
            self.config.power_gated
            and self.config.auto_sleep
            and not self.pending_interrupt
        ):
            self._schedule(self._auto_sleep)

    # ------------------------------------------------------------------
    # Internal helpers.
    # ------------------------------------------------------------------
    def _settle_ps(self) -> int:
        return constants.NODE_SETTLE_FACTOR * self.timing.node_delay_ps

    def _schedule(self, fn: Callable[[], None]) -> None:
        self.sim.schedule(self._settle_ps(), fn)

    def _kick(self) -> None:
        if self.engine.busy:
            return
        if self.bus_domain.is_on and self.layer_domain.is_on:
            self._schedule(self._try_request)
        else:
            self.trigger_interrupt()

    def _try_request(self) -> None:
        if not self.engine.has_pending:
            return
        if not (self.bus_domain.is_on and self.layer_domain.is_on):
            self.trigger_interrupt()
            return
        if self.clkin.value != 1:
            return  # a transaction is already clocking; retry at its end
        # The engine itself decides whether the request window is
        # still open (idle, or arbitration not yet clocked).
        if self.engine.request_bus() and self.config.is_mediator:
            self.mediator.start_for_member()

    def _start_null_pulse(self) -> None:
        if self.engine.busy or self._null_pulse_active:
            return
        self._null_pulse_active = True
        self.data_ctl.drive(0)
        if not self.bus_domain.is_on:
            self._bus_seq.arm("interrupt")
        elif self.pending_interrupt and not self.layer_domain.is_on:
            # The bus domain is already powered (e.g. it woke as an
            # observer of an earlier transaction), so _on_bus_awake will
            # never fire for this wakeup — arm the layer sequencer
            # directly or the null transactions repeat forever.
            self._layer_seq.arm("interrupt")

    def _auto_sleep(self) -> None:
        if self.engine.busy or self.engine.has_pending or self.pending_interrupt:
            return
        if self.layer_domain.is_on:
            self.layer_domain.power_off("auto-sleep")
        if self.bus_domain.is_on:
            self.bus_domain.power_off("auto-sleep")
