"""Run-time enumeration: assigning short prefixes (Section 4.7).

Enumeration is a series of broadcast messages.  A controller (in
practice the microcontroller) broadcasts an ENUMERATE command carrying
a candidate short prefix; every unassigned node attempts to reply with
an identification message carrying its unique 20-bit full prefix; the
arbitration winner takes the candidate prefix.  As the paper notes, a
node's resulting short prefix therefore encodes its topological
priority.

Enumeration is optional: devices may self-assign static prefixes and
skip it when there are no conflicts — but two copies of the same chip
design (identical full prefixes) *require* enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import constants
from repro.core.addresses import Address
from repro.core.bus import MBusSystem
from repro.core.errors import ProtocolError
from repro.core.messages import Message, ReceivedMessage
from repro.core.node import MBusNode

#: Broadcast channel assignments used across this reproduction.
CHANNEL_CONFIG = 0
CHANNEL_ENUMERATION = 1

CMD_ENUMERATE = 0x01
CMD_ID_REPLY = 0x02
CMD_INVALIDATE = 0x03


@dataclass
class EnumerationAgent:
    """Per-node hardware behaviour for the enumeration protocol.

    Attach one agent to every node that should participate.  The agent
    listens on the enumeration broadcast channel, replies to ENUMERATE
    when its node is unassigned, withdraws its reply when another node
    wins, and claims the candidate prefix when its own reply succeeds.
    """

    node: MBusNode
    assigned_prefix: Optional[int] = None
    _candidate: Optional[int] = None
    _replying: bool = False

    def __post_init__(self) -> None:
        self.assigned_prefix = self.node.config.short_prefix
        channels = set(self.node.config.broadcast_channels)
        channels.add(CHANNEL_ENUMERATION)
        self.node.config.broadcast_channels = frozenset(channels)
        if self.node.engine is not None:
            self.node.engine.config.broadcast_channels = frozenset(channels)
        self.node.layer.register_broadcast_handler(
            CHANNEL_ENUMERATION, self._on_channel
        )
        previous = self.node.on_result
        self.node.on_result = self._chain_result(previous)

    # -- message handling -------------------------------------------------
    def _on_channel(self, message: ReceivedMessage) -> None:
        if not message.payload:
            return
        command = message.payload[0]
        if command == CMD_ENUMERATE:
            self._on_enumerate(message.payload[1])
        elif command == CMD_ID_REPLY:
            self._on_id_reply()
        elif command == CMD_INVALIDATE:
            self._on_invalidate(message.payload[1])

    def _on_enumerate(self, candidate: int) -> None:
        if self.assigned_prefix is not None:
            return
        self._candidate = candidate
        self._replying = True
        full_prefix = self.node.config.full_prefix or 0
        payload = bytes([CMD_ID_REPLY]) + full_prefix.to_bytes(3, "big")
        # Replies race via normal arbitration (Section 4.7).
        self.node.post(
            Message(dest=Address.broadcast(CHANNEL_ENUMERATION), payload=payload)
        )

    def _on_id_reply(self) -> None:
        """Another node's reply got through first: withdraw ours."""
        if self._replying:
            self._withdraw()

    def _on_invalidate(self, prefix: int) -> None:
        if self.assigned_prefix == prefix:
            self.assigned_prefix = None
            self._apply_prefix(None)

    def _withdraw(self) -> None:
        self._replying = False
        self._candidate = None
        pending = self.node.engine.pending
        for message in list(pending):
            if message.payload[:1] == bytes([CMD_ID_REPLY]):
                pending.remove(message)

    # -- claiming the prefix --------------------------------------------------
    def _chain_result(self, previous):
        def _on_result(node: MBusNode, outcome) -> None:
            if (
                self._replying
                and outcome.message.payload[:1] == bytes([CMD_ID_REPLY])
            ):
                if outcome.success:
                    self.assigned_prefix = self._candidate
                    self._apply_prefix(self._candidate)
                self._replying = False
                self._candidate = None
            if previous is not None:
                previous(node, outcome)

        return _on_result

    def _apply_prefix(self, prefix: Optional[int]) -> None:
        self.node.config.short_prefix = prefix
        self.node.engine.config.short_prefix = prefix


class Enumerator:
    """Controller-side enumeration driver (run from any node)."""

    def __init__(self, system: MBusSystem, controller: str):
        self.system = system
        self.controller = controller
        self.agents: Dict[str, EnumerationAgent] = {}
        system.build()
        for node in system.nodes:
            self.agents[node.name] = EnumerationAgent(node)

    def available_prefixes(self) -> List[int]:
        in_use = {
            agent.assigned_prefix
            for agent in self.agents.values()
            if agent.assigned_prefix is not None
        }
        return [
            p
            for p in range(1, constants.FULL_ADDR_MARKER_VALUE)
            if p != constants.BROADCAST_PREFIX_VALUE and p not in in_use
        ]

    def enumerate(self) -> Dict[str, int]:
        """Assign short prefixes to every unassigned node.

        Returns the complete name -> prefix map after enumeration.
        One ENUMERATE round is run per candidate prefix until a round
        draws no reply (all nodes assigned).
        """
        for candidate in self.available_prefixes():
            if not self._unassigned_remain():
                break
            replies_before = self._replies_seen()
            self.system.broadcast(
                self.controller,
                CHANNEL_ENUMERATION,
                bytes([CMD_ENUMERATE, candidate]),
            )
            self.system.run_until_idle()
            if self._replies_seen() == replies_before:
                break
        if self._unassigned_remain():
            raise ProtocolError("ran out of short prefixes before all "
                                "nodes were enumerated")
        return {
            name: agent.assigned_prefix
            for name, agent in self.agents.items()
            if agent.assigned_prefix is not None
        }

    def _unassigned_remain(self) -> bool:
        return any(a.assigned_prefix is None for a in self.agents.values())

    def _replies_seen(self) -> int:
        count = 0
        for result in self.system.transactions:
            if (
                result.ok
                and result.message is not None
                and result.message.payload[:1] == bytes([CMD_ID_REPLY])
            ):
                count += 1
        return count
