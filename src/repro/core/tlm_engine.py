"""Transaction-level model (TLM) of MBus: closed-form transaction planning.

This module is the analytic core of the fast-path backend
(:mod:`repro.sim.fastpath`).  Instead of firing a Python event for
every CLK/DATA edge of every ring segment (the edge-accurate engine's
O(bits x nodes) behaviour), it computes each bus round *in closed
form* from the protocol rules of Sections 4.3-4.9:

* arbitration and priority-arbitration winners from ring topology
  (a "nearest upstream driver" walk over the broken DATA ring);
* the rising-edge count ``R`` at which the transaction ends — end of
  message, receiver-buffer abort, or the mediator's runaway watchdog;
* the interjection sequence duration from the saturating-counter
  detector model (how many DATA toggles must circulate before the
  mediator's own detector fires);
* the two control bits each node latches, again by ring walk, so that
  per-node control codes (and therefore deliveries and ACK/NAK
  outcomes) match the edge engine exactly;
* per-node clock-edge arrival times, from which hierarchical wakeup
  times (bus domain at the 4th edge, layer domain 4 edges after its
  arming event) fall out.

Everything here is pure computation over integers — no simulator, no
events.  The formulas were validated edge-for-edge against the
edge-accurate engine (see ``tests/integration/
test_fastpath_equivalence.py``); result fields (winner, control code,
cycle counts, delivered payloads, wake counts) are exact, and the
picosecond timings agree to within propagation-delay slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import constants
from repro.core.addresses import Address
from repro.core.constants import NODE_SETTLE_FACTOR
from repro.core.messages import ControlCode, Message
from repro.obs.state import OBS

__all__ = [
    "NODE_SETTLE_FACTOR",
    "NodeRoundState",
    "RingTopology",
    "RoundContext",
    "RxDelivery",
    "TLMNode",
    "TransactionPlan",
    "plan_round",
    "resolve_arbitration",
]


@dataclass(frozen=True)
class TLMNode:
    """Static per-node facts the planner needs (a NodeConfig digest)."""

    name: str
    position: int
    short_prefix: Optional[int]
    full_prefix: Optional[int]
    broadcast_channels: frozenset
    rx_buffer_bytes: int
    ack_policy: Optional[Callable[[bytes], bool]]
    is_mediator: bool
    power_gated: bool
    auto_sleep: bool
    forward_delay_ps: int


@dataclass
class NodeRoundState:
    """Mutable per-node inputs to one round of planning."""

    bus_on: bool
    layer_on: bool
    pending_interrupt: bool
    #: True when this node raised the null pulse that triggered a
    #: wakeup round (its layer sequencer arms at the pulse).
    is_pulser: bool = False


@dataclass
class RxDelivery:
    """One receiver's view of the transaction."""

    position: int
    name: str
    control: ControlCode
    payload: bytes
    delivered: bool
    arrived_at_ps: int


@dataclass
class TransactionPlan:
    """Everything the fast backend needs to realise one bus round."""

    kind: str                       # "message" or "wakeup"
    t0: int                         # mediator self-start time
    end_ps: int                     # final control rising edge
    clock_cycles: int               # mediator risings before control
    control_cycles: int
    control: ControlCode            # as latched by the mediator
    general_error: bool
    error_reason: str
    winner: Optional[int]           # ring position of the transmitter
    message: Optional[Message]
    tx_control: Optional[ControlCode]
    tx_success: bool
    tx_bytes_sent: int
    rx: List[RxDelivery] = field(default_factory=list)
    #: position -> time the bus domain powers on (gated nodes only).
    bus_wake_at: Dict[int, int] = field(default_factory=dict)
    #: position -> (time, reason) the layer domain powers on.
    layer_wake_at: Dict[int, Tuple[int, str]] = field(default_factory=dict)
    #: position -> time the node observes the transaction end (its
    #: final control rising arrival); interrupt servicing, auto-sleep
    #: scheduling and re-requests all key off this.
    node_end_at: Dict[int, int] = field(default_factory=dict)
    #: position -> estimated output transitions (CLK + DATA) for the
    #: activity model; see plan docstring for accuracy notes.
    wire_activity: Dict[int, int] = field(default_factory=dict)


class RingTopology:
    """Propagation arithmetic for one ring of nodes.

    Position 0 is the mediator.  Signals travel 0 -> 1 -> ... -> n-1
    -> 0; the mediator's drive reaches node ``q``'s input pads after
    the pad-driver delay plus ``q - 1`` forwarding hops.
    """

    def __init__(self, nodes: Sequence[TLMNode], timing: constants.MBusTiming):
        self.nodes = list(nodes)
        self.n = len(nodes)
        self.timing = timing
        self.drive_delay = timing.drive_delay_ps
        # Prefix sums of forwarding delays so heterogeneous node
        # delays (NodeConfig.node_delay_ps overrides) are honoured.
        self._prefix = [0] * (self.n + 1)
        for i, node in enumerate(self.nodes):
            self._prefix[i + 1] = self._prefix[i] + node.forward_delay_ps

    def clk_prop(self, q: int) -> int:
        """Mediator CLK drive -> node q's CLK-in arrival delay."""
        if q == 0:
            return self.full_prop
        return self.drive_delay + self._prefix[q] - self._prefix[1]

    @property
    def full_prop(self) -> int:
        """Once around: mediator drive -> mediator's own input pad."""
        return self.drive_delay + self._prefix[self.n] - self._prefix[1]

    def member_to_mediator(self, p: int) -> int:
        """Node p drives its output -> mediator's input pad arrival."""
        return self.drive_delay + self._prefix[self.n] - self._prefix[p + 1]

    def hop_delay(self, src: int, dst: int) -> int:
        """Node ``src`` drives its output -> node ``dst``'s input pad.

        The signal crosses the forwarding muxes of every node strictly
        between the two, walking downstream (possibly wrapping); O(1)
        via the same prefix sums the other queries use.
        """
        if dst > src:
            between = self._prefix[dst] - self._prefix[src + 1]
        else:
            between = (
                self._prefix[self.n] - self._prefix[src + 1]
            ) + self._prefix[dst]
        return self.drive_delay + between


def matches(node: TLMNode, address: Address) -> bool:
    """Receiver predicate — delegates to the shared Address.matches so
    both backends always resolve the same receiver set."""
    return address.matches(
        node.short_prefix, node.full_prefix, node.broadcast_channels
    )


def sample_ring(
    n: int, drivers: Dict[int, int], parked: int = 1
) -> List[int]:
    """Value every node samples on its DATA-in pad.

    Node ``q`` sees the nearest driving node walking upstream from
    ``q - 1``; a node driving its own output is reached last (a full
    wrap).  With no drivers anywhere the line holds its parked value.
    One O(n) sweep instead of a walk per node: seed with the highest-
    position driver (the nearest upstream of position 0 after the
    wrap), then assign before each position overwrites with its own
    drive — which is exactly "self is reached last".
    """
    if not drivers:
        return [parked] * n
    cur = drivers[max(drivers)]
    out = [parked] * n
    for q in range(n):
        out[q] = cur
        if q in drivers:
            cur = drivers[q]
    return out


def resolve_arbitration(
    n: int,
    requests: Dict[int, Message],
    anchor_pos: Optional[int],
) -> Optional[int]:
    """Winner of arbitration + priority arbitration (Section 4.3).

    ``requests`` maps ring position to the head-of-queue message of
    every node that pulled DATA low before the arbitration latch.
    Returns the transmitting position, or None for a null round.
    """
    if not requests:
        return None
    break_pos = anchor_pos if anchor_pos is not None else 0
    # Fiat winners: the mediator's own member (it drives the broken
    # ring low, so every downstream requester loses) or the anchor.
    if break_pos in requests:
        winner = break_pos
    else:
        winner = None
        for i in range(1, n + 1):
            pos = (break_pos + i) % n
            if pos in requests:
                winner = pos
                break
        assert winner is not None
    # Priority slot (Figure 5): losers holding priority messages pull
    # DATA high; the first of them downstream of the winner takes the
    # bus (the winner always sees a '1' upstream and backs off).
    prio = [
        pos for pos, message in requests.items()
        if pos != winner and message.priority
    ]
    if prio:
        for i in range(1, n + 1):
            pos = (winner + i) % n
            if pos in prio:
                return pos
    return winner


def _stream_bits(message: Message) -> Tuple[int, ...]:
    return message.address_bits() + message.data_bits()


def _stream_transitions(bits: Tuple[int, ...]) -> int:
    """DATA transitions while driving: idle-high -> arbitration-low ->
    address/data bits."""
    count = 0
    prev = 1
    for value in (0,) + bits:
        if value != prev:
            count += 1
        prev = value
    return count


def interjection_fire_delay(
    broken_at_mediator: bool,
    last_driven_bit: int,
    settle: int,
    full_prop: int,
) -> int:
    """Delay from interjection start to the mediator's detector firing.

    The mediator toggles DATA every ``settle`` (two ring delays).  If
    the DATA ring is broken at the mediator itself (it is the
    transmitter, or a general error is being raised), its own detector
    saturates after THRESHOLD toggles circulate.  If a member
    transmitter is still driving DATA, that node's detector must
    saturate first (THRESHOLD toggles), after which it resumes
    forwarding; its output snaps to the circulating toggle value —
    producing one extra edge when its last driven bit differs — and
    the mediator then needs the remaining edges.
    """
    threshold = constants.INTERJECTION_DETECT_TOGGLES
    if broken_at_mediator:
        toggles = threshold
    elif last_driven_bit == 0:
        # Toggle values run 1,0,1,...; the snap edge (0 -> 1) counts.
        toggles = 2 * threshold - 1
    else:
        toggles = 2 * threshold
    return toggles * settle + full_prop


@dataclass
class RoundContext:
    """Inputs to :func:`plan_round`."""

    topology: RingTopology
    t0: int
    #: position -> head-of-queue message for every arbitration entrant.
    requests: Dict[int, Message]
    states: Dict[int, NodeRoundState]
    anchor_pos: Optional[int]
    max_message_bytes: int


def plan_round(ctx: RoundContext) -> TransactionPlan:
    """Compute one complete bus round analytically.

    The observability wrapper around :func:`_plan_round_impl`: when
    ``repro.obs`` is off this is one boolean check plus a tail call,
    so the fast-path planner's per-round cost is unchanged.
    """
    if not OBS.enabled:
        return _plan_round_impl(ctx)
    with OBS.profiled("plan_round", "tlm.plan_round_calls"):
        return _plan_round_impl(ctx)


def _plan_round_impl(ctx: RoundContext) -> TransactionPlan:
    topo = ctx.topology
    timing = topo.timing
    n = topo.n
    half = timing.half_period_ps
    settle = 2 * timing.ring_delay_ps(n)
    full_prop = topo.full_prop

    winner = resolve_arbitration(n, ctx.requests, ctx.anchor_pos)
    if winner is None:
        return _plan_wakeup_round(ctx, half, settle, full_prop)

    message = ctx.requests[winner]
    stream = _stream_bits(message)
    addr_bits = message.dest.n_bits
    n_bytes = message.n_bytes
    nodes = topo.nodes

    # Receiver set: every non-transmitting node whose address matches.
    rx_positions = [
        node.position
        for node in nodes
        if node.position != winner and matches(node, message.dest)
    ]

    # --- where does the transaction end? --------------------------------
    r_eom = 3 + len(stream)
    candidates = [("eom", r_eom)]
    for pos in rx_positions:
        buffer_bytes = nodes[pos].rx_buffer_bytes
        k_abort = max(buffer_bytes + 1, constants.MIN_PROGRESS_BYTES)
        if k_abort <= n_bytes:
            candidates.append(("abort", 3 + addr_bits + 8 * k_abort))
    r_watchdog = (
        constants.ARBITRATION_CYCLES
        + constants.ADDR_CYCLES_FULL
        + 8 * ctx.max_message_bytes
        + 8
        + 1
    )
    if r_watchdog < r_eom:
        candidates.append(("runaway", r_watchdog))
    r_end = min(r for _, r in candidates)
    kinds = {kind for kind, r in candidates if r == r_end}
    runaway = "runaway" in kinds
    eom = "eom" in kinds and not runaway
    aborted = "abort" in kinds and not runaway

    data_bytes_latched = max(0, (r_end - 3 - addr_bits) // 8)
    delivered_payload = message.payload[: data_bytes_latched]

    # --- interjection timing ---------------------------------------------
    broken_at_mediator = winner == 0
    if runaway:
        # The mediator interjects the moment it drives rising R.
        t_interject = ctx.t0 + 2 * r_end * half
    elif broken_at_mediator:
        # The mediator's member cannot hold CLK; it calls straight into
        # the mediator when it latches its final bit (one ring delay
        # after the mediator drove that rising edge).
        t_interject = ctx.t0 + 2 * r_end * half + full_prop
    else:
        # A member held CLK high; the mediator notices when its next
        # rising edge fails to propagate — one full cycle later.
        t_interject = ctx.t0 + 2 * (r_end + 1) * half

    overruns = {
        pos for pos in rx_positions
        if data_bytes_latched > nodes[pos].rx_buffer_bytes
    }
    # Who is breaking the CLK ring when the mediator interjects?  The
    # transmitter at end of message, the (first) aborting receiver on
    # an overrun; nobody on a runaway (the mediator acts directly).
    holder_pos = None
    if not runaway and not broken_at_mediator:
        holder_pos = winner if eom else min(overruns)
    if broken_at_mediator:
        last_bit = 0
    else:
        # Bits the transmitter has pushed out: one per falling edge
        # from #4; it sees the absorbed falling R+1 only if the CLK
        # holder is further around the ring than it is.
        if eom:
            last_index = len(stream) - 1
        else:
            saw_extra_falling = (
                holder_pos is not None and winner < holder_pos
            )
            last_index = min(
                len(stream) - 1, r_end - 3 if saw_extra_falling else r_end - 4
            )
        last_bit = stream[last_index]
    fire = t_interject + interjection_fire_delay(
        broken_at_mediator, last_bit, settle, full_prop
    )
    tc0 = fire + settle                      # control phase begins
    end_ps = tc0 + 6 * half                  # third control rising

    # --- control-bit resolution (Figure 7) -------------------------------
    slot1: Dict[int, int] = {}
    if runaway:
        slot1[0] = 0                          # mediator drives General Error
    if eom:
        slot1[winner] = 1                     # complete message
    if aborted:
        for pos in overruns:
            slot1[pos] = 0                    # incomplete: abort
    bit0 = sample_ring(n, slot1)

    slot2: Dict[int, int] = {}
    if runaway:
        slot2[0] = 0
    for pos in rx_positions:
        node = nodes[pos]
        if pos in overruns or bit0[pos] == 0:
            ack = 1                           # never ACK a dead message
        elif node.ack_policy is not None:
            ack = 0 if node.ack_policy(delivered_payload) else 1
        else:
            ack = 0
        slot2[pos] = ack
    bit1 = sample_ring(n, slot2)

    codes = {q: ControlCode.from_bits(bit0[q], bit1[q]) for q in range(n)}

    # --- per-node timings -------------------------------------------------
    plan = TransactionPlan(
        kind="message",
        t0=ctx.t0,
        end_ps=end_ps,
        clock_cycles=r_end,
        control_cycles=constants.CONTROL_CYCLES,
        control=codes[0],
        general_error=runaway,
        error_reason="runaway-message" if runaway else "",
        winner=winner,
        message=message,
        tx_control=codes[winner],
        tx_success=codes[winner] is ControlCode.EOM_ACK,
        tx_bytes_sent=(
            n_bytes
            if codes[winner] is ControlCode.EOM_ACK
            else max(0, (r_end - 3 - addr_bits) // 8 - 1)
        ),
    )
    for q in range(n):
        plan.node_end_at[q] = end_ps + topo.clk_prop(q)

    for q in range(n):
        state = ctx.states[q]
        if state.bus_on and state.layer_on:
            continue  # nothing to wake; skip the edge arithmetic
        sees_extra = holder_pos is not None and 0 < q <= holder_pos
        n_edges = 2 * r_end + (2 if sees_extra else 0) + 6
        prop = topo.clk_prop(q)
        edge_at = lambda i: _edge_time_at(  # noqa: E731 - tiny local helper
            i, ctx.t0, half, r_end, tc0, prop, sees_extra, t_interject
        )
        bus_on_edge_index = None
        if not state.bus_on:
            bus_on_edge_index = 3                       # fourth edge
            plan.bus_wake_at[q] = edge_at(3)
        if not state.layer_on:
            arm_candidates = []
            if state.pending_interrupt:
                if bus_on_edge_index is not None:
                    # Armed inside the bus domain's power-on callback;
                    # the layer sequencer steps on that same edge.
                    arm_candidates.append(
                        ("interrupt", bus_on_edge_index, True)
                    )
                elif state.is_pulser:
                    # Bus already on: the null pulse armed the layer
                    # directly, before the first clock edge.
                    arm_candidates.append(("interrupt", -1, False))
            if q in rx_positions:
                r_match = 3 + addr_bits
                arm_candidates.append(("rx-wakeup", 2 * r_match - 1, False))
            if arm_candidates:
                reason, arm_index, same_edge_step = min(
                    arm_candidates, key=lambda c: c[1]
                )
                on_index = arm_index + (3 if same_edge_step else 4)
                if on_index < n_edges:
                    plan.layer_wake_at[q] = (edge_at(on_index), reason)

    # --- deliveries --------------------------------------------------------
    for pos in sorted(rx_positions, key=lambda p: (p == 0, p)):
        code = codes[pos]
        state = ctx.states[pos]
        layer_ready = state.layer_on or pos in plan.layer_wake_at
        plan.rx.append(
            RxDelivery(
                position=pos,
                name=nodes[pos].name,
                control=code,
                payload=delivered_payload,
                delivered=(
                    code in (ControlCode.EOM_ACK, ControlCode.RX_ABORT)
                    and layer_ready
                ),
                arrived_at_ps=plan.node_end_at[pos],
            )
        )

    # --- wire-activity estimate -------------------------------------------
    stream_edges = _stream_transitions(stream[: r_end - 3])
    toggles = interjection_fire_delay(
        broken_at_mediator, last_bit, 1, 0
    )
    for q in range(n):
        clk_edges = 2 * r_end + 6
        if holder_pos is not None and q <= holder_pos:
            clk_edges += 2
        plan.wire_activity[q] = clk_edges + stream_edges + toggles + 3
    return plan


def _plan_wakeup_round(
    ctx: RoundContext, half: int, settle: int, full_prop: int
) -> TransactionPlan:
    """A null transaction: no arbitration winner, general error raised.

    This is how sleeping nodes are woken (Section 4.5): the interrupt
    controller's pulse starts the mediator's clock, nobody requests,
    and the resulting General Error round steps every armed wakeup
    sequencer through its four edges.
    """
    topo = ctx.topology
    n = topo.n
    anchored = ctx.anchor_pos is not None
    if anchored:
        # The anchor performs the no-winner check at the arbitration
        # latch and holds CLK; the mediator notices a cycle later and
        # runs an ordinary (non-general) interjection — the anchor,
        # not the mediator, drives the (0, 0) error code, so the
        # mediator's report does NOT flag a general error even though
        # the latched control bits decode to one.
        t_interject = ctx.t0 + 4 * half
        fire = t_interject + interjection_fire_delay(False, 1, settle, full_prop)
    else:
        t_interject = ctx.t0 + 2 * half
        fire = t_interject + interjection_fire_delay(True, 1, settle, full_prop)
    tc0 = fire + settle
    end_ps = tc0 + 6 * half

    plan = TransactionPlan(
        kind="wakeup",
        t0=ctx.t0,
        end_ps=end_ps,
        clock_cycles=1,
        control_cycles=constants.CONTROL_CYCLES,
        control=ControlCode.GENERAL_ERROR,
        general_error=not anchored,
        error_reason="" if anchored else "no-arbitration-winner",
        winner=None,
        message=None,
        tx_control=None,
        tx_success=False,
        tx_bytes_sent=0,
    )
    for q in range(n):
        prop = topo.clk_prop(q)
        plan.node_end_at[q] = end_ps + prop
        # Edges each node sees: f1, r1, then the six control edges.
        edges = [
            ctx.t0 + half + prop,
            ctx.t0 + 2 * half + prop,
        ] + [tc0 + k * half + prop for k in range(1, 7)]
        state = ctx.states[q]
        bus_on_index = None
        if not state.bus_on:
            bus_on_index = 3
            plan.bus_wake_at[q] = edges[3]
        if not state.layer_on and state.pending_interrupt:
            if bus_on_index is not None:
                on_index = bus_on_index + 3      # same-edge first step
            elif state.is_pulser:
                on_index = 3                     # armed before f1
            else:
                on_index = None
            if on_index is not None and on_index < len(edges):
                plan.layer_wake_at[q] = (edges[on_index], "interrupt")
        plan.wire_activity[q] = 8 + 6
    return plan


def _edge_time_at(
    index: int,
    t0: int,
    half: int,
    r_end: int,
    tc0: int,
    prop: int,
    sees_extra: bool,
    t_interject: int,
) -> int:
    """Arrival time of the ``index``-th CLK edge (0-based) at one node.

    Transfer edges f1..rR arrive at every node.  When a member holds
    CLK (end of message or receiver abort), nodes between the mediator
    and the holder additionally see the absorbed falling edge and the
    mediator's rise-back at interjection start.  The six control edges
    close the round.  O(1): no per-cycle list is materialised, which
    matters for kilobyte messages (R in the thousands).
    """
    if index < 2 * r_end:
        # Edge pairs: f_k at index 2k-2, r_k at index 2k-1.
        k = index // 2 + 1
        if index % 2 == 0:
            return t0 + (2 * k - 1) * half + prop
        return t0 + 2 * k * half + prop
    index -= 2 * r_end
    if sees_extra:
        if index == 0:
            return t0 + (2 * r_end + 1) * half + prop  # absorbed falling
        if index == 1:
            return t_interject + prop                   # rise-back
        index -= 2
    return tc0 + (index + 1) * half + prop
